"""``solve_many``: the batched front-end to :func:`repro.core.solve.solve`.

Solving many independent instances is the scaling move for LP-based
pipelines: a campaign of structurally identical problems (same platform,
different payoffs/objectives — the shape produced by the experiment
grid, parameter studies, or per-tenant what-if queries) shares one
LP-variable index per platform through the
:func:`repro.lp.indexing.shared_variable_index` cache, and fans out over
worker processes through the :class:`~repro.parallel.engine.
CampaignEngine`.

Determinism: each instance receives its own stateless spawn child of the
batch seed (``rng -> child i`` for problem ``i``), so results are a pure
function of ``(problems, method, rng)`` — independent of ``jobs``,
chunking, and scheduling order. ``solve_many(ps, m, rng=s, jobs=4)`` is
bitwise-equal to ``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.solve import solve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import SteadyStateProblem
    from repro.heuristics.base import HeuristicResult


@dataclass(frozen=True)
class _SolveTask:
    """One instance of a batch, with its private seed and options."""

    problem: "SteadyStateProblem"
    method: str
    seed: np.random.SeedSequence
    kwargs: dict = field(default_factory=dict)


def _run_solve_task(task: _SolveTask) -> "HeuristicResult":
    """Picklable engine worker for one batched solve."""
    return solve(
        task.problem,
        task.method,
        rng=np.random.default_rng(task.seed),
        **task.kwargs,
    )


def solve_many(
    problems: "Sequence[SteadyStateProblem]",
    method: str = "lprg",
    rng=None,
    jobs: int = 1,
    chunk_size: "int | None" = None,
    **kwargs,
) -> "list[HeuristicResult]":
    """Solve many independent problems; results in input order.

    Parameters
    ----------
    problems:
        The instances to solve. Instances sharing a platform *object*
        also share one cached LP-variable index (within each worker
        process), which skips the O(K^2) index rebuild per LP.
    method:
        Any :func:`repro.core.solve.available_methods` name; applied to
        every instance.
    rng:
        Batch seed. Instance ``i`` solves under the ``i``-th stateless
        spawn child, so per-instance streams are reproducible and
        independent of ``jobs``.
    jobs:
        Worker processes; ``1`` solves inline (reference semantics).
    chunk_size:
        Tasks per pool submission (default: auto).
    **kwargs:
        Method options applied to every solve (e.g. ``warm_start=``,
        ``lp_backend=``); unknown names raise ``SolverError`` with a
        did-you-mean suggestion.

    Returns
    -------
    list[HeuristicResult]
        One result per problem, in the order given.

    Notes
    -----
    Thin shim over :meth:`repro.api.Solver.solve_many` (bitwise-
    identical output); hold a :class:`repro.api.Solver` directly to keep
    its warm state across *batches* too.
    """
    from repro.api import Solver

    solver = Solver.for_method(
        method, jobs=jobs, chunk_size=chunk_size, **kwargs
    )
    return solver.solve_many(problems, rng=rng)
