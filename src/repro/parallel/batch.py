"""``solve_many``: the batched front-end to :func:`repro.core.solve.solve`.

Solving many independent instances is the scaling move for LP-based
pipelines: a campaign of structurally identical problems (same platform,
different payoffs/objectives — the shape produced by the experiment
grid, parameter studies, or per-tenant what-if queries) shares one
LP-variable index per platform through the
:func:`repro.lp.indexing.shared_variable_index` cache, and fans out over
worker processes through the :class:`~repro.parallel.engine.
CampaignEngine`.

Determinism: each instance receives its own stateless spawn child of the
batch seed (``rng -> child i`` for problem ``i``), so results are a pure
function of ``(problems, method, rng)`` — independent of ``jobs``,
chunking, and scheduling order. ``solve_many(ps, m, rng=s, jobs=4)`` is
bitwise-equal to ``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.solve import solve
from repro.parallel.engine import CampaignEngine
from repro.util.rng import spawn_seed_sequences

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import SteadyStateProblem
    from repro.heuristics.base import HeuristicResult


@dataclass(frozen=True)
class _SolveTask:
    """One instance of a batch, with its private seed and options."""

    problem: "SteadyStateProblem"
    method: str
    seed: np.random.SeedSequence
    kwargs: dict = field(default_factory=dict)


def _run_solve_task(task: _SolveTask) -> "HeuristicResult":
    """Picklable engine worker for one batched solve."""
    return solve(
        task.problem,
        task.method,
        rng=np.random.default_rng(task.seed),
        **task.kwargs,
    )


def solve_many(
    problems: "Sequence[SteadyStateProblem]",
    method: str = "lprg",
    rng=None,
    jobs: int = 1,
    chunk_size: "int | None" = None,
    **kwargs,
) -> "list[HeuristicResult]":
    """Solve many independent problems; results in input order.

    Parameters
    ----------
    problems:
        The instances to solve. Instances sharing a platform *object*
        also share one cached LP-variable index (within each worker
        process), which skips the O(K^2) index rebuild per LP.
    method:
        Any :func:`repro.core.solve.available_methods` name; applied to
        every instance.
    rng:
        Batch seed. Instance ``i`` solves under the ``i``-th stateless
        spawn child, so per-instance streams are reproducible and
        independent of ``jobs``.
    jobs:
        Worker processes; ``1`` solves inline (reference semantics).
    chunk_size:
        Tasks per pool submission (default: auto).
    **kwargs:
        Forwarded to every solve (e.g. ``backend=``).

    Returns
    -------
    list[HeuristicResult]
        One result per problem, in the order given.
    """
    problems = list(problems)
    seeds = spawn_seed_sequences(rng, len(problems))
    tasks = [
        _SolveTask(problem=p, method=method, seed=s, kwargs=dict(kwargs))
        for p, s in zip(problems, seeds)
    ]
    engine = CampaignEngine(_run_solve_task, jobs=jobs, chunk_size=chunk_size)
    return engine.run(tasks)
