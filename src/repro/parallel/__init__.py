"""Parallel campaign execution: batched solving and process-pool sweeps.

The package has three layers, each usable on its own:

* :func:`solve_many` — batched front-end to :func:`repro.core.solve.
  solve`: many independent instances, one call, optional process-pool
  fan-out, shared LP-index cache for instances on the same platform.
* :class:`CampaignEngine` — generic deterministic task runner
  (chunked scheduling, worker-crash recovery, ``jobs=1`` inline
  reference path) used by :func:`repro.experiments.runner.run_sweep`.
* :class:`CampaignCheckpoint` — append-only incremental checkpoint
  store giving interrupted campaigns exact resume.

Everything is seeded through stateless ``SeedSequence`` spawning
(:mod:`repro.util.rng`), so results never depend on ``jobs``, chunking
or scheduling order: the parallel path is bitwise-equal to the serial
one.
"""

from repro.parallel.batch import solve_many
from repro.parallel.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    campaign_fingerprint,
)
from repro.parallel.engine import CampaignEngine, default_chunk_size
from repro.parallel.sweep import (
    SweepTask,
    build_sweep_tasks,
    run_sweep_task,
    sweep_fingerprint,
)

__all__ = [
    "solve_many",
    "CampaignEngine",
    "default_chunk_size",
    "CampaignCheckpoint",
    "CheckpointError",
    "campaign_fingerprint",
    "SweepTask",
    "build_sweep_tasks",
    "run_sweep_task",
    "sweep_fingerprint",
]
