"""Parallel campaign execution: batched solving and process-pool sweeps.

The package has three layers, each usable on its own:

* :func:`solve_many` — batched front-end to :func:`repro.core.solve.
  solve`: many independent instances, one call, optional process-pool
  fan-out, shared LP-index cache for instances on the same platform.
* :class:`CampaignEngine` — generic deterministic task runner
  (chunked scheduling, worker-crash recovery, ``jobs=1`` inline
  reference path) used by :func:`repro.experiments.runner.run_sweep`.
* :class:`CampaignCheckpoint` — append-only incremental checkpoint
  store giving interrupted campaigns exact resume.
* :mod:`repro.parallel.stream` — streaming aggregation: mergeable
  constant-size accumulators (:class:`SweepAccumulator`), pluggable
  :class:`RowSink` destinations for raw rows, and the order-pinning
  :class:`StreamFold` engine consumer, so million-row sweeps never hold
  their rows in memory.

Everything is seeded through stateless ``SeedSequence`` spawning
(:mod:`repro.util.rng`), so results never depend on ``jobs``, chunking
or scheduling order: the parallel path is bitwise-equal to the serial
one — and so is the streamed aggregate (fold order is pinned to the
task index).
"""

from repro.parallel.batch import solve_many
from repro.parallel.checkpoint import (
    PREFOLDED,
    CampaignCheckpoint,
    CheckpointError,
    CheckpointWarning,
    campaign_fingerprint,
)
from repro.parallel.engine import (
    CampaignEngine,
    QuarantineError,
    RetryPolicy,
    TaskFailure,
    default_chunk_size,
)
from repro.parallel.stream import (
    CallbackRowSink,
    CountAccumulator,
    CsvRowSink,
    JsonlRowSink,
    MeanVarAccumulator,
    MinMaxAccumulator,
    NullRowSink,
    PairRatioAccumulator,
    QuantileAccumulator,
    RatioBoundAccumulator,
    RowSink,
    StatAccumulator,
    StreamFold,
    SweepAccumulator,
    iter_task_groups,
    open_row_sink,
    snapshot_compatible,
    validate_row_sink_path,
)
from repro.parallel.sweep import (
    SweepTask,
    build_sweep_tasks,
    run_sweep_task,
    sweep_fingerprint,
)

__all__ = [
    "solve_many",
    "CampaignEngine",
    "default_chunk_size",
    "RetryPolicy",
    "TaskFailure",
    "QuarantineError",
    "CampaignCheckpoint",
    "CheckpointError",
    "CheckpointWarning",
    "PREFOLDED",
    "campaign_fingerprint",
    "SweepTask",
    "build_sweep_tasks",
    "run_sweep_task",
    "sweep_fingerprint",
    # streaming aggregation
    "SweepAccumulator",
    "StreamFold",
    "RowSink",
    "NullRowSink",
    "JsonlRowSink",
    "CsvRowSink",
    "CallbackRowSink",
    "open_row_sink",
    "snapshot_compatible",
    "validate_row_sink_path",
    "iter_task_groups",
    "CountAccumulator",
    "MeanVarAccumulator",
    "MinMaxAccumulator",
    "StatAccumulator",
    "QuantileAccumulator",
    "RatioBoundAccumulator",
    "PairRatioAccumulator",
]
