"""Streaming sweep aggregation: constant-memory million-row campaigns.

The PR-1 campaign engine made sweep *execution* scale; this module makes
sweep *aggregation* scale. Instead of materialising every per-replicate
:class:`~repro.experiments.runner.ExperimentRow` in a Python list and
reducing it afterwards (memory O(rows)), each completed task is folded
into a set of mergeable constant-size accumulators as it arrives, and
the raw rows flow to a pluggable :class:`RowSink` (JSONL/CSV on disk, or
discarded) — memory O(settings), never O(rows).

Determinism guarantee
---------------------
The whole point of the PR-1 protocol is that results never depend on
``jobs``, chunking or resume patterns. Streaming keeps that guarantee by
*pinning the fold order to the task index*: :class:`StreamFold` holds a
small reorder buffer of out-of-order completions and only ever folds the
next task in index order. Every execution therefore performs the exact
same floating-point operations in the exact same sequence, so the
streamed aggregate tables are **bitwise-identical** for any ``jobs``,
``chunk_size`` or mid-sweep crash/resume pattern (pinned by
``tests/test_stream_equivalence.py``). The in-memory reference is
:meth:`SweepAccumulator.from_rows` over the materialised row list — the
same fold, applied to the same rows in the same order.

Checkpoint integration
----------------------
With a :class:`~repro.parallel.checkpoint.CampaignCheckpoint`, the fold
periodically saves an accumulator snapshot (``save_state`` — an
atomically-replaced sidecar file, O(accumulator) on disk for any
campaign length) holding the number of folded prefix tasks, the
accumulator state and the row sink's byte offset. On resume the fold
restores the snapshot, the sink truncates back to the recorded offset,
and the checkpoint replaces the snapshot-covered prefix results with a
sentinel — so a resumed streaming sweep neither re-runs nor
re-materialises the folded prefix.

Extension point
---------------
New reducers subclass nothing: an accumulator is anything with
``update``-style folding plus ``merge``/``state_dict``/``from_state``.
:class:`SweepAccumulator` composes the reducer families the paper's
tables need (count, exact mean-variance, min-max, fixed-bin quantile
sketch, ratio-vs-bound); register additional per-row statistics by
extending it (or by wrapping it) and the engine-side plumbing
(:class:`StreamFold`, checkpointing, sinks) is inherited unchanged.

Merge exactness
---------------
Every reducer here merges by **exact integer arithmetic** — counts,
histogram bins, min/max, and integer-mantissa sums for the moments
(:class:`_ExactSum`) — so ``merge`` is exactly associative and
commutative, not merely "up to rounding". Folding a row stream in one
pass and merging any partition of it into per-part accumulators produce
bit-identical state. That algebra is what lets the :mod:`repro.distrib`
shard layer promise aggregate tables bitwise-identical to the serial
path for any shard count, backend, or crash/resume pattern.
"""

from __future__ import annotations

import json
import math
from fractions import Fraction
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.parallel.checkpoint import PREFOLDED
from repro.util.errors import SolverError

#: pairwise value-ratio series tracked by default (Section 6.1's
#: headline "LPRG over G" numbers)
DEFAULT_PAIRWISE = (("lprg", "greedy"),)

#: rows with ``value <= ZERO_TOL`` count as zero-valued (matches
#: :func:`repro.experiments.aggregate.lpr_failure_stats`)
ZERO_TOL = 1e-9


# ----------------------------------------------------------------------
# reducer algebra: constant-size, mergeable, JSON-serialisable
# ----------------------------------------------------------------------
class CountAccumulator:
    """Counts observations, plus how many satisfied a predicate."""

    __slots__ = ("total", "hits")

    def __init__(self, total: int = 0, hits: int = 0):
        self.total = int(total)
        self.hits = int(hits)

    def update(self, hit: bool = False) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    def merge(self, other: "CountAccumulator") -> None:
        self.total += other.total
        self.hits += other.hits

    @property
    def fraction(self) -> float:
        """Hit fraction (``nan`` while empty)."""
        return self.hits / self.total if self.total else float("nan")

    def state_dict(self) -> dict:
        return {"total": self.total, "hits": self.hits}

    @classmethod
    def from_state(cls, state: dict) -> "CountAccumulator":
        return cls(total=state["total"], hits=state["hits"])


class _ExactSum:
    """Exact running sum of finite floats (integer-mantissa arithmetic).

    Every finite double is the rational ``n / 2**k`` exactly
    (``float.as_integer_ratio``), so the sum of any number of doubles is
    held here as ``num / 2**scale`` with Python's arbitrary-precision
    integers — no rounding ever happens while accumulating, and the
    float is produced once, correctly rounded, at read time. That makes
    the sum **fully associative and commutative**: folding a row stream
    sequentially and merging per-shard partial sums produce the same
    state bit for bit, for any partition — the keystone of the
    :mod:`repro.distrib` merge guarantee. State stays tiny: ``scale`` is
    bounded by the largest input exponent (~1100 for doubles) and
    ``num`` by ~``scale + 53 + log2(count)`` bits.
    """

    __slots__ = ("num", "scale")

    def __init__(self, num: int = 0, scale: int = 0):
        self.num = int(num)
        self.scale = int(scale)

    def add_ratio(self, n: int, k: int) -> None:
        """Add the exact rational ``n / 2**k``."""
        if k > self.scale:
            self.num = (self.num << (k - self.scale)) + n
            self.scale = k
        else:
            self.num += n << (self.scale - k)

    def add(self, x: float) -> None:
        n, d = x.as_integer_ratio()
        self.add_ratio(n, d.bit_length() - 1)

    def add_square(self, x: float) -> None:
        """Add the exact rational ``x**2`` (no float squaring error)."""
        n, d = x.as_integer_ratio()
        self.add_ratio(n * n, 2 * (d.bit_length() - 1))

    def merge(self, other: "_ExactSum") -> None:
        self.add_ratio(other.num, other.scale)

    def fraction(self) -> Fraction:
        return Fraction(self.num, 1 << self.scale)

    def over(self, count: int) -> float:
        """``sum / count`` as a correctly-rounded float (CPython's big-int
        true division rounds correctly, so this is the closest double to
        the exact mean)."""
        return self.num / ((1 << self.scale) * count)

    def state(self) -> list:
        return [self.num, self.scale]

    @classmethod
    def from_state(cls, state: "Sequence[int]") -> "_ExactSum":
        return cls(int(state[0]), int(state[1]))


class MeanVarAccumulator:
    """Mean/variance reducer with *exactly mergeable* state.

    Instead of Welford running moments (whose Chan-style ``merge`` is
    only associative up to float rounding), the accumulator keeps the
    exact integer-mantissa sums of its inputs and their squares
    (:class:`_ExactSum`): ``mean`` and ``variance`` are computed from
    the exact sums at read time, correctly rounded once. Consequently
    ``merge`` over any partition of the input stream — shards, chunks,
    resume patterns — yields **bitwise** the sequential fold's state and
    statistics, which is what lets :func:`repro.distrib.merge_shards`
    promise bitwise-identical aggregate tables for any shard count.
    Non-finite inputs are tallied separately (they have no integer
    ratio) with numpy-like read-out semantics: any NaN — or infinities
    of both signs — makes the mean NaN; one-signed infinities make it
    that infinity; the variance of any non-finite stream is NaN.
    """

    __slots__ = ("count", "_sum", "_sumsq", "n_nan", "n_posinf", "n_neginf")

    def __init__(self):
        self.count = 0
        self._sum = _ExactSum()
        self._sumsq = _ExactSum()
        self.n_nan = 0
        self.n_posinf = 0
        self.n_neginf = 0

    def _finite(self) -> bool:
        return not (self.n_nan or self.n_posinf or self.n_neginf)

    def update(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if x - x != 0.0:  # NaN or +-inf
            if x != x:
                self.n_nan += 1
            elif x > 0:
                self.n_posinf += 1
            else:
                self.n_neginf += 1
            return
        self._sum.add(x)
        self._sumsq.add_square(x)

    def merge(self, other: "MeanVarAccumulator") -> None:
        self.count += other.count
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        self.n_nan += other.n_nan
        self.n_posinf += other.n_posinf
        self.n_neginf += other.n_neginf

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0  # the empty accumulator's neutral read-out
        if not self._finite():
            if self.n_nan or (self.n_posinf and self.n_neginf):
                return float("nan")
            return math.inf if self.n_posinf else -math.inf
        return self._sum.over(self.count)

    @property
    def m2(self) -> float:
        """Sum of squared deviations from the mean (exact, then rounded)."""
        if not self.count:
            return 0.0
        if not self._finite():
            return float("nan")
        n = self.count
        exact = self._sumsq.fraction() - self._sum.fraction() ** 2 / n
        return float(exact)

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``, like ``np.var``'s default)."""
        if not self.count:
            return float("nan")
        if not self._finite():
            return float("nan")
        n = self.count
        exact = (self._sumsq.fraction() - self._sum.fraction() ** 2 / n) / n
        return float(exact)

    def mean_or_nan(self) -> float:
        return self.mean if self.count else float("nan")

    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self._sum.state(),
            "sumsq": self._sumsq.state(),
            "nan": self.n_nan,
            "pinf": self.n_posinf,
            "ninf": self.n_neginf,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MeanVarAccumulator":
        out = cls()
        out.count = int(state["count"])
        out._sum = _ExactSum.from_state(state["sum"])
        out._sumsq = _ExactSum.from_state(state["sumsq"])
        out.n_nan = int(state["nan"])
        out.n_posinf = int(state["pinf"])
        out.n_neginf = int(state["ninf"])
        return out


class MinMaxAccumulator:
    """Running minimum and maximum (``±inf`` identity while empty)."""

    __slots__ = ("vmin", "vmax")

    def __init__(self, vmin: float = math.inf, vmax: float = -math.inf):
        self.vmin = float(vmin)
        self.vmax = float(vmax)

    def update(self, x: float) -> None:
        x = float(x)
        if x < self.vmin:
            self.vmin = x
        if x > self.vmax:
            self.vmax = x

    def merge(self, other: "MinMaxAccumulator") -> None:
        if other.vmin < self.vmin:
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax

    def state_dict(self) -> dict:
        return {"vmin": self.vmin, "vmax": self.vmax}

    @classmethod
    def from_state(cls, state: dict) -> "MinMaxAccumulator":
        return cls(vmin=state["vmin"], vmax=state["vmax"])


class QuantileAccumulator:
    """Fixed-bin histogram quantile sketch: exact counts, mergeable.

    The deterministic alternative to P²/t-digest sketches (whose bin
    boundaries drift with update order): the value range is fixed up
    front and split into equal-width bins, so every update lands in a
    bin by pure arithmetic and ``merge`` is exact integer addition of
    counts. Update order and merge partitioning therefore can never
    change a single count — quantiles read off a merged pair of
    sketches are **bitwise** those of the sequential fold, the property
    the :mod:`repro.distrib` merge layer relies on. Values outside
    ``[lo, hi)`` (including ``+-inf``) are tallied in underflow/overflow
    counters and clamp their quantile read-out to the range edge; NaNs
    are counted separately and excluded. Quantiles are reported as bin
    midpoints — resolution ``(hi - lo) / n_bins``, which at the default
    ``[0, 2) / 256`` is ~0.008 on the ratio-to-LP-bound scale.
    """

    __slots__ = ("lo", "hi", "n_bins", "counts", "n_under", "n_over", "n_nan")

    def __init__(self, lo: float = 0.0, hi: float = 2.0, n_bins: int = 256):
        if not (lo < hi):
            raise SolverError(f"need lo < hi, got [{lo}, {hi})")
        if n_bins < 1:
            raise SolverError(f"n_bins must be >= 1, got {n_bins}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.n_bins = int(n_bins)
        self.counts = [0] * self.n_bins
        self.n_under = 0
        self.n_over = 0
        self.n_nan = 0

    def update(self, x: float) -> None:
        x = float(x)
        if x != x:
            self.n_nan += 1
        elif x < self.lo:
            self.n_under += 1
        elif x >= self.hi:
            self.n_over += 1
        else:
            index = int((x - self.lo) * self.n_bins / (self.hi - self.lo))
            # float rounding at the upper edge can overshoot by one
            self.counts[min(index, self.n_bins - 1)] += 1

    def merge(self, other: "QuantileAccumulator") -> None:
        if (other.lo, other.hi, other.n_bins) != (self.lo, self.hi, self.n_bins):
            raise SolverError(
                f"cannot merge quantile sketches with different bins: "
                f"[{self.lo}, {self.hi})/{self.n_bins} vs "
                f"[{other.lo}, {other.hi})/{other.n_bins}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.n_under += other.n_under
        self.n_over += other.n_over
        self.n_nan += other.n_nan

    @property
    def count(self) -> int:
        """Ranked observations (NaNs excluded)."""
        return self.n_under + self.n_over + sum(self.counts)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (bin midpoint; NaN while empty)."""
        if not 0.0 <= q <= 1.0:
            raise SolverError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return float("nan")
        rank = max(1, math.ceil(q * total))  # 1-based rank of the target
        if rank <= self.n_under:
            return self.lo
        rank -= self.n_under
        cumulative = 0
        width = (self.hi - self.lo) / self.n_bins
        for i, c in enumerate(self.counts):
            cumulative += c
            if rank <= cumulative:
                return self.lo + (i + 0.5) * width
        return self.hi  # target sits in the overflow tally

    def median(self) -> float:
        return self.quantile(0.5)

    def state_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "n_bins": self.n_bins,
            "counts": list(self.counts),
            "under": self.n_under,
            "over": self.n_over,
            "nan": self.n_nan,
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileAccumulator":
        out = cls(lo=state["lo"], hi=state["hi"], n_bins=state["n_bins"])
        out.counts = [int(c) for c in state["counts"]]
        if len(out.counts) != out.n_bins:
            raise SolverError(
                f"quantile sketch state has {len(out.counts)} counts for "
                f"{out.n_bins} bins"
            )
        out.n_under = int(state["under"])
        out.n_over = int(state["over"])
        out.n_nan = int(state["nan"])
        return out


class StatAccumulator:
    """One float series: count + exact mean/variance + min/max."""

    __slots__ = ("moments", "extrema")

    def __init__(self):
        self.moments = MeanVarAccumulator()
        self.extrema = MinMaxAccumulator()

    def update(self, x: float) -> None:
        self.moments.update(x)
        self.extrema.update(x)

    def merge(self, other: "StatAccumulator") -> None:
        self.moments.merge(other.moments)
        self.extrema.merge(other.extrema)

    @property
    def count(self) -> int:
        return self.moments.count

    @property
    def mean(self) -> float:
        return self.moments.mean_or_nan()

    def state_dict(self) -> dict:
        return {
            "moments": self.moments.state_dict(),
            "extrema": self.extrema.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StatAccumulator":
        out = cls()
        out.moments = MeanVarAccumulator.from_state(state["moments"])
        out.extrema = MinMaxAccumulator.from_state(state["extrema"])
        return out


class RatioBoundAccumulator:
    """Value-relative-to-LP-bound reducer for one method.

    Tracks the full stats of the ratio series — including a fixed-bin
    quantile sketch for median/p95 — plus the zero-value fraction: the
    streamed form of :func:`repro.experiments.aggregate.
    lpr_failure_stats` ("LPR ... sometimes rounds every beta to zero").
    """

    __slots__ = ("ratio", "zeros", "sketch")

    def __init__(self):
        self.ratio = StatAccumulator()
        self.zeros = CountAccumulator()
        self.sketch = QuantileAccumulator()

    def update(self, ratio: float, value: float) -> None:
        self.ratio.update(ratio)
        self.sketch.update(ratio)
        self.zeros.update(value <= ZERO_TOL)

    def merge(self, other: "RatioBoundAccumulator") -> None:
        self.ratio.merge(other.ratio)
        self.sketch.merge(other.sketch)
        self.zeros.merge(other.zeros)

    def stats(self) -> dict:
        return {
            "mean_ratio": self.ratio.mean,
            "zero_fraction": self.zeros.fraction,
            "median_ratio": self.sketch.median(),
            "p95_ratio": self.sketch.quantile(0.95),
        }

    def state_dict(self) -> dict:
        return {
            "ratio": self.ratio.state_dict(),
            "zeros": self.zeros.state_dict(),
            "sketch": self.sketch.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RatioBoundAccumulator":
        out = cls()
        out.ratio = StatAccumulator.from_state(state["ratio"])
        out.zeros = CountAccumulator.from_state(state["zeros"])
        out.sketch = QuantileAccumulator.from_state(state["sketch"])
        return out


class PairRatioAccumulator:
    """Mean of per-replicate ``value(num)/value(den)`` ratios.

    Mirrors :func:`repro.experiments.aggregate.pairwise_value_ratio`:
    a replicate where the denominator scored 0 contributes nothing when
    the numerator is also 0, and is counted as an (excluded-from-mean)
    infinity otherwise.
    """

    __slots__ = ("finite", "infinities")

    def __init__(self):
        self.finite = MeanVarAccumulator()
        self.infinities = 0

    def update(self, numerator_value: float, denominator_value: float) -> None:
        if denominator_value <= 0:
            if numerator_value > 0:
                self.infinities += 1
            return
        self.finite.update(numerator_value / denominator_value)

    def merge(self, other: "PairRatioAccumulator") -> None:
        self.finite.merge(other.finite)
        self.infinities += other.infinities

    @property
    def mean(self) -> float:
        return self.finite.mean_or_nan()

    def state_dict(self) -> dict:
        return {"finite": self.finite.state_dict(), "inf": self.infinities}

    @classmethod
    def from_state(cls, state: dict) -> "PairRatioAccumulator":
        out = cls()
        out.finite = MeanVarAccumulator.from_state(state["finite"])
        out.infinities = int(state["inf"])
        return out


# ----------------------------------------------------------------------
# the composite sweep aggregate
# ----------------------------------------------------------------------
def _group_key(method: str, objective: str, k: int) -> str:
    return f"{method}|{objective}|{k}"


def _split_group_key(key: str) -> tuple:
    method, objective, k = key.rsplit("|", 2)
    return method, objective, int(k)


class SweepAccumulator:
    """Everything :mod:`repro.experiments.aggregate` computes from raw
    rows, held as constant-size mergeable state.

    One instance replaces the materialised row list of a sweep: fold
    each task's row list with :meth:`fold_task` (or build one from an
    existing list with :meth:`from_rows` — the in-memory bitwise
    reference), then read the paper's tables through the accessors
    mirroring the classic aggregate functions (:meth:`mean_ratio_by_k`,
    :meth:`runtime_by_k`, :meth:`headline_ratios`,
    :meth:`lpr_failure_stats`). State size is O(distinct (method,
    objective, K) groups) — independent of replicate count.
    """

    #: bumped to 2 when the mean/variance reducers switched to exact
    #: integer-mantissa sums and the ratio quantile sketch landed (the
    #: repro.distrib merge guarantee); version-1 snapshots cannot be
    #: upgraded (running Welford moments do not determine exact sums)
    STATE_VERSION = 2

    def __init__(self, pairwise: Sequence = DEFAULT_PAIRWISE):
        #: (method, objective, k) -> ratio-to-LP stats
        self.ratio_groups: dict[str, StatAccumulator] = {}
        #: (method, objective, k) -> runtime stats
        self.runtime_groups: dict[str, StatAccumulator] = {}
        #: (numerator, denominator, objective) -> paired value ratios
        self.pair_groups: dict[str, PairRatioAccumulator] = {}
        #: method -> ratio-vs-bound failure stats
        self.method_groups: dict[str, RatioBoundAccumulator] = {}
        self.pairwise = tuple((str(n), str(d)) for n, d in pairwise)
        self.n_rows = 0
        self.n_tasks = 0

    # -- folding -------------------------------------------------------
    def fold_task(self, rows: Sequence) -> None:
        """Fold one replicate task's row list (order-sensitive: callers
        must present tasks in task-index order for bitwise stability)."""
        self.n_tasks += 1
        values: dict[str, dict[str, float]] = {}
        for row in rows:
            self.n_rows += 1
            key = _group_key(row.method, row.objective, row.setting.k)
            group = self.ratio_groups.get(key)
            if group is None:
                group = self.ratio_groups[key] = StatAccumulator()
                self.runtime_groups[key] = StatAccumulator()
            group.update(row.ratio)
            self.runtime_groups[key].update(row.runtime)
            method_group = self.method_groups.get(row.method)
            if method_group is None:
                method_group = self.method_groups[row.method] = (
                    RatioBoundAccumulator()
                )
            method_group.update(row.ratio, row.value)
            values.setdefault(row.objective, {})[row.method] = row.value
        for objective, by_method in values.items():
            for num, den in self.pairwise:
                if num in by_method and den in by_method:
                    key = f"{num}|{den}|{objective}"
                    pair = self.pair_groups.get(key)
                    if pair is None:
                        pair = self.pair_groups[key] = PairRatioAccumulator()
                    pair.update(by_method[num], by_method[den])

    @classmethod
    def from_rows(
        cls,
        rows: Sequence,
        methods: "Sequence[str] | None" = None,
        objectives: "Sequence[str] | None" = None,
        pairwise: Sequence = DEFAULT_PAIRWISE,
    ) -> "SweepAccumulator":
        """The in-memory reference fold: the exact aggregate a streaming
        sweep produces, computed from a materialised row list.

        Rows are re-chunked into their originating replicate tasks —
        arithmetically (``(1 + len(methods)) * len(objectives)`` rows per
        task) when the sweep's method/objective lists are given, else by
        the per-replicate boundary marker (each task's rows start with
        the LP-bound row of the first objective).
        """
        agg = cls(pairwise=pairwise)
        for task_rows in iter_task_groups(rows, methods, objectives):
            agg.fold_task(task_rows)
        return agg

    # -- algebra -------------------------------------------------------
    def merge(self, other: "SweepAccumulator") -> None:
        """Fold another partial aggregate into this one.

        **Exactly associative and order-insensitive**: every composed
        reducer merges by exact integer arithmetic (counts, extrema,
        histogram bins, integer-mantissa sums), so merging per-shard
        partials over *any* partition of a row stream reproduces the
        sequential fold's state — and therefore its tables — bit for
        bit. This is the algebraic contract :func:`repro.distrib.
        merge_shards` builds on (pinned by the partition property in
        ``tests/test_distrib_merge.py``)."""
        for attr in ("ratio_groups", "runtime_groups", "pair_groups",
                     "method_groups"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            for key, acc in theirs.items():
                if key in mine:
                    mine[key].merge(acc)
                else:
                    mine[key] = _copy_via_state(acc)
        self.n_rows += other.n_rows
        self.n_tasks += other.n_tasks

    # -- the paper's tables -------------------------------------------
    def mean_ratio_by_k(self, method: str, objective: str) -> list:
        """Streamed :func:`~repro.experiments.aggregate.mean_ratio_by_k`:
        ``[(k, mean value/LP ratio)]`` for one method+objective."""
        out = []
        for key, acc in self.ratio_groups.items():
            m, o, k = _split_group_key(key)
            if m == method and o == objective:
                out.append((k, acc.mean))
        return sorted(out)

    def runtime_by_k(self, method: str, objective: str = "maxmin") -> list:
        """Streamed :func:`~repro.experiments.aggregate.runtime_by_k`."""
        out = []
        for key, acc in self.runtime_groups.items():
            m, o, k = _split_group_key(key)
            if m == method and o == objective:
                out.append((k, acc.mean))
        return sorted(out)

    def pairwise_value_ratio(
        self, numerator: str, denominator: str, objective: str
    ) -> float:
        """Streamed :func:`~repro.experiments.aggregate.
        pairwise_value_ratio` (tracked pairs only)."""
        key = f"{numerator}|{denominator}|{objective}"
        if (numerator, denominator) not in self.pairwise:
            raise SolverError(
                f"pair ({numerator!r}, {denominator!r}) was not tracked by "
                f"this aggregate; tracked: {list(self.pairwise)}"
            )
        pair = self.pair_groups.get(key)
        return pair.mean if pair is not None else float("nan")

    def headline_ratios(self) -> dict:
        """Streamed :func:`~repro.experiments.aggregate.headline_ratios`."""
        return {
            objective: self.pairwise_value_ratio("lprg", "greedy", objective)
            for objective in ("maxmin", "sum")
        }

    def lpr_failure_stats(self) -> dict:
        """Streamed :func:`~repro.experiments.aggregate.lpr_failure_stats`."""
        return self.method_failure_stats("lpr")

    def method_failure_stats(self, method: str) -> dict:
        group = self.method_groups.get(method)
        if group is None:
            nan = float("nan")
            return {
                "mean_ratio": nan,
                "zero_fraction": nan,
                "median_ratio": nan,
                "p95_ratio": nan,
            }
        return group.stats()

    def series_labels(self) -> list:
        """Sorted distinct (method, objective) pairs seen by the fold."""
        seen = {_split_group_key(k)[:2] for k in self.ratio_groups}
        return sorted(seen)

    def ratio_stats(self) -> dict:
        """Full per-group ratio statistics (count / mean / variance /
        min / max) keyed by ``method|objective|k`` — the spread the
        exact-sum moment and min-max reducers track beyond the headline
        means."""
        out = {}
        for key in sorted(self.ratio_groups):
            acc = self.ratio_groups[key]
            out[key] = {
                "count": acc.count,
                "mean": acc.mean,
                "variance": acc.moments.variance,
                "min": acc.extrema.vmin,
                "max": acc.extrema.vmax,
            }
        return out

    def tables(self) -> dict:
        """Every aggregate as one JSON-compatible dict (sorted keys) —
        the comparison unit of the equivalence suite and the memory
        benchmark."""
        return {
            "n_rows": self.n_rows,
            "n_tasks": self.n_tasks,
            "mean_ratio_by_k": {
                f"{m}|{o}": self.mean_ratio_by_k(m, o)
                for m, o in self.series_labels()
            },
            "ratio_stats": self.ratio_stats(),
            "runtime_mean_by_k": {
                f"{m}|{o}": self.runtime_by_k(m, o)
                for m, o in self.series_labels()
            },
            "pairwise": {
                key: {"mean": acc.mean, "infinities": acc.infinities}
                for key, acc in sorted(self.pair_groups.items())
            },
            "method_failure": {
                method: group.stats()
                for method, group in sorted(self.method_groups.items())
            },
        }

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable state; round-trips bitwise (Python's float
        repr is shortest-round-trip, so json preserves every bit)."""
        return {
            "version": self.STATE_VERSION,
            "pairwise": [list(p) for p in self.pairwise],
            "n_rows": self.n_rows,
            "n_tasks": self.n_tasks,
            "ratio_groups": {
                k: a.state_dict() for k, a in self.ratio_groups.items()
            },
            "runtime_groups": {
                k: a.state_dict() for k, a in self.runtime_groups.items()
            },
            "pair_groups": {
                k: a.state_dict() for k, a in self.pair_groups.items()
            },
            "method_groups": {
                k: a.state_dict() for k, a in self.method_groups.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "SweepAccumulator":
        if state.get("version") != cls.STATE_VERSION:
            raise SolverError(
                f"cannot restore SweepAccumulator state version "
                f"{state.get('version')!r} (expected {cls.STATE_VERSION})"
            )
        agg = cls(pairwise=[tuple(p) for p in state["pairwise"]])
        agg.n_rows = int(state["n_rows"])
        agg.n_tasks = int(state["n_tasks"])
        agg.ratio_groups = {
            k: StatAccumulator.from_state(s)
            for k, s in state["ratio_groups"].items()
        }
        agg.runtime_groups = {
            k: StatAccumulator.from_state(s)
            for k, s in state["runtime_groups"].items()
        }
        agg.pair_groups = {
            k: PairRatioAccumulator.from_state(s)
            for k, s in state["pair_groups"].items()
        }
        agg.method_groups = {
            k: RatioBoundAccumulator.from_state(s)
            for k, s in state["method_groups"].items()
        }
        return agg


def _copy_via_state(acc):
    return type(acc).from_state(acc.state_dict())


def snapshot_compatible(state: dict) -> bool:
    """Can this build restore a checkpoint snapshot's accumulator state?

    The :class:`~repro.parallel.checkpoint.CampaignCheckpoint`
    ``snapshot_validator`` for streamed sweeps: a snapshot written by an
    older accumulator format (e.g. the pre-exact-sum ``STATE_VERSION``
    1) is rejected here — so the resume discards it with a warning and
    replays the still-intact task records, instead of crashing in
    :meth:`SweepAccumulator.from_state` after the replay payloads were
    already released.
    """
    try:
        aggregate = state.get("aggregate")
        return (
            isinstance(aggregate, dict)
            and aggregate.get("version") == SweepAccumulator.STATE_VERSION
        )
    except AttributeError:
        return False


def iter_task_groups(
    rows: Sequence,
    methods: "Sequence[str] | None" = None,
    objectives: "Sequence[str] | None" = None,
) -> Iterable[list]:
    """Split a materialised sweep row list back into per-task chunks.

    With the sweep's ``methods``/``objectives`` the chunk length is exact
    arithmetic; without, a new task starts at each LP-bound row of the
    first objective (``run_replicate`` emits it first), with a
    ``(setting, replicate)`` change as a fallback boundary.
    """
    rows = list(rows)
    if not rows:
        return
    if methods is not None and objectives is not None:
        per_task = (1 + len(methods)) * len(objectives)
        if len(rows) % per_task:
            raise SolverError(
                f"{len(rows)} rows is not a multiple of {per_task} "
                f"rows/task for {len(methods)} methods x "
                f"{len(objectives)} objectives"
            )
        for start in range(0, len(rows), per_task):
            yield rows[start : start + per_task]
        return
    first_objective = rows[0].objective
    group: list = []
    last_key = None
    for row in rows:
        replicate_key = (row.setting, row.replicate)
        starts_task = (
            row.method == "lp" and row.objective == first_objective
        ) or (group and replicate_key != last_key)
        if group and starts_task:
            yield group
            group = []
        group.append(row)
        last_key = replicate_key
    yield group


# ----------------------------------------------------------------------
# row sinks: where the raw rows go instead of RAM
# ----------------------------------------------------------------------
class RowSink:
    """Destination for raw sweep rows under streaming aggregation.

    The contract mirrors the fold's determinism: rows arrive strictly in
    task order, so a file sink's bytes are a pure function of the sweep
    — and exact crash/resume only needs :meth:`offset` (recorded in the
    accumulator snapshot) and :meth:`start` with that offset (which
    truncates whatever a crashed run wrote past it).
    """

    path: "Path | None" = None

    def start(self, offset: "int | None" = None) -> None:
        """Open for writing; ``offset=None`` starts fresh, an integer
        resumes by truncating back to that byte position."""

    def write_rows(self, rows: Sequence) -> None:
        """Append one task's rows."""

    def offset(self) -> int:
        """Current byte position (0 for non-file sinks)."""
        return 0

    def close(self) -> None:
        pass


class NullRowSink(RowSink):
    """Discard rows entirely (aggregate-only sweeps)."""


class _FileRowSink(RowSink):
    """Shared open/truncate/offset plumbing of the file-backed sinks."""

    #: ``open()`` newline mode ('' for csv-module writers, see the csv
    #: docs; None = universal for line-oriented text)
    _newline: "str | None" = None

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self._fh = None
        # deferred: importing persistence at module scope would pull the
        # whole experiments package into `import repro.parallel`
        from repro.experiments.persistence import row_to_dict

        self._row_to_dict = row_to_dict

    def start(self, offset: "int | None" = None) -> None:
        # offset 0 only arises from a snapshot taken before this sink
        # ever wrote (e.g. a resume that newly added a row sink): treat
        # it as a fresh start, not a resume of existing bytes.
        if offset is None or offset == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", newline=self._newline)
            self._on_start()
            self._write_prologue()
            self._fh.flush()
            return
        if not self.path.exists():
            raise SolverError(
                f"cannot resume row sink {self.path}: file is missing "
                f"(expected at least {offset} bytes)"
            )
        if self.path.stat().st_size < offset:
            raise SolverError(
                f"cannot resume row sink {self.path}: file has "
                f"{self.path.stat().st_size} bytes, snapshot recorded "
                f"{offset}"
            )
        with self.path.open("r+") as fh:
            fh.truncate(offset)
        self._fh = self.path.open("a", newline=self._newline)
        self._on_start()

    def _on_start(self) -> None:
        """Hook: the file handle is open, per-handle state may build."""

    def _write_prologue(self) -> None:
        pass

    def write_rows(self, rows: Sequence) -> None:
        for row in rows:
            self._write_row(row)
        self._fh.flush()

    def _write_row(self, row) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def offset(self) -> int:
        return self._fh.tell() if self._fh is not None else 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class JsonlRowSink(_FileRowSink):
    """Rows as JSON lines (the lossless format of
    :mod:`repro.experiments.persistence`)."""

    def _write_row(self, row) -> None:
        self._fh.write(json.dumps(self._row_to_dict(row), sort_keys=True))
        self._fh.write("\n")


class CsvRowSink(_FileRowSink):
    """Rows as CSV with the persistence module's fixed header."""

    _newline = ""  # the csv module handles line endings itself

    def __init__(self, path: "str | Path"):
        super().__init__(path)
        from repro.experiments.persistence import _FIELDS

        self._fields = list(_FIELDS)
        self._writer = None

    def _on_start(self) -> None:
        import csv

        self._writer = csv.DictWriter(self._fh, fieldnames=self._fields)

    def _write_prologue(self) -> None:
        self._writer.writeheader()

    def _write_row(self, row) -> None:
        self._writer.writerow(self._row_to_dict(row))


class CallbackRowSink(RowSink):
    """Tee sink: delegate to an inner sink, then hand each written batch
    to a callback.

    The streaming feed of the service layer: the fold writes rows
    strictly in task-index order, so the callback observes exactly the
    rows (and order) of the serial reference fold — after they are
    durably in the inner sink, so a consumer that saw a batch can trust
    the sink already holds it. Resume offsets are the inner sink's; a
    resumed prefix is *not* replayed through the callback (it was
    observed by the run that wrote it).
    """

    def __init__(self, callback: "Callable[[Sequence], None]", inner: RowSink):
        self.callback = callback
        self.inner = inner

    @property
    def path(self) -> "Path | None":  # the fold's sink identity check
        return self.inner.path

    def start(self, offset: "int | None" = None) -> None:
        self.inner.start(offset)

    def write_rows(self, rows: Sequence) -> None:
        self.inner.write_rows(rows)
        self.callback(rows)

    def offset(self) -> int:
        return self.inner.offset()

    def close(self) -> None:
        self.inner.close()


def open_row_sink(path: "str | Path | None") -> RowSink:
    """Sink for ``path``: ``None`` discards, ``*.csv`` writes CSV,
    anything else JSON lines."""
    if path is None:
        return NullRowSink()
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return CsvRowSink(path)
    return JsonlRowSink(path)


def validate_row_sink_path(path: "str | Path") -> Path:
    """Fail-fast check that a row sink path is writable.

    Raises :class:`SolverError` *before* a campaign starts when the
    parent directory is missing, not a directory, or not writable —
    instead of crashing mid-sweep with work already spent.
    """
    import os

    path = Path(path)
    parent = path.parent
    if not parent.exists():
        raise SolverError(
            f"row sink directory {parent} does not exist; create it "
            "before starting the sweep"
        )
    if not parent.is_dir():
        raise SolverError(f"row sink parent {parent} is not a directory")
    if path.exists() and path.is_dir():
        raise SolverError(f"row sink path {path} is a directory")
    probe = path if path.exists() else parent
    if not os.access(probe, os.W_OK):
        raise SolverError(f"row sink path {path} is not writable")
    return path


# ----------------------------------------------------------------------
# the engine-side consumer
# ----------------------------------------------------------------------
class StreamFold:
    """Order-pinning engine consumer: completions in, aggregate out.

    Accepts task results in *any* completion order (the engine's pool
    delivers whatever finishes first), holds the out-of-order ones in a
    reorder buffer, and folds strictly in task-index order — the
    determinism guarantee of the module docstring. Optionally writes
    each folded task's rows to a :class:`RowSink` and snapshots
    accumulator state into the campaign checkpoint every
    ``snapshot_every`` folded tasks.

    Buffer bounds: during a live pooled run the engine throttles chunk
    submission against :meth:`buffered_tasks`, so the buffer stays
    O(jobs x chunk_size) even when one pathologically slow task holds
    the fold back. On checkpoint resume the buffer is bounded by the
    completed records beyond the restored snapshot's prefix (those rows
    are already materialised by the checkpoint load; buffering keeps
    references, not copies).
    """

    def __init__(
        self,
        aggregator: SweepAccumulator,
        n_tasks: int,
        sink: "RowSink | None" = None,
        task_ids: "Sequence[str] | None" = None,
        checkpoint=None,
        snapshot_every: int = 32,
        rows_of: "Callable[[Any], Sequence] | None" = None,
    ):
        if checkpoint is not None and task_ids is None:
            raise SolverError("checkpointed streaming requires task_ids")
        if snapshot_every < 1:
            raise SolverError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.aggregator = aggregator
        self.sink = sink if sink is not None else NullRowSink()
        self.n_tasks = int(n_tasks)
        self.task_ids = list(task_ids) if task_ids is not None else None
        self.checkpoint = checkpoint
        self.snapshot_every = int(snapshot_every)
        #: task results completed out of order, awaiting their turn
        self.pending: dict[int, Any] = {}
        #: next task index to fold == number of tasks folded so far
        self.next_index = 0
        self._restored = 0
        self._started = False
        self.rows_of = rows_of if rows_of is not None else (lambda r: r)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the sink fresh (no snapshot to resume from)."""
        self.sink.start(None)
        self._started = True

    def restore(self, state: dict) -> None:
        """Resume from a checkpoint snapshot written by a previous run.

        The snapshot pins the row-sink identity: resuming with a
        different (added, dropped or relocated) sink would silently
        produce a sink file missing every snapshot-covered row, so a
        mismatch fails loudly instead.
        """
        snapshot_sink = state.get("row_sink")
        if snapshot_sink != self._sink_identity():
            raise SolverError(
                f"cannot resume: this streamed campaign ran with "
                f"row_sink={snapshot_sink!r} but is being resumed with "
                f"row_sink={self._sink_identity()!r}; the rows already "
                "folded into the snapshot would be missing from the new "
                "sink. Resume with the original row_sink (or restart "
                "without resume)."
            )
        self.aggregator = SweepAccumulator.from_state(state["aggregate"])
        self.next_index = self._restored = int(state["n_folded"])
        self.sink.start(int(state.get("sink_offset", 0)))
        self._started = True

    def _sink_identity(self) -> "str | None":
        path = self.sink.path
        return None if path is None else str(Path(path).resolve())

    # ------------------------------------------------------------------
    def buffered_tasks(self) -> int:
        """Out-of-order results currently held back (the engine's
        backpressure signal)."""
        return len(self.pending)

    # ------------------------------------------------------------------
    def add(self, index: int, result) -> None:
        """Engine callback: task ``index`` finished with ``result``."""
        if not self._started:
            self.start()
        if result is PREFOLDED:
            if index >= self._restored:
                raise SolverError(
                    f"task index {index} marked pre-folded but the restored "
                    f"snapshot only covers {self._restored} tasks"
                )
            return
        if index < self.next_index:
            raise SolverError(
                f"task index {index} delivered twice to the stream fold"
            )
        self.pending[index] = result
        while self.next_index in self.pending:
            rows = self.rows_of(self.pending.pop(self.next_index))
            self.aggregator.fold_task(rows)
            self.sink.write_rows(rows)
            if self.checkpoint is not None:
                self.checkpoint.mark_folded(self.task_ids[self.next_index])
            self.next_index += 1
            if (
                self.checkpoint is not None
                and self.next_index % self.snapshot_every == 0
            ):
                self._snapshot()

    def _snapshot(self) -> None:
        self.checkpoint.save_state(
            {
                "n_folded": self.next_index,
                "aggregate": self.aggregator.state_dict(),
                "sink_offset": self.sink.offset(),
                "row_sink": self._sink_identity(),
            }
        )

    # ------------------------------------------------------------------
    def finalize(self) -> SweepAccumulator:
        """Close out the fold; returns the completed aggregate."""
        if not self._started:
            self.start()  # empty campaign: still produce a valid sink
        if self.pending or self.next_index != self.n_tasks:
            raise SolverError(
                f"stream fold incomplete: folded {self.next_index} of "
                f"{self.n_tasks} tasks ({len(self.pending)} buffered)"
            )
        if self.checkpoint is not None:
            self._snapshot()
        self.sink.close()
        return self.aggregator
