"""Process-pool campaign engine: deterministic fan-out of pure tasks.

A *campaign* is an ordered list of independent tasks, each handled by a
picklable worker function. The engine runs them either inline
(``jobs=1``, the exact serial semantics every result is defined against)
or on a :class:`~concurrent.futures.ProcessPoolExecutor`, and in both
cases returns results **in task order** — parallelism is an execution
detail, never a semantic one. Determinism therefore reduces to the
tasks themselves being pure functions of their payload (sweep tasks
carry their own :class:`numpy.random.SeedSequence`, see
:mod:`repro.parallel.sweep`).

Fault model
-----------
* A task that *raises* is reported as a :class:`~repro.util.errors.
  SolverError` carrying the worker-side traceback; every task whose
  result reached the engine before the failure is recorded to the
  checkpoint first, so a re-run with ``resume=True`` repeats only the
  failed task and any work still in flight when the campaign aborted.
* A worker process that *dies* (segfault, ``os._exit``, OOM kill)
  breaks the pool. The engine rebuilds the pool and retries the
  affected tasks one-by-one up to ``max_task_retries`` times each, so a
  transient crash costs one retry while a task that reliably kills its
  worker surfaces as a :class:`SolverError` naming the task.
"""

from __future__ import annotations

import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.util.errors import SolverError

#: chunks per worker the default chunking aims for; >1 smooths load
#: imbalance between cheap and expensive tasks.
_CHUNKS_PER_JOB = 4


def default_chunk_size(n_tasks: int, jobs: int) -> int:
    """Chunk size balancing IPC overhead against load imbalance."""
    if n_tasks <= 0 or jobs <= 1:
        return max(1, n_tasks)
    return max(1, -(-n_tasks // (jobs * _CHUNKS_PER_JOB)))


def _run_chunk(worker, indexed_tasks):
    """Worker-side driver: run one chunk, trapping per-task exceptions.

    Returns ``(index, ("ok", result))`` or ``(index, ("err", repr,
    traceback))`` tuples; exceptions are stringified because arbitrary
    exception objects (and their tracebacks) do not survive pickling.
    """
    out = []
    for index, task in indexed_tasks:
        try:
            out.append((index, ("ok", worker(task))))
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            out.append((index, ("err", repr(exc), traceback.format_exc())))
            break  # the engine fails the campaign on this error; the
            # chunk's remaining tasks are abandoned unrun
    return out


class CampaignEngine:
    """Run a list of tasks through ``worker``, serially or on a pool.

    Parameters
    ----------
    worker:
        Module-level callable ``task -> result`` (must be picklable for
        ``jobs > 1``).
    jobs:
        Worker processes; ``1`` (the default) runs inline in this
        process with no pool, no pickling and no subprocess — the
        reference semantics.
    chunk_size:
        Tasks per pool submission; defaults to
        :func:`default_chunk_size`.
    max_task_retries:
        How often a task whose worker process *died* is retried before
        the campaign fails (task-raised exceptions are never retried —
        they are deterministic).
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        jobs: int = 1,
        chunk_size: "int | None" = None,
        max_task_retries: int = 2,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.worker = worker
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self.max_task_retries = int(max_task_retries)

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[Any],
        task_ids: "Sequence[str] | None" = None,
        checkpoint=None,
        progress: "Callable[[int, int], None] | None" = None,
        consumer=None,
    ) -> "list | None":
        """Execute ``tasks``; return their results in task order.

        Parameters
        ----------
        tasks:
            The task payloads, one per call to ``worker``.
        task_ids:
            Stable string ids (required with ``checkpoint``); tasks
            whose id the checkpoint already holds are *not* re-run.
        checkpoint:
            Object with a ``completed`` mapping ``task_id -> result``
            and a ``record(task_id, result)`` method (see
            :class:`repro.parallel.checkpoint.CampaignCheckpoint`).
        progress:
            Optional ``(n_done, n_total)`` callback, called after every
            finished task.
        consumer:
            Streaming mode: an object with ``add(index, result)``
            (e.g. :class:`repro.parallel.stream.StreamFold`). Every
            result — replayed from the checkpoint or freshly computed —
            is handed to it in completion order instead of being
            collected, and ``run`` returns ``None``: the engine then
            holds O(in-flight) results, never O(tasks). Checkpoint
            replays are delivered first, in task order. If the consumer
            exposes ``buffered_tasks()`` (results it is holding out of
            order), the pool stops submitting new chunks while that
            count exceeds a few chunks' worth — so one pathologically
            slow task cannot make the reorder buffer grow O(tasks).
        """
        tasks = list(tasks)
        if task_ids is None:
            if checkpoint is not None:
                raise ValueError("checkpointing requires task_ids")
            task_ids = [str(i) for i in range(len(tasks))]
        else:
            task_ids = [str(t) for t in task_ids]
            if len(task_ids) != len(tasks):
                raise ValueError(
                    f"{len(tasks)} tasks but {len(task_ids)} task_ids"
                )
            if len(set(task_ids)) != len(task_ids):
                raise ValueError("task_ids must be unique")

        results: "list | None" = None if consumer is not None else (
            [None] * len(tasks)
        )
        done = 0
        pending: list[int] = []
        completed = checkpoint.completed if checkpoint is not None else {}
        for i, tid in enumerate(task_ids):
            if tid in completed:
                if consumer is not None:
                    consumer.add(i, completed[tid])
                else:
                    results[i] = completed[tid]
                done += 1
            else:
                pending.append(i)
        total = len(tasks)
        if progress is not None and done:
            progress(done, total)

        def finish(index: int, result) -> None:
            nonlocal done
            if checkpoint is not None:
                checkpoint.record(task_ids[index], result)
            if consumer is not None:
                consumer.add(index, result)
            else:
                results[index] = result
            done += 1
            if progress is not None:
                progress(done, total)

        if self.jobs == 1 or len(pending) <= 1:
            for i in pending:
                try:
                    result = self.worker(tasks[i])
                except Exception as exc:
                    raise SolverError(
                        f"campaign task {task_ids[i]!r} failed: {exc!r}"
                    ) from exc
                finish(i, result)
            return results

        self._run_pool(tasks, task_ids, pending, finish, consumer)
        return results

    # ------------------------------------------------------------------
    def _run_pool(self, tasks, task_ids, pending, finish, consumer=None) -> None:
        """Fan ``pending`` out over a process pool, rebuilding it when a
        worker dies and isolating repeat offenders."""
        chunk_size = self.chunk_size or default_chunk_size(
            len(pending), self.jobs
        )
        queue = [
            pending[i : i + chunk_size]
            for i in range(0, len(pending), chunk_size)
        ]
        attempts = {i: 0 for i in pending}
        # Backpressure for order-pinning consumers: while the consumer
        # buffers more than a few chunks' worth of out-of-order results
        # (one slow task holding the fold back), stop feeding the pool —
        # in-flight futures keep draining, and the blocking task is
        # always already submitted (chunks are submitted in index order;
        # after a pool crash, completed work simply re-runs first).
        buffered = getattr(consumer, "buffered_tasks", None)
        window = (self.jobs * 2 + 2) * chunk_size

        def throttled() -> bool:
            return buffered is not None and buffered() > window

        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            futures = {}
            while queue or futures:
                while (
                    queue
                    and len(futures) < self.jobs * 2
                    # never starve: with no futures in flight, progress
                    # requires submitting regardless of buffered lag
                    and (not futures or not throttled())
                ):
                    chunk = queue.pop(0)
                    indexed = [(i, tasks[i]) for i in chunk]
                    futures[pool.submit(_run_chunk, self.worker, indexed)] = chunk
                ready, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in ready:
                    chunk = futures.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        # Unknown which task killed the worker: drain the
                        # other in-flight chunks back into the queue
                        # (their results, if any, are recomputed — tasks
                        # are pure), rebuild the pool, and retry the
                        # suspects in single-task chunks to isolate the
                        # killer. Restart the wait loop: the remaining
                        # futures all belong to the dead pool.
                        for other in list(futures):
                            queue.append(futures.pop(other))
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=self.jobs)
                        retry = []
                        for i in chunk:
                            attempts[i] += 1
                            if attempts[i] > self.max_task_retries:
                                raise SolverError(
                                    f"campaign task {task_ids[i]!r} killed its "
                                    f"worker process {attempts[i]} times"
                                ) from None
                            retry.append([i])
                        queue = retry + queue
                        break
                    for index, payload in outcomes:
                        if payload[0] == "ok":
                            finish(index, payload[1])
                        else:
                            # Tasks the chunk completed before the error
                            # were just recorded above; the error itself
                            # fails the campaign (task exceptions are
                            # deterministic — retrying cannot help).
                            _, exc_repr, tb = payload
                            raise SolverError(
                                f"campaign task {task_ids[index]!r} failed: "
                                f"{exc_repr}\n--- worker traceback ---\n{tb}"
                            )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
