"""Process-pool campaign engine: deterministic fan-out of pure tasks.

A *campaign* is an ordered list of independent tasks, each handled by a
picklable worker function. The engine runs them either inline
(``jobs=1``, the exact serial semantics every result is defined against)
or on a :class:`~concurrent.futures.ProcessPoolExecutor`, and in both
cases returns results **in task order** — parallelism is an execution
detail, never a semantic one. Determinism therefore reduces to the
tasks themselves being pure functions of their payload (sweep tasks
carry their own :class:`numpy.random.SeedSequence`, see
:mod:`repro.parallel.sweep`).

Fault model
-----------
Without a :class:`RetryPolicy` (the default, and the historical
behavior):

* A task that *raises* is reported as a :class:`~repro.util.errors.
  SolverError` carrying the worker-side traceback; every task whose
  result reached the engine before the failure is recorded to the
  checkpoint first, so a re-run with ``resume=True`` repeats only the
  failed task and any work still in flight when the campaign aborted.
* A worker process that *dies* (segfault, ``os._exit``, OOM kill)
  breaks the pool. The engine rebuilds the pool and retries the
  affected tasks one-by-one up to ``max_task_retries`` times each, so a
  transient crash costs one retry while a task that reliably kills its
  worker surfaces as a :class:`SolverError` naming the task.

With a :class:`RetryPolicy` the engine becomes supervised:

* failures are *classified* (see :func:`repro.util.faults.
  is_transient_exception`): transient infrastructure errors
  (``OSError``/``TimeoutError``/injected transients) are retried with
  exponential backoff up to ``max_attempts`` total attempts;
* deterministic task errors are **quarantined** instead of crashing
  the campaign (when ``quarantine=True``): the engine completes every
  other task — all of them recorded/streamed as usual — and then
  raises a structured :class:`QuarantineError` listing the failures;
* a ``task_timeout`` bounds each pool chunk's wall time; an expired
  chunk has its workers killed and is retried like a crash.

Retries are bitwise-safe because tasks are pure: re-running a task
with the same payload (same embedded seed) reproduces its result
exactly, so neither retry count nor scheduling order can move a bit of
campaign output.

Deterministic faults can be *injected* for testing through a
:class:`repro.util.faults.FaultPlan` — passed explicitly or ambient
via the ``REPRO_FAULT_PLAN`` environment variable (which inherited
environments carry into pool workers).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.util.errors import SolverError
from repro.util.faults import FaultPlan, is_transient_exception

#: chunks per worker the default chunking aims for; >1 smooths load
#: imbalance between cheap and expensive tasks.
_CHUNKS_PER_JOB = 4


def default_chunk_size(n_tasks: int, jobs: int) -> int:
    """Chunk size balancing IPC overhead against load imbalance."""
    if n_tasks <= 0 or jobs <= 1:
        return max(1, n_tasks)
    return max(1, -(-n_tasks // (jobs * _CHUNKS_PER_JOB)))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and error classification.

    Parameters
    ----------
    max_attempts:
        Total tries per task (first run + retries); transient failures
        beyond this fail the campaign.
    backoff / backoff_factor / max_backoff:
        Sleep before retry ``k`` (1-based) is
        ``min(backoff * backoff_factor**(k-1), max_backoff)`` seconds.
        ``backoff=0`` disables sleeping (deterministic tests).
    task_timeout:
        Wall-clock seconds allowed per task on the pool path (a chunk
        of ``n`` tasks gets ``n * task_timeout``). Expiry kills the
        chunk's workers and counts as one failed attempt for its
        tasks. ``None`` disables; the ``jobs=1`` inline path cannot
        preempt and ignores it.
    quarantine:
        When ``True``, deterministic task errors do not abort the
        campaign: the engine finishes every other task and raises one
        :class:`QuarantineError` carrying the structured failures. When
        ``False``, the first deterministic error aborts (legacy shape).
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    task_timeout: "float | None" = None
    quarantine: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff < 0:
            raise ValueError(
                f"max_backoff must be >= 0, got {self.max_backoff}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )

    def delay(self, failures: int) -> float:
        """Backoff before the retry following the ``failures``-th failure."""
        if self.backoff <= 0:
            return 0.0
        return min(
            self.backoff * self.backoff_factor ** max(0, failures - 1),
            self.max_backoff,
        )

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff": self.backoff,
            "backoff_factor": self.backoff_factor,
            "max_backoff": self.max_backoff,
            "task_timeout": self.task_timeout,
            "quarantine": self.quarantine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        known = {
            "max_attempts", "backoff", "backoff_factor", "max_backoff",
            "task_timeout", "quarantine",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown RetryPolicy field(s): {', '.join(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class TaskFailure:
    """One quarantined task: everything needed to debug it offline."""

    task_id: str
    index: int
    error: str
    traceback: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "index": self.index,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


class QuarantineError(SolverError):
    """Deterministic task errors, reported after the campaign finished.

    Raised once at the end of a supervised run whose
    :class:`RetryPolicy` quarantines: every *other* task completed and
    was recorded/streamed, so a resume after fixing the bug re-runs
    only the quarantined tasks. ``failures`` holds the structured
    :class:`TaskFailure` records.
    """

    def __init__(self, failures: "Sequence[TaskFailure]"):
        self.failures = list(failures)
        ids = ", ".join(repr(f.task_id) for f in self.failures)
        first = self.failures[0] if self.failures else None
        detail = f"; first error: {first.error}" if first else ""
        super().__init__(
            f"{len(self.failures)} task(s) quarantined after deterministic "
            f"errors: {ids}{detail}"
        )

    def __reduce__(self):
        # default exception pickling would re-call __init__ with the
        # *message* — rebuild from the structured failures instead so
        # the error survives a process-pool hop
        return (QuarantineError, (self.failures,))

    def report(self) -> list[dict]:
        return [f.to_dict() for f in self.failures]


def _run_chunk(worker, entries, fault_plan):
    """Worker-side driver: run one chunk, trapping per-task exceptions.

    ``entries`` are ``(index, task_id, attempt, task)`` tuples. Returns
    ``(index, ("ok", result))`` or ``(index, ("err", repr, traceback,
    transient))`` tuples; exceptions are stringified because arbitrary
    exception objects (and their tracebacks) do not survive pickling,
    and classified worker-side (``transient``) while the live exception
    is still at hand.
    """
    out = []
    for index, task_id, attempt, task in entries:
        try:
            if fault_plan is not None:
                fault_plan.apply_task_faults(task_id, attempt)
            out.append((index, ("ok", worker(task))))
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            out.append((
                index,
                (
                    "err",
                    repr(exc),
                    traceback.format_exc(),
                    is_transient_exception(exc),
                ),
            ))
            break  # the engine decides this task's fate; the chunk's
            # remaining tasks are handed back unrun
    return out


class CampaignEngine:
    """Run a list of tasks through ``worker``, serially or on a pool.

    Parameters
    ----------
    worker:
        Module-level callable ``task -> result`` (must be picklable for
        ``jobs > 1``).
    jobs:
        Worker processes; ``1`` (the default) runs inline in this
        process with no pool, no pickling and no subprocess — the
        reference semantics.
    chunk_size:
        Tasks per pool submission; defaults to
        :func:`default_chunk_size`.
    max_task_retries:
        How often a task whose worker process *died* is retried before
        the campaign fails, when no ``retry_policy`` is given
        (task-raised exceptions are then never retried — they are
        deterministic).
    retry_policy:
        Optional :class:`RetryPolicy` switching the engine to
        supervised mode (transient retry + backoff, quarantine,
        task timeout). ``None`` keeps the historical fault model.
    fault_plan:
        Optional :class:`~repro.util.faults.FaultPlan` injecting
        deterministic faults; defaults to the ambient
        ``REPRO_FAULT_PLAN`` plan when unset.
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        jobs: int = 1,
        chunk_size: "int | None" = None,
        max_task_retries: int = 2,
        retry_policy: "RetryPolicy | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise ValueError(
                f"retry_policy must be a RetryPolicy, got {retry_policy!r}"
            )
        self.worker = worker
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self.max_task_retries = int(max_task_retries)
        self.retry_policy = retry_policy
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        #: transient retries performed during the last ``run`` (observable
        #: so tests and benchmarks can assert recovery stayed bounded)
        self.last_retries = 0

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[Any],
        task_ids: "Sequence[str] | None" = None,
        checkpoint=None,
        progress: "Callable[[int, int], None] | None" = None,
        consumer=None,
    ) -> "list | None":
        """Execute ``tasks``; return their results in task order.

        Parameters
        ----------
        tasks:
            The task payloads, one per call to ``worker``.
        task_ids:
            Stable string ids (required with ``checkpoint``); tasks
            whose id the checkpoint already holds are *not* re-run.
        checkpoint:
            Object with a ``completed`` mapping ``task_id -> result``
            and a ``record(task_id, result)`` method (see
            :class:`repro.parallel.checkpoint.CampaignCheckpoint`).
        progress:
            Optional ``(n_done, n_total)`` callback, called after every
            finished task.
        consumer:
            Streaming mode: an object with ``add(index, result)``
            (e.g. :class:`repro.parallel.stream.StreamFold`). Every
            result — replayed from the checkpoint or freshly computed —
            is handed to it in completion order instead of being
            collected, and ``run`` returns ``None``: the engine then
            holds O(in-flight) results, never O(tasks). Checkpoint
            replays are delivered first, in task order. If the consumer
            exposes ``buffered_tasks()`` (results it is holding out of
            order), the pool stops submitting new chunks while that
            count exceeds a few chunks' worth — so one pathologically
            slow task cannot make the reorder buffer grow O(tasks).
        """
        tasks = list(tasks)
        if task_ids is None:
            if checkpoint is not None:
                raise ValueError("checkpointing requires task_ids")
            task_ids = [str(i) for i in range(len(tasks))]
        else:
            task_ids = [str(t) for t in task_ids]
            if len(task_ids) != len(tasks):
                raise ValueError(
                    f"{len(tasks)} tasks but {len(task_ids)} task_ids"
                )
            if len(set(task_ids)) != len(task_ids):
                raise ValueError("task_ids must be unique")

        results: "list | None" = None if consumer is not None else (
            [None] * len(tasks)
        )
        done = 0
        pending: list[int] = []
        completed = checkpoint.completed if checkpoint is not None else {}
        for i, tid in enumerate(task_ids):
            if tid in completed:
                if consumer is not None:
                    consumer.add(i, completed[tid])
                else:
                    results[i] = completed[tid]
                done += 1
            else:
                pending.append(i)
        total = len(tasks)
        self.last_retries = 0
        if progress is not None and done:
            progress(done, total)

        def finish(index: int, result) -> None:
            nonlocal done
            if checkpoint is not None:
                checkpoint.record(task_ids[index], result)
            if consumer is not None:
                consumer.add(index, result)
            else:
                results[index] = result
            done += 1
            if progress is not None:
                progress(done, total)

        if self.jobs == 1 or len(pending) <= 1:
            self._run_serial(tasks, task_ids, pending, finish)
            return results

        self._run_pool(tasks, task_ids, pending, finish, consumer)
        return results

    # ------------------------------------------------------------------
    def _run_serial(self, tasks, task_ids, pending, finish) -> None:
        """The inline reference path, with optional supervised retry."""
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        policy = self.retry_policy
        quarantined: list[TaskFailure] = []
        for i in pending:
            failures = 0
            while True:
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply_task_faults(
                            task_ids[i], failures + 1
                        )
                    if tracer.enabled:
                        with tracer.span(
                            "task", task_id=str(task_ids[i]), index=i
                        ) as span:
                            result = self.worker(tasks[i])
                            if failures:
                                span.set(attempts=failures + 1)
                    else:
                        result = self.worker(tasks[i])
                except Exception as exc:
                    failures += 1
                    transient = is_transient_exception(exc)
                    if (
                        policy is not None
                        and transient
                        and failures < policy.max_attempts
                    ):
                        self.last_retries += 1
                        delay = policy.delay(failures)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    if (
                        policy is not None
                        and policy.quarantine
                        and not transient
                    ):
                        quarantined.append(TaskFailure(
                            task_id=task_ids[i],
                            index=i,
                            error=repr(exc),
                            traceback=traceback.format_exc(),
                            attempts=failures,
                        ))
                        break  # complete the rest of the campaign
                    attempts_note = (
                        f" after {failures} attempts" if failures > 1 else ""
                    )
                    raise SolverError(
                        f"campaign task {task_ids[i]!r} failed"
                        f"{attempts_note}: {exc!r}"
                    ) from exc
                else:
                    finish(i, result)
                    break
        if quarantined:
            raise QuarantineError(quarantined)

    # ------------------------------------------------------------------
    def _run_pool(self, tasks, task_ids, pending, finish, consumer=None) -> None:
        """Fan ``pending`` out over a process pool, rebuilding it when a
        worker dies and isolating repeat offenders."""
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        policy = self.retry_policy
        chunk_size = self.chunk_size or default_chunk_size(
            len(pending), self.jobs
        )
        queue = [
            pending[i : i + chunk_size]
            for i in range(0, len(pending), chunk_size)
        ]
        # failed attempts per task, over every failure mode: worker
        # crash, transient error, chunk timeout
        attempts = {i: 0 for i in pending}
        crash_limit = (
            policy.max_attempts - 1 if policy is not None
            else self.max_task_retries
        )
        quarantined: list[TaskFailure] = []
        quarantined_ix = set()
        # Backpressure for order-pinning consumers: while the consumer
        # buffers more than a few chunks' worth of out-of-order results
        # (one slow task holding the fold back), stop feeding the pool —
        # in-flight futures keep draining, and the blocking task is
        # always already submitted (chunks are submitted in index order;
        # after a pool crash, completed work simply re-runs first).
        buffered = getattr(consumer, "buffered_tasks", None)
        window = (self.jobs * 2 + 2) * chunk_size

        def throttled() -> bool:
            return buffered is not None and buffered() > window

        def fail_crashed(i: int, cause: str) -> None:
            attempts[i] += 1
            if attempts[i] > crash_limit:
                raise SolverError(
                    f"campaign task {task_ids[i]!r} {cause} "
                    f"{attempts[i]} times"
                ) from None

        pool = ProcessPoolExecutor(max_workers=self.jobs)
        task_timeout = policy.task_timeout if policy is not None else None
        timed_out: set[int] = set()
        try:
            futures = {}
            deadlines: dict = {}
            submitted: dict = {}
            while queue or futures:
                while (
                    queue
                    and len(futures) < self.jobs * 2
                    # never starve: with no futures in flight, progress
                    # requires submitting regardless of buffered lag
                    and (not futures or not throttled())
                ):
                    chunk = queue.pop(0)
                    entries = [
                        (i, task_ids[i], attempts[i] + 1, tasks[i])
                        for i in chunk
                    ]
                    future = pool.submit(
                        _run_chunk, self.worker, entries, self.fault_plan
                    )
                    futures[future] = chunk
                    submitted[future] = time.perf_counter()
                    if task_timeout is not None:
                        deadlines[future] = (
                            time.monotonic() + task_timeout * len(chunk)
                        )
                if task_timeout is not None:
                    now = time.monotonic()
                    next_deadline = min(deadlines[f] for f in futures)
                    ready, _ = wait(
                        futures,
                        timeout=max(0.0, next_deadline - now) + 0.01,
                        return_when=FIRST_COMPLETED,
                    )
                    if not ready:
                        # A chunk exceeded its wall-time budget. The pool
                        # API cannot preempt one worker, so kill them all:
                        # every in-flight future then fails BrokenProcessPool
                        # and the expired chunk (remembered in ``timed_out``)
                        # is the one whose attempts are charged.
                        expired = [
                            f for f in futures
                            if deadlines[f] <= time.monotonic()
                        ]
                        if expired:
                            timed_out = set().union(
                                *(set(futures[f]) for f in expired)
                            )
                            for proc in list(
                                getattr(pool, "_processes", {}).values()
                            ):
                                proc.kill()
                        continue
                else:
                    ready, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in ready:
                    chunk = futures.pop(future)
                    deadlines.pop(future, None)
                    chunk_start = submitted.pop(future, None)
                    if tracer.enabled and chunk_start is not None:
                        # Chunk bodies run in worker processes, out of the
                        # ambient tracer's reach; the recorded duration is
                        # the submit-to-completion wall time seen here.
                        with tracer.span(
                            "chunk", n_tasks=len(chunk), first_index=chunk[0]
                        ) as chunk_span:
                            pass
                        chunk_span.duration = time.perf_counter() - chunk_start
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        # Unknown which task killed the worker (unless a
                        # timeout was just enforced): drain the other
                        # in-flight chunks back into the queue (their
                        # results, if any, are recomputed — tasks are
                        # pure), rebuild the pool, and retry the suspects
                        # in single-task chunks to isolate the killer.
                        # Restart the wait loop: the remaining futures
                        # all belong to the dead pool.
                        in_flight = [chunk] + [
                            futures.pop(f) for f in list(futures)
                        ]
                        deadlines.clear()
                        submitted.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=self.jobs)
                        if timed_out:
                            culprits, cause = sorted(timed_out), (
                                f"exceeded its {task_timeout}s task timeout"
                            )
                        else:
                            culprits, cause = chunk, (
                                "killed its worker process"
                            )
                        culprit_set = set(culprits)
                        timed_out = set()
                        survivors = [
                            [i for i in ch if i not in culprit_set]
                            for ch in in_flight
                        ]
                        retry = []
                        for i in culprits:
                            fail_crashed(i, cause)
                            retry.append([i])
                        queue = retry + [s for s in survivors if s] + queue
                        break
                    for index, payload in outcomes:
                        if payload[0] == "ok":
                            finish(index, payload[1])
                            continue
                        # Tasks the chunk completed before the error were
                        # just recorded above; the erroring task's fate
                        # depends on classification + policy, and the
                        # chunk's abandoned remainder goes back on the
                        # queue.
                        _, exc_repr, tb, transient = payload
                        attempts[index] += 1
                        processed = {ix for ix, _ in outcomes}
                        abandoned = [
                            i for i in chunk if i not in processed
                        ]
                        if abandoned:
                            queue.append(abandoned)
                        if (
                            policy is not None
                            and transient
                            and attempts[index] < policy.max_attempts
                        ):
                            self.last_retries += 1
                            delay = policy.delay(attempts[index])
                            if delay > 0:
                                # brief, bounded stall of the dispatch
                                # loop; in-flight futures keep running
                                time.sleep(delay)
                            queue.insert(0, [index])
                        elif (
                            policy is not None
                            and policy.quarantine
                            and not transient
                        ):
                            if index not in quarantined_ix:
                                quarantined_ix.add(index)
                                quarantined.append(TaskFailure(
                                    task_id=task_ids[index],
                                    index=index,
                                    error=exc_repr,
                                    traceback=tb,
                                    attempts=attempts[index],
                                ))
                        else:
                            attempts_note = (
                                f" after {attempts[index]} attempts"
                                if attempts[index] > 1 else ""
                            )
                            raise SolverError(
                                f"campaign task {task_ids[index]!r} failed"
                                f"{attempts_note}: {exc_repr}\n"
                                f"--- worker traceback ---\n{tb}"
                            )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if quarantined:
            quarantined.sort(key=lambda f: f.index)
            raise QuarantineError(quarantined)
