"""Sweep campaigns: the experiment grid as engine tasks.

One :class:`SweepTask` is the smallest independently schedulable unit of
a Section-6 sweep: *one replicate platform of one grid point*, solved by
every requested method under every objective. Each task carries its own
:class:`numpy.random.SeedSequence`, derived statelessly from the sweep's
root seed (``root -> setting index -> replicate index``, see
:func:`repro.util.rng.child_seed_sequence`), so a task's random stream —
and therefore its rows — is a pure function of the task payload. That
is the whole determinism story: serial and parallel execution, any
chunking, and checkpoint resume all produce bitwise-identical values
because they run the same pure tasks and reassemble them in task order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.parallel.checkpoint import campaign_fingerprint
from repro.util.rng import child_seed_sequence, seed_sequence_of

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps `import
    # repro` from pulling the whole experiments package)
    from repro.experiments.config import Scenario, Setting


@dataclass(frozen=True)
class SweepTask:
    """One (grid point, replicate) unit of work, fully self-describing.

    ``setting_index`` ties the task back to its position in the sweep's
    setting list (and into its seed derivation); ``seed`` is the
    replicate's own seed sequence, carried explicitly so workers never
    need shared RNG state.
    """

    setting: Setting
    setting_index: int
    replicate: int
    seed: np.random.SeedSequence
    scenario: Scenario
    methods: tuple
    objectives: tuple

    @property
    def task_id(self) -> str:
        """Stable id used for checkpoint bookkeeping."""
        return f"{self.setting_index}/{self.replicate}"


def run_sweep_task(task: SweepTask) -> list:
    """Execute one task: returns its :class:`ExperimentRow` list.

    Module-level (picklable) so it can serve as a
    :class:`~repro.parallel.engine.CampaignEngine` worker.
    """
    from repro.experiments.runner import run_replicate

    return run_replicate(
        task.setting,
        task.replicate,
        scenario=task.scenario,
        methods=task.methods,
        objectives=task.objectives,
        rng=np.random.default_rng(task.seed),
    )


def build_sweep_tasks(
    settings: Sequence[Setting],
    scenario: Scenario,
    methods: Sequence[str],
    objectives: Sequence[str],
    n_platforms: int,
    rng,
) -> list[SweepTask]:
    """Expand a sweep definition into its ordered task list.

    Seed derivation mirrors the historical serial runner exactly: the
    root seed spawns one child per setting, which spawns one grandchild
    per replicate — so results are bit-for-bit those of the pre-engine
    ``run_sweep`` for any given seed.
    """
    root = seed_sequence_of(rng)
    tasks: list[SweepTask] = []
    for i, setting in enumerate(settings):
        setting_seed = child_seed_sequence(root, i)
        for rep in range(n_platforms):
            tasks.append(
                SweepTask(
                    setting=setting,
                    setting_index=i,
                    replicate=rep,
                    seed=child_seed_sequence(setting_seed, rep),
                    scenario=scenario,
                    methods=tuple(methods),
                    objectives=tuple(objectives),
                )
            )
    return tasks


def sweep_fingerprint(
    settings: Sequence[Setting],
    scenario: Scenario,
    methods: Sequence[str],
    objectives: Sequence[str],
    n_platforms: int,
    rng,
) -> str:
    """Campaign identity for checkpoint-resume safety.

    Any change to the grid, the scenario, the method/objective lists or
    the seed derivation yields a different fingerprint, making stale
    checkpoints fail loudly instead of contaminating results.
    """
    root = seed_sequence_of(rng)
    return campaign_fingerprint(
        {
            "settings": [s.as_dict() for s in settings],
            "scenario": {
                "speed": scenario.speed,
                "apply_speed_heterogeneity": scenario.apply_speed_heterogeneity,
                "payoff_low": scenario.payoff_low,
                "payoff_high": scenario.payoff_high,
                "platforms_per_setting": scenario.platforms_per_setting,
            },
            "methods": list(methods),
            "objectives": list(objectives),
            "n_platforms": n_platforms,
            "seed_entropy": str(root.entropy),
            "seed_spawn_key": list(root.spawn_key),
        }
    )
