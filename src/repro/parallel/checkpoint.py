"""Incremental campaign checkpoints (JSON lines, append-only).

A checkpoint file is a header line describing the campaign followed by
one line per completed task::

    {"kind": "campaign", "fingerprint": "<sha1>", "n_tasks": 12, ...}
    {"kind": "task", "id": "0/0", "result": <encoded>}
    {"kind": "task", "id": "0/1", "result": <encoded>}

Streaming aggregation additionally keeps the newest accumulator-state
snapshot in a small *sidecar* file (``<path>.state``, atomically
replaced on every :meth:`save_state`) — only the latest snapshot is
ever useful, so the sidecar stays O(accumulator) however long the
campaign runs, instead of growing the main file with superseded
records. Legacy in-file ``{"kind": "state", ...}`` records are still
understood on load (the sidecar wins when both exist).

Records are flushed as they are written, so a sweep killed mid-flight
loses at most the in-progress tasks; re-running with ``resume=True``
replays the stored results and only executes the remainder. The
``fingerprint`` — a hash of the campaign definition including its seed
derivation — guards against resuming a checkpoint into a *different*
campaign, which would silently splice unrelated results together.

A truncated or corrupt trailing record (the signature of a crash
mid-write) is skipped with a :class:`CheckpointWarning` — never a crash:
the affected tasks simply re-run. On the first write after a resume the
file is truncated back to its last fully-valid record, so the corrupt
tail never survives into the resumed file.

Streaming integration (see :mod:`repro.parallel.stream`): when the
checkpoint is constructed with the campaign's ``ordered_task_ids``,
results already covered by the loaded snapshot are replaced by the
:data:`PREFOLDED` sentinel at load time — the engine still skips those
tasks, but their row payload is never held in memory. A snapshot whose
folded prefix is not fully backed by loaded task records (tampered or
diverged files) is discarded with a warning and the resume falls back
to plain record replay.

The encoding of task results is pluggable (``encode``/``decode``);
:func:`repro.experiments.runner.run_sweep` stores lists of
:class:`~repro.experiments.runner.ExperimentRow` via
:mod:`repro.experiments.persistence`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import warnings
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.util.errors import ReproError

# Plain stdlib getLogger, not repro.obs.get_logger: this module sits
# below repro.obs in the import graph (obs.metrics builds on
# repro.parallel.stream, which imports this module). __name__ is already
# namespaced under the "repro" root logger, whose NullHandler
# repro.obs.logging installs.
logger = logging.getLogger(__name__)


def _warn(message: str, stacklevel: int) -> None:
    """Surface a recoverable checkpoint anomaly on both channels:
    the stdlib warning (tests and callers filter on
    :class:`CheckpointWarning`) and the module logger (operators
    aggregating library logs)."""
    logger.warning(message)
    warnings.warn(message, CheckpointWarning, stacklevel=stacklevel + 1)


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, or belongs to another campaign."""


class CheckpointWarning(UserWarning):
    """A recoverable checkpoint defect (e.g. a corrupt trailing record
    that will be dropped and recomputed)."""


class _PreFolded:
    """Sentinel for task results already folded into a streaming
    aggregate snapshot: the task is complete, its rows are not retained."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<pre-folded>"


#: singleton sentinel stored in :attr:`CampaignCheckpoint.completed` for
#: tasks whose rows live only inside a streamed aggregate snapshot
PREFOLDED = _PreFolded()


def campaign_fingerprint(payload: Any) -> str:
    """Stable hash of a JSON-serialisable campaign description."""
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode()).hexdigest()


class CampaignCheckpoint:
    """Append-only task-result store for one campaign.

    Parameters
    ----------
    path:
        Checkpoint file. Created (with its parent directory) on the
        first :meth:`record`; truncated unless ``resume=True``.
    fingerprint:
        Campaign identity (see :func:`campaign_fingerprint`). On resume
        a mismatch raises :class:`CheckpointError` instead of mixing
        results from different campaigns.
    resume:
        Load previously completed tasks instead of starting fresh.
    encode, decode:
        Task-result (de)serialisers; default to identity (results must
        then be plain JSON values).
    meta:
        Extra JSON-serialisable fields stored in the header line for
        humans / external tools.
    ordered_task_ids:
        The campaign's task ids in task-index order. Only needed for
        streaming resume: it lets a loaded ``state`` snapshot identify
        (and drop the payload of) the prefix of tasks it already covers.
    snapshot_validator:
        Optional predicate over a loaded snapshot payload. A snapshot it
        rejects (e.g. an accumulator state written by an older format
        version, see :func:`repro.parallel.stream.snapshot_compatible`)
        is discarded with a :class:`CheckpointWarning` *before* it can
        release any task payloads — the resume falls back to plain
        record replay instead of crashing on an unrestorable state.
    """

    def __init__(
        self,
        path: "str | Path",
        fingerprint: str = "",
        resume: bool = False,
        encode: "Callable[[Any], Any] | None" = None,
        decode: "Callable[[Any], Any] | None" = None,
        meta: "dict | None" = None,
        ordered_task_ids: "Sequence[str] | None" = None,
        snapshot_validator: "Callable[[dict], bool] | None" = None,
    ):
        self.path = Path(path)
        #: sidecar holding the newest streaming-aggregation snapshot
        self.state_path = self.path.with_name(self.path.name + ".state")
        self.fingerprint = fingerprint
        self.encode = encode if encode is not None else (lambda r: r)
        self.decode = decode if decode is not None else (lambda r: r)
        self.meta = dict(meta or {})
        self.completed: dict[str, Any] = {}
        #: newest accumulator snapshot seen (loaded or saved), if any
        self.saved_state: "dict | None" = None
        self.ordered_task_ids = (
            [str(t) for t in ordered_task_ids]
            if ordered_task_ids is not None
            else None
        )
        self.snapshot_validator = snapshot_validator
        self._fh = None
        #: byte offset of the end of the last fully-valid record loaded;
        #: None means "no prior file content to preserve"
        self._valid_end: "int | None" = None
        self._has_header = False
        if resume and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        raw = self.path.read_bytes()
        offset = 0
        header = None
        lineno = 0
        for line_bytes in raw.splitlines(keepends=True):
            lineno += 1
            line = line_bytes.decode("utf-8", errors="replace").strip()
            if not line:
                offset += len(line_bytes)
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Trailing partial line from an interrupted write: drop
                # it (and anything after) — those tasks simply re-run.
                _warn(
                    f"{self.path}:{lineno}: dropping truncated/corrupt "
                    "record (and any records after it); the affected "
                    "tasks will be recomputed",
                    stacklevel=3,
                )
                break
            kind = record.get("kind")
            if kind == "campaign":
                header = record
                if (
                    self.fingerprint
                    and record.get("fingerprint") != self.fingerprint
                ):
                    raise CheckpointError(
                        f"{self.path} belongs to a different campaign "
                        f"(fingerprint {record.get('fingerprint')!r} != "
                        f"{self.fingerprint!r}); refusing to resume"
                    )
                self._has_header = True
            elif kind == "task":
                if header is None:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: task record before the "
                        "campaign header"
                    )
                try:
                    self.completed[str(record["id"])] = self.decode(
                        record["result"]
                    )
                except Exception as exc:
                    # A structurally-valid line whose payload cannot be
                    # decoded (crash mid-write through a buffering layer,
                    # manual edit): recoverable exactly like truncation.
                    _warn(
                        f"{self.path}:{lineno}: dropping undecodable task "
                        f"record ({exc!r}) and any records after it; the "
                        "affected tasks will be recomputed",
                        stacklevel=3,
                    )
                    break
            elif kind == "state":
                if header is None:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: state record before the "
                        "campaign header"
                    )
                self.saved_state = record.get("state")
            else:
                raise CheckpointError(
                    f"{self.path}:{lineno}: unknown record kind {kind!r}"
                )
            offset += len(line_bytes)
        self._valid_end = offset
        self._load_state_sidecar()
        self._discard_incompatible_snapshot()
        self._drop_prefolded_payloads()

    def _load_state_sidecar(self) -> None:
        """Read the snapshot sidecar (newer than any in-file record)."""
        if not self.state_path.exists():
            return
        try:
            record = json.loads(self.state_path.read_text())
        except (OSError, json.JSONDecodeError):
            _warn(
                f"{self.state_path}: unreadable snapshot sidecar; the "
                "resume falls back to task-record replay",
                stacklevel=4,
            )
            return
        if self.fingerprint and record.get("fingerprint") not in (
            "", self.fingerprint
        ):
            raise CheckpointError(
                f"{self.state_path} belongs to a different campaign "
                f"(fingerprint {record.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); refusing to resume"
            )
        self.saved_state = record.get("state")

    def _discard_incompatible_snapshot(self) -> None:
        """Drop a snapshot the caller's validator rejects.

        Must run *before* :meth:`_drop_prefolded_payloads`: once prefix
        payloads are replaced by the sentinel the task records can no
        longer be replayed, so an unrestorable snapshot (older
        accumulator state format, foreign structure) has to be discarded
        while full record replay is still possible.
        """
        if self.saved_state is None or self.snapshot_validator is None:
            return
        try:
            compatible = bool(self.snapshot_validator(self.saved_state))
        except Exception:
            compatible = False
        if not compatible:
            _warn(
                f"{self.state_path}: snapshot is incompatible with this "
                "version (stale state format?); discarding it and "
                "replaying task records instead",
                stacklevel=4,
            )
            self.saved_state = None

    def _drop_prefolded_payloads(self) -> None:
        """Replace snapshot-covered prefix results with the sentinel.

        A snapshot claiming more folded tasks than the loaded records
        back (tampered/diverged files) is discarded with a warning —
        plain record replay is always a safe fallback.
        """
        if self.saved_state is None or self.ordered_task_ids is None:
            return
        n_folded = int(self.saved_state.get("n_folded", 0))
        prefix = self.ordered_task_ids[:n_folded]
        if any(task_id not in self.completed for task_id in prefix):
            _warn(
                f"{self.path}: snapshot covers {n_folded} tasks but the "
                "checkpoint records do not; discarding the snapshot and "
                "replaying task records instead",
                stacklevel=4,
            )
            self.saved_state = None
            return
        for task_id in prefix:
            self.completed[task_id] = PREFOLDED

    # ------------------------------------------------------------------
    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._valid_end is not None and self.path.exists():
                # Resuming: drop whatever trailed the last valid record
                # (truncated line, corrupt tail) and append after it. A
                # crash can flush a record's JSON body without its
                # newline (record() issues two buffered writes); such a
                # line is valid data but must be re-terminated, or the
                # next append would join two records on one line and a
                # later resume would drop both as corrupt.
                needs_newline = False
                with self.path.open("r+b") as fh:
                    fh.truncate(self._valid_end)
                    if self._valid_end > 0:
                        fh.seek(self._valid_end - 1)
                        needs_newline = fh.read(1) != b"\n"
                self._fh = self.path.open("a")
                if needs_newline:
                    self._fh.write("\n")
                if not self._has_header:
                    self._write_header()
            else:
                self._fh = self.path.open("w")
                self._write_header()
                # a fresh campaign must not inherit a stale snapshot
                self.state_path.unlink(missing_ok=True)
        return self._fh

    def _write_header(self) -> None:
        header = {
            "kind": "campaign",
            "fingerprint": self.fingerprint,
            **self.meta,
        }
        self._fh.write(json.dumps(header, sort_keys=True, default=str))
        self._fh.write("\n")
        self._has_header = True

    def _write_task(self, task_id: str, result: Any) -> None:
        record = {
            "kind": "task",
            "id": str(task_id),
            "result": self.encode(result),
        }
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")

    # ------------------------------------------------------------------
    def record(self, task_id: str, result: Any) -> None:
        """Store one finished task and flush it to disk immediately."""
        fh = self._open()
        self._write_task(task_id, result)
        fh.flush()
        self.completed[str(task_id)] = result

    def save_state(self, payload: dict) -> None:
        """Atomically replace the snapshot sidecar with ``payload``.

        Only the newest snapshot matters (later ones strictly extend the
        folded prefix), so the sidecar stays O(accumulator state) for
        any campaign length — never appended, always replaced. The main
        checkpoint must be durable first (task records a snapshot covers
        are always flushed before the fold reaches them), so a crash
        between record and snapshot merely replays a few extra tasks.
        """
        self._open()  # ensure the directory/header exist first
        tmp = self.state_path.with_name(self.state_path.name + ".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "kind": "state",
                    "fingerprint": self.fingerprint,
                    "state": payload,
                },
                sort_keys=True,
            )
        )
        os.replace(tmp, self.state_path)
        self.saved_state = payload

    def mark_folded(self, task_id: str) -> None:
        """Release a task's in-memory payload once a streaming fold has
        consumed it (the durable record on disk is untouched)."""
        task_id = str(task_id)
        if task_id in self.completed:
            self.completed[task_id] = PREFOLDED

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
