"""Incremental campaign checkpoints (JSON lines, append-only).

A checkpoint file is a header line describing the campaign followed by
one line per completed task::

    {"kind": "campaign", "fingerprint": "<sha1>", "n_tasks": 12, ...}
    {"kind": "task", "id": "0/0", "result": <encoded>}
    {"kind": "task", "id": "0/1", "result": <encoded>}

Records are flushed as they are written, so a sweep killed mid-flight
loses at most the in-progress tasks; re-running with ``resume=True``
replays the stored results and only executes the remainder. The
``fingerprint`` — a hash of the campaign definition including its seed
derivation — guards against resuming a checkpoint into a *different*
campaign, which would silently splice unrelated results together.

The encoding of task results is pluggable (``encode``/``decode``);
:func:`repro.experiments.runner.run_sweep` stores lists of
:class:`~repro.experiments.runner.ExperimentRow` via
:mod:`repro.experiments.persistence`.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable

from repro.util.errors import ReproError


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, or belongs to another campaign."""


def campaign_fingerprint(payload: Any) -> str:
    """Stable hash of a JSON-serialisable campaign description."""
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode()).hexdigest()


class CampaignCheckpoint:
    """Append-only task-result store for one campaign.

    Parameters
    ----------
    path:
        Checkpoint file. Created (with its parent directory) on the
        first :meth:`record`; truncated unless ``resume=True``.
    fingerprint:
        Campaign identity (see :func:`campaign_fingerprint`). On resume
        a mismatch raises :class:`CheckpointError` instead of mixing
        results from different campaigns.
    resume:
        Load previously completed tasks instead of starting fresh.
    encode, decode:
        Task-result (de)serialisers; default to identity (results must
        then be plain JSON values).
    meta:
        Extra JSON-serialisable fields stored in the header line for
        humans / external tools.
    """

    def __init__(
        self,
        path: "str | Path",
        fingerprint: str = "",
        resume: bool = False,
        encode: "Callable[[Any], Any] | None" = None,
        decode: "Callable[[Any], Any] | None" = None,
        meta: "dict | None" = None,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.encode = encode if encode is not None else (lambda r: r)
        self.decode = decode if decode is not None else (lambda r: r)
        self.meta = dict(meta or {})
        self.completed: dict[str, Any] = {}
        self._fh = None
        if resume and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        header = None
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Trailing partial line from an interrupted write: drop
                # it (and anything after) — those tasks simply re-run.
                break
            kind = record.get("kind")
            if kind == "campaign":
                header = record
                if (
                    self.fingerprint
                    and record.get("fingerprint") != self.fingerprint
                ):
                    raise CheckpointError(
                        f"{self.path} belongs to a different campaign "
                        f"(fingerprint {record.get('fingerprint')!r} != "
                        f"{self.fingerprint!r}); refusing to resume"
                    )
            elif kind == "task":
                if header is None:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: task record before the "
                        "campaign header"
                    )
                self.completed[str(record["id"])] = self.decode(
                    record["result"]
                )
            else:
                raise CheckpointError(
                    f"{self.path}:{lineno}: unknown record kind {kind!r}"
                )

    # ------------------------------------------------------------------
    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.completed:
                # Resuming: rewrite header + surviving records (dropping
                # any truncated tail from the previous run) into a temp
                # file, fsync, and atomically replace the original — a
                # crash mid-rewrite must never lose results that were
                # already durably persisted.
                tmp = self.path.with_name(self.path.name + ".rewrite")
                self._fh = tmp.open("w")
                self._write_header()
                for task_id, result in self.completed.items():
                    self._write_task(task_id, result)
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
                os.replace(tmp, self.path)
                self._fh = self.path.open("a")
            else:
                self._fh = self.path.open("w")
                self._write_header()
        return self._fh

    def _write_header(self) -> None:
        header = {
            "kind": "campaign",
            "fingerprint": self.fingerprint,
            **self.meta,
        }
        self._fh.write(json.dumps(header, sort_keys=True, default=str))
        self._fh.write("\n")

    def _write_task(self, task_id: str, result: Any) -> None:
        record = {
            "kind": "task",
            "id": str(task_id),
            "result": self.encode(result),
        }
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")

    # ------------------------------------------------------------------
    def record(self, task_id: str, result: Any) -> None:
        """Store one finished task and flush it to disk immediately."""
        fh = self._open()
        self._write_task(task_id, result)
        fh.flush()
        self.completed[str(task_id)] = result

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
