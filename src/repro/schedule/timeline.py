"""Unrolled multi-period timeline of a periodic schedule.

The compact schedule says what happens in a *generic* period; executing
it for ``n`` periods needs the boundary cases of Section 3.2: "no
computation takes place during the first period, and no communication
during the last one". :func:`unrolled_timeline` produces, for every
period index, the concrete list of transfers started and compute tasks
executed; the flow-level simulator consumes this plan directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.periodic import PeriodicSchedule
from repro.util.errors import ScheduleError


@dataclass(frozen=True, slots=True)
class Transfer:
    """One chunk shipped during a period.

    The chunk of application ``app`` travels from cluster ``src`` to
    cluster ``dst`` using ``connections`` parallel connections, and will
    be computed at ``dst`` during the following period.
    """

    src: int
    dst: int
    app: int
    volume: float
    connections: int


@dataclass(frozen=True, slots=True)
class ComputeTask:
    """One integer load computed on ``cluster`` for application ``app``
    during a period (data was delivered in the previous one)."""

    cluster: int
    app: int
    load: float


@dataclass(frozen=True, slots=True)
class PeriodPlan:
    """Everything scheduled inside one concrete period."""

    index: int
    start: float
    end: float
    transfers: tuple[Transfer, ...]
    computations: tuple[ComputeTask, ...]

    @property
    def total_transferred(self) -> float:
        return sum(t.volume for t in self.transfers)

    @property
    def total_computed(self) -> float:
        return sum(c.load for c in self.computations)


def _period_transfers(schedule: PeriodicSchedule) -> tuple[Transfer, ...]:
    out = []
    K = schedule.n_clusters
    for k in range(K):
        for l in range(K):
            if k == l:
                continue
            volume = float(schedule.loads[k, l])
            if volume > 0:
                out.append(
                    Transfer(
                        src=k,
                        dst=l,
                        app=k,
                        volume=volume,
                        connections=max(1, int(schedule.beta[k, l])),
                    )
                )
    return tuple(out)


def _period_computations(schedule: PeriodicSchedule) -> tuple[ComputeTask, ...]:
    out = []
    K = schedule.n_clusters
    for l in range(K):
        for k in range(K):
            load = float(schedule.loads[k, l])
            if load > 0:
                out.append(ComputeTask(cluster=l, app=k, load=load))
    return tuple(out)


def unrolled_timeline(schedule: PeriodicSchedule, n_periods: int) -> list[PeriodPlan]:
    """Concrete plan for ``n_periods`` periods including boundary cases.

    Exactly as Section 3.2 prescribes: "no computation takes place
    during the first period, and no communication during the last one".
    A schedule that keeps its promises therefore computes exactly
    ``(n_periods - 1) * loads`` per application, which is what
    :meth:`repro.simulation.engine.SimulationResult.achieved_throughputs`
    divides by.
    """
    if n_periods < 2:
        raise ScheduleError(f"need at least 2 periods (warm-up + drain), got {n_periods}")
    transfers = _period_transfers(schedule)
    computations = _period_computations(schedule)

    plans: list[PeriodPlan] = []
    Tp = float(schedule.period)
    for p in range(n_periods):
        is_first = p == 0
        is_last = p == n_periods - 1
        plans.append(
            PeriodPlan(
                index=p,
                start=p * Tp,
                end=(p + 1) * Tp,
                transfers=() if is_last else transfers,
                computations=() if is_first else computations,
            )
        )
    return plans


def total_produced(plans: "list[PeriodPlan]", n_apps: int) -> "list[float]":
    """Total load computed per application across the whole timeline."""
    out = [0.0] * n_apps
    for plan in plans:
        for task in plan.computations:
            out[task.app] += task.load
    return out
