"""Periodic schedule reconstruction (Section 3.2 of the paper).

Given a valid allocation ``(alpha, beta)``, the paper rebuilds an actual
periodic schedule: write each ``alpha_{k,l}`` as a fraction ``u/v``, set
the period ``Tp = lcm(v)``, and within each period have every cluster
compute the integer loads received during the previous period while
sending the chunks for the next one. This package implements that
construction plus the unrolled multi-period timeline (with the special
first/last periods) consumed by the simulator.
"""

from repro.schedule.rationalize import (
    quantize_allocation,
    rationalize_allocation,
    QuantizedAllocation,
)
from repro.schedule.periodic import PeriodicSchedule, build_periodic_schedule
from repro.schedule.timeline import (
    ComputeTask,
    Transfer,
    PeriodPlan,
    unrolled_timeline,
)

__all__ = [
    "quantize_allocation",
    "rationalize_allocation",
    "QuantizedAllocation",
    "PeriodicSchedule",
    "build_periodic_schedule",
    "ComputeTask",
    "Transfer",
    "PeriodPlan",
    "unrolled_timeline",
]
