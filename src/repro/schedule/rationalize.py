"""Turning float allocations into rational ones with a bounded period.

The paper's construction sets ``Tp = lcm`` of the denominators of the
``alpha_{k,l}`` written in lowest terms. Taken literally on LP output
this explodes: floats snap to fractions with essentially arbitrary
denominators whose lcm is astronomically large. Two strategies:

* :func:`rationalize_allocation` — the literal construction, with a
  per-entry denominator bound; the period is exact but can be large.
* :func:`quantize_allocation` — round every ``alpha`` *down* onto a
  common grid ``1/D``; the period is exactly ``D`` (divided by the gcd)
  and feasibility is preserved because entries only shrink. The
  throughput loss is bounded by ``K / D`` per application. This is the
  default used by :func:`repro.schedule.periodic.build_periodic_schedule`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.allocation import Allocation
from repro.util.errors import ScheduleError
from repro.util.rational import as_fraction, common_period


@dataclass
class QuantizedAllocation:
    """A rational allocation with every entry an integer multiple of 1/period.

    Attributes
    ----------
    loads:
        Integer matrix; ``loads[k, l] = alpha[k, l] * period`` exactly.
    period:
        The schedule period ``Tp``.
    alloc:
        The rational allocation as a float :class:`Allocation` (entries
        are exactly representable: ``loads / period``).
    """

    loads: np.ndarray
    period: int
    alloc: Allocation

    @property
    def throughputs(self) -> np.ndarray:
        """Per-application throughput of the quantized allocation."""
        return self.loads.sum(axis=1) / self.period


def rationalize_allocation(
    alloc: Allocation, max_denominator: int = 100, max_period: int = 10**9
) -> QuantizedAllocation:
    """The paper's literal construction: ``Tp = lcm`` of denominators.

    Every ``alpha`` is snapped to the *nearest* fraction with denominator
    at most ``max_denominator``. Because "nearest" may round up, the
    result can overshoot capacity by up to ``1/max_denominator``; callers
    who need guaranteed feasibility should use
    :func:`quantize_allocation` instead.

    Raises
    ------
    ScheduleError
        If the resulting lcm exceeds ``max_period``.
    """
    K = alloc.n_clusters
    fractions: dict[tuple[int, int], Fraction] = {}
    for k in range(K):
        for l in range(K):
            f = as_fraction(float(alloc.alpha[k, l]), max_denominator)
            if f < 0:
                f = Fraction(0)
            if f:
                fractions[(k, l)] = f
    period = common_period(fractions)
    if period > max_period:
        raise ScheduleError(
            f"period lcm={period} exceeds max_period={max_period}; "
            "use quantize_allocation for a bounded period"
        )
    loads = np.zeros((K, K), dtype=np.int64)
    alpha = np.zeros((K, K), dtype=float)
    for (k, l), f in fractions.items():
        scaled = f * period
        loads[k, l] = int(scaled)
        alpha[k, l] = float(f)
    return QuantizedAllocation(
        loads=loads, period=period, alloc=Allocation(alpha, alloc.beta.copy())
    )


def quantize_allocation(
    alloc: Allocation, denominator: int = 10_000
) -> QuantizedAllocation:
    """Round every ``alpha`` down onto the grid ``1/denominator``.

    Feasibility is preserved (entries only decrease, betas unchanged) and
    the period divides ``denominator``. Entries within float tolerance of
    a grid point are snapped rather than floored so that e.g. an exact
    rate of 1.5 does not lose a full grid step to representation noise.
    """
    if denominator < 1:
        raise ScheduleError(f"denominator must be >= 1, got {denominator}")
    K = alloc.n_clusters
    scaled = np.asarray(alloc.alpha, dtype=float) * denominator
    snapped = np.where(
        np.abs(scaled - np.round(scaled)) <= 1e-7 * np.maximum(1.0, np.abs(scaled)),
        np.round(scaled),
        np.floor(scaled),
    ).astype(np.int64)
    snapped = np.maximum(snapped, 0)

    # Reduce the period by the gcd of all loads and the denominator.
    divisor = int(np.gcd.reduce(np.append(snapped.ravel(), denominator)))
    loads = snapped // divisor
    period = denominator // divisor

    alpha = loads.astype(float) / period
    return QuantizedAllocation(
        loads=loads, period=period, alloc=Allocation(alpha, alloc.beta.copy())
    )


def integer_load_check(q: QuantizedAllocation) -> None:
    """Sanity check: loads/period reproduce the stored rational alpha."""
    recon = q.loads.astype(float) / q.period
    if not np.allclose(recon, q.alloc.alpha, rtol=0.0, atol=1e-12):
        raise ScheduleError("quantized loads and rational alpha disagree")
    if math.gcd(int(np.gcd.reduce(np.append(q.loads.ravel(), q.period))), 1) < 1:
        raise ScheduleError("invalid gcd state")  # pragma: no cover
