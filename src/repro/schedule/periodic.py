"""The compact periodic schedule (Section 3.2).

In steady state, during each period of length ``Tp``:

* cluster ``C^k`` **computes** an integer load ``alpha_{l,k} * Tp`` for
  every application ``A_l`` with a non-zero allocation on it — local
  data if ``l = k``, data received during the *previous* period
  otherwise;
* cluster ``C^k`` **sends** a chunk of size ``alpha_{k,l} * Tp`` towards
  every ``C^l`` with ``alpha_{k,l} > 0``, to be processed there during
  the *next* period, and symmetrically receives its inputs.

Equation (1) guarantees the computations fit in the period, Equation (2)
that the serial link is not oversubscribed. The first period carries
only communications and the last only computations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.platform.topology import Platform
from repro.schedule.rationalize import QuantizedAllocation, quantize_allocation
from repro.util.errors import ScheduleError
from repro.util.tables import TextTable


@dataclass
class PeriodicSchedule:
    """A reconstructed periodic schedule.

    Attributes
    ----------
    platform:
        The platform the schedule runs on.
    period:
        Period length ``Tp`` (time units).
    loads:
        Integer matrix: ``loads[k, l]`` load units of application ``A_k``
        are shipped from ``C^k`` and computed on ``C^l`` per period
        (``loads[k, k]`` is computed locally).
    beta:
        Connections used for each remote transfer (from the allocation).
    """

    platform: Platform
    period: int
    loads: np.ndarray
    beta: np.ndarray

    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        return self.loads.shape[0]

    @property
    def throughputs(self) -> np.ndarray:
        """Per-application steady-state throughput ``alpha_k``."""
        return self.loads.sum(axis=1) / self.period

    def compute_time(self, k: int) -> float:
        """Time cluster ``C^k`` spends computing within one period."""
        speed = self.platform.clusters[k].speed
        total = float(self.loads[:, k].sum())
        if total == 0.0:
            return 0.0
        if speed == 0.0:
            raise ScheduleError(
                f"cluster {k} has zero speed but non-zero load {total}"
            )
        return total / speed

    def link_time(self, k: int) -> float:
        """Serial-link busy time of ``C^k`` within one period (lower
        bound: total traffic divided by ``g_k``)."""
        g = self.platform.clusters[k].g
        outgoing = float(self.loads[k, :].sum() - self.loads[k, k])
        incoming = float(self.loads[:, k].sum() - self.loads[k, k])
        traffic = outgoing + incoming
        if traffic == 0.0:
            return 0.0
        if g == 0.0:
            raise ScheduleError(f"cluster {k} has zero g but traffic {traffic}")
        return traffic / g

    # ------------------------------------------------------------------
    def validate(self, tol: float = 1e-6) -> None:
        """Check Equations (1) and (2) at period scale.

        Raises :class:`ScheduleError` on violation.
        """
        for k in range(self.n_clusters):
            if self.compute_time(k) > self.period * (1 + tol) + tol:
                raise ScheduleError(
                    f"cluster {k}: compute time {self.compute_time(k):g} exceeds "
                    f"period {self.period}"
                )
            if self.link_time(k) > self.period * (1 + tol) + tol:
                raise ScheduleError(
                    f"cluster {k}: link busy time {self.link_time(k):g} exceeds "
                    f"period {self.period}"
                )
        if np.any(self.loads < 0):
            raise ScheduleError("negative load in schedule")

    # ------------------------------------------------------------------
    def as_allocation(self) -> Allocation:
        """The rational allocation realised by this schedule."""
        return Allocation(self.loads.astype(float) / self.period, self.beta.copy())

    def describe(self) -> str:
        """Readable per-cluster utilization table."""
        table = TextTable(
            ["cluster", "compute load", "compute util", "link traffic", "link util"]
        )
        for k in range(self.n_clusters):
            compute = float(self.loads[:, k].sum())
            out = float(self.loads[k, :].sum() - self.loads[k, k])
            inc = float(self.loads[:, k].sum() - self.loads[k, k])
            table.add_row(
                [
                    f"C{k}",
                    compute,
                    self.compute_time(k) / self.period if self.period else 0.0,
                    out + inc,
                    self.link_time(k) / self.period if self.period else 0.0,
                ]
            )
        return (
            f"PeriodicSchedule(Tp={self.period}, "
            f"total={self.loads.sum()} load units/period)\n" + table.render()
        )

    def __repr__(self) -> str:
        return (
            f"PeriodicSchedule(K={self.n_clusters}, Tp={self.period}, "
            f"load/period={int(self.loads.sum())})"
        )


def build_periodic_schedule(
    platform: Platform,
    alloc: Allocation,
    denominator: int = 10_000,
    quantized: "QuantizedAllocation | None" = None,
) -> PeriodicSchedule:
    """Reconstruct the periodic schedule for a valid allocation.

    Parameters
    ----------
    platform, alloc:
        The platform and a valid allocation on it.
    denominator:
        Grid used by :func:`~repro.schedule.rationalize.quantize_allocation`
        (the period divides it).
    quantized:
        Pre-quantized allocation, to skip re-quantization.
    """
    q = quantized if quantized is not None else quantize_allocation(alloc, denominator)
    schedule = PeriodicSchedule(
        platform=platform,
        period=q.period,
        loads=q.loads,
        beta=q.alloc.beta.copy(),
    )
    schedule.validate()
    return schedule
