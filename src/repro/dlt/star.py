"""Divisible-load scheduling on a heterogeneous star network.

The classical single-application setting behind the paper's cluster
model: a master ``P_0`` (speed ``s_0``) holds ``W`` load units and is
connected to ``p`` workers, worker ``i`` having compute speed ``s_i``
and link bandwidth ``bw_i`` from the master. Communication is one-port
(the master serialises its sends); computation overlaps communication;
workers receive their whole chunk before computing (no store-and-forward
within a chunk).

Implemented results:

* :func:`single_round_makespan` — the closed-form optimal one-round
  distribution [Bharadwaj et al. 1996]: with a fixed participation
  order, optimality is reached when all participants finish together,
  giving a triangular linear system solved here in closed form
  (``alpha_{i} = alpha_{i-1} * s_{i-1}^{-1} / (s_i^{-1} + bw_i^{-1})``).
* :func:`multi_round_makespan` — R equal rounds pipelined through the
  one-port master (simulation, not closed form): communication of round
  ``r+1`` overlaps computation of round ``r``.
* :func:`steady_state_throughput_one_port` — Banino et al.'s
  *bandwidth-centric* steady-state optimum: maximise ``sum x_i`` s.t.
  ``x_i <= s_i`` and ``sum x_i / bw_i <= 1`` — workers are greedily
  saturated in order of *decreasing bandwidth*, regardless of their
  compute speed.
* :func:`steady_state_throughput_multi_port` — the fluid multi-port
  bound ``s_0 + sum min(s_i, bw_i)`` (what
  :func:`repro.platform.cluster.equivalent_star_speed` uses).

The asymptotic theorem the paper's relaxation rests on — makespan-
optimal throughput tends to the steady-state optimum as ``W`` grows —
is checked numerically in the tests and benchmark E13.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import PlatformError


@dataclass(frozen=True)
class StarNetwork:
    """A master with ``p`` workers.

    Parameters
    ----------
    master_speed:
        Compute speed ``s_0`` of the master itself.
    worker_speeds, worker_bandwidths:
        Per-worker compute speeds ``s_i`` and link bandwidths ``bw_i``.
    """

    master_speed: float
    worker_speeds: tuple
    worker_bandwidths: tuple

    def __post_init__(self):
        if len(self.worker_speeds) != len(self.worker_bandwidths):
            raise PlatformError("worker speed/bandwidth lists differ in length")
        if self.master_speed < 0:
            raise PlatformError("negative master speed")
        if any(s <= 0 for s in self.worker_speeds):
            raise PlatformError("worker speeds must be positive")
        if any(b <= 0 for b in self.worker_bandwidths):
            raise PlatformError("worker bandwidths must be positive")

    @property
    def n_workers(self) -> int:
        return len(self.worker_speeds)


def single_round_makespan(
    star: StarNetwork, load: float, order: "list[int] | None" = None
) -> tuple[float, np.ndarray]:
    """Optimal one-round distribution for a fixed participation order.

    Returns ``(makespan, chunks)`` where ``chunks[0]`` is the master's
    share and ``chunks[1:]`` the workers' shares in *input* order.

    With sends serialised in ``order`` and simultaneous completion
    (the classical optimality condition), the chunk ratios follow the
    closed-form recurrence; the makespan then scales linearly with the
    load. Workers whose closed-form share would be non-positive cannot
    occur here (all speeds/bandwidths positive).
    """
    if load < 0:
        raise PlatformError(f"negative load {load}")
    p = star.n_workers
    if order is None:
        # The classical heuristic order: decreasing bandwidth.
        order = sorted(
            range(p), key=lambda i: -star.worker_bandwidths[i]
        )
    if sorted(order) != list(range(p)):
        raise PlatformError(f"order {order} is not a permutation of 0..{p - 1}")
    if load == 0:
        return 0.0, np.zeros(p + 1)

    s = [star.worker_speeds[i] for i in order]
    bw = [star.worker_bandwidths[i] for i in order]

    # Unit-T solution: take T = 1 and compute relative chunk sizes.
    #   first worker:  a_1 * (1/s_1 + 1/bw_1) = 1
    #   recurrence:    a_i * (1/s_i + 1/bw_i) = a_{i-1} / s_{i-1}
    #   master:        a_0 = s_0 * 1
    rel = np.zeros(p)
    if p:
        rel[0] = 1.0 / (1.0 / s[0] + 1.0 / bw[0])
        for i in range(1, p):
            rel[i] = rel[i - 1] * (1.0 / s[i - 1]) / (1.0 / s[i] + 1.0 / bw[i])
    master_rel = star.master_speed  # a_0 for T = 1

    total_rel = master_rel + float(rel.sum())
    if total_rel <= 0:
        raise PlatformError("star has no compute capacity at all")
    makespan = load / total_rel

    chunks = np.zeros(p + 1)
    chunks[0] = master_rel * makespan
    for pos, i in enumerate(order):
        chunks[1 + i] = rel[pos] * makespan
    return float(makespan), chunks


def _steady_state_chunks(star: StarNetwork, round_load: float) -> np.ndarray:
    """Per-round chunks proportional to the bandwidth-centric rates."""
    budget = 1.0
    x = np.zeros(star.n_workers)
    for i in sorted(range(star.n_workers), key=lambda i: -star.worker_bandwidths[i]):
        if budget <= 0:
            break
        x[i] = min(star.worker_speeds[i], budget * star.worker_bandwidths[i])
        budget -= x[i] / star.worker_bandwidths[i]
    rates = np.concatenate(([star.master_speed], x))
    total = rates.sum()
    if total <= 0:
        raise PlatformError("star has no compute capacity at all")
    return rates / total * round_load


def multi_round_makespan(
    star: StarNetwork,
    load: float,
    rounds: int,
    order: "list[int] | None" = None,
    proportions: str = "single-round",
) -> float:
    """Makespan of R equal pipelined rounds (one-port master).

    Each round distributes ``load / rounds``; round ``r+1``'s sends
    start as soon as the one-port master finished round ``r``'s sends,
    and each worker computes its chunks back to back.

    Parameters
    ----------
    proportions:
        ``"single-round"`` reuses the one-round closed-form chunk ratios
        (the textbook uniform multi-round scheme); ``"steady-state"``
        splits each round proportionally to the bandwidth-centric
        steady-state rates, which is the mix whose pipelined throughput
        converges to :func:`steady_state_throughput_one_port` as the
        load and round count grow — the asymptotic-optimality theorem
        the paper's relaxation rests on.
    """
    if rounds < 1:
        raise PlatformError(f"need at least one round, got {rounds}")
    if load == 0:
        return 0.0
    p = star.n_workers
    if order is None:
        order = sorted(range(p), key=lambda i: -star.worker_bandwidths[i])
    if proportions == "single-round":
        _, chunks = single_round_makespan(star, load / rounds, order)
    elif proportions == "steady-state":
        chunks = _steady_state_chunks(star, load / rounds)
    else:
        raise PlatformError(
            f"unknown proportions {proportions!r}; "
            "use 'single-round' or 'steady-state'"
        )

    bw = star.worker_bandwidths
    s = star.worker_speeds

    port_free = 0.0  # when the master's port is next available
    worker_free = np.zeros(p)  # when each worker finishes computing
    master_done = (
        (chunks[0] * rounds) / star.master_speed if star.master_speed > 0 else 0.0
    )
    for _ in range(rounds):
        t = port_free
        for i in order:
            if chunks[1 + i] <= 0:
                continue
            arrive = t + chunks[1 + i] / bw[i]
            start = max(arrive, worker_free[i])
            worker_free[i] = start + chunks[1 + i] / s[i]
            t = arrive
        port_free = t
    finish = max(float(worker_free.max(initial=0.0)), master_done)
    return finish


def steady_state_throughput_one_port(star: StarNetwork) -> float:
    """Bandwidth-centric steady-state optimum [Banino et al. 2004].

    Maximise ``s_0 + sum x_i`` subject to ``0 <= x_i <= s_i`` and the
    one-port constraint ``sum x_i / bw_i <= 1``: saturate workers in
    decreasing-bandwidth order until the port is fully busy.
    """
    budget = 1.0  # fraction of the master's port-time available
    total = star.master_speed
    for i in sorted(range(star.n_workers), key=lambda i: -star.worker_bandwidths[i]):
        if budget <= 0:
            break
        s_i = star.worker_speeds[i]
        bw_i = star.worker_bandwidths[i]
        # Feeding x_i load/time costs x_i / bw_i port-time per time unit.
        x = min(s_i, budget * bw_i)
        total += x
        budget -= x / bw_i
    return float(total)


def steady_state_throughput_multi_port(star: StarNetwork) -> float:
    """Fluid multi-port bound: ``s_0 + sum min(s_i, bw_i)``.

    This is what :func:`repro.platform.cluster.equivalent_star_speed`
    computes; it dominates the one-port value (relaxing the port
    constraint can only help).
    """
    return float(
        star.master_speed
        + sum(min(s, b) for s, b in zip(star.worker_speeds, star.worker_bandwidths))
    )
