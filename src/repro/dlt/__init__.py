"""Classical divisible-load theory substrate.

Section 2 of the paper collapses each cluster to "a single processor
whose speed ``s_k`` can be determined by classical formulas from
divisible load theory" (citing Robertazzi's processor equivalence,
Bataineh's closed forms and Banino et al.'s steady-state star results).
This package makes those classical formulas executable:

* :mod:`repro.dlt.star` — one-round and multi-round makespan scheduling
  on a heterogeneous star, the one-port *bandwidth-centric* steady-state
  throughput, and the multi-port fluid bound;
* the asymptotic link between the two worlds — makespan-optimal
  throughput converges to the steady-state bound as the load grows —
  which is the justification for the paper's steady-state relaxation.
"""

from repro.dlt.star import (
    StarNetwork,
    single_round_makespan,
    multi_round_makespan,
    steady_state_throughput_one_port,
    steady_state_throughput_multi_port,
)

__all__ = [
    "StarNetwork",
    "single_round_makespan",
    "multi_round_makespan",
    "steady_state_throughput_one_port",
    "steady_state_throughput_multi_port",
]
