"""Bandwidth sharing: progressive-filling max-min fairness with caps.

The paper's model (Section 2) distinguishes two sharing behaviours:

* **backbone links** grant each connection a fixed bandwidth ``bw(li)``
  — a flow using ``beta`` connections therefore has a hard *rate cap*
  of ``beta * min_{li} bw(li)``, independent of other traffic;
* **local links** are shared: concurrent flows each get a portion of
  ``g_k`` and the portions sum to at most ``g_k``.

Given the set of simultaneously active flows, the realised rates are the
classic max-min fair allocation with per-flow caps, computed by
progressive filling: raise every unfrozen flow's rate at the same speed;
freeze flows that hit their cap and all flows crossing a local link that
saturates; repeat until every flow is frozen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.errors import SimulationError


@dataclass(frozen=True, slots=True)
class FlowSpec:
    """A flow for rate computation.

    Attributes
    ----------
    src, dst:
        Cluster indices whose local links the flow crosses. ``src ==
        dst`` is forbidden (local data never crosses the serial link).
    cap:
        Hard rate cap from the backbone (``beta * route bandwidth``);
        ``inf`` for same-router routes with no backbone segment.
    """

    src: int
    dst: int
    cap: float

    def __post_init__(self):
        if self.src == self.dst:
            raise SimulationError("a flow cannot have src == dst")
        if self.cap < 0:
            raise SimulationError(f"negative rate cap {self.cap}")


def max_min_fair_rates(
    flows: Sequence[FlowSpec],
    local_capacities: "Sequence[float] | np.ndarray",
    max_rounds: "int | None" = None,
) -> np.ndarray:
    """Max-min fair rates for ``flows`` over shared local links.

    Parameters
    ----------
    flows:
        Active flows; each consumes its rate on *both* its endpoint
        links (outgoing at ``src``, incoming at ``dst``), matching
        Equation (2)'s accounting.
    local_capacities:
        ``g_k`` per cluster.
    max_rounds:
        Safety bound on filling rounds (default: ``2 * len(flows) + 2``;
        every round freezes at least one flow).

    Returns
    -------
    numpy.ndarray
        One rate per flow, in input order.
    """
    n = len(flows)
    g = np.asarray(local_capacities, dtype=float)
    if n == 0:
        return np.zeros(0)
    if max_rounds is None:
        max_rounds = 2 * n + 2

    rates = np.zeros(n)
    frozen = np.zeros(n, dtype=bool)
    caps = np.array([f.cap for f in flows], dtype=float)
    remaining = g.astype(float).copy()

    # incidence[k] = indices of flows crossing local link k
    incidence: dict[int, list[int]] = {}
    for i, f in enumerate(flows):
        incidence.setdefault(f.src, []).append(i)
        incidence.setdefault(f.dst, []).append(i)

    for _ in range(max_rounds):
        active = ~frozen
        if not np.any(active):
            return rates
        # Per-link headroom divided by its number of unfrozen flows.
        link_limit = np.inf
        for k, flow_ids in incidence.items():
            count = int(np.count_nonzero(active[flow_ids]))
            if count:
                link_limit = min(link_limit, max(0.0, remaining[k]) / count)
        cap_slack = caps[active] - rates[active]
        increment = min(link_limit, float(np.min(cap_slack)))
        if not np.isfinite(increment):
            raise SimulationError(
                "unbounded fair-share increment: a flow with infinite cap "
                "crosses no finite local link"
            )
        increment = max(0.0, increment)

        rates[active] += increment
        for k, flow_ids in incidence.items():
            count = int(np.count_nonzero(active[flow_ids]))
            remaining[k] -= increment * count

        # Freeze flows at their cap, then all flows on saturated links.
        frozen |= rates >= caps - 1e-12
        for k, flow_ids in incidence.items():
            if remaining[k] <= 1e-12:
                for i in flow_ids:
                    frozen[i] = True
        if increment == 0.0 and np.any(~frozen):
            # Zero headroom everywhere: remaining flows are starved.
            frozen[:] = True
    if np.any(~frozen):  # pragma: no cover - defensive
        raise SimulationError("progressive filling failed to converge")
    return rates


def verify_rates(
    flows: Sequence[FlowSpec],
    rates: np.ndarray,
    local_capacities: "Sequence[float] | np.ndarray",
    tol: float = 1e-9,
) -> None:
    """Assert a rate vector respects caps and link capacities.

    Used by tests and as an internal consistency check.
    """
    g = np.asarray(local_capacities, dtype=float)
    usage = np.zeros_like(g)
    for f, r in zip(flows, rates):
        if r < -tol:
            raise SimulationError(f"negative rate {r}")
        if r > f.cap + tol:
            raise SimulationError(f"rate {r} exceeds cap {f.cap}")
        usage[f.src] += r
        usage[f.dst] += r
    over = usage > g + tol * np.maximum(1.0, g)
    if np.any(over):
        k = int(np.argmax(over))
        raise SimulationError(
            f"local link {k} oversubscribed: {usage[k]:g} > {g[k]:g}"
        )
