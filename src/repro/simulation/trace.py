"""Event tracing and utilization accounting for simulation runs.

An optional :class:`TraceRecorder` can be attached to
:class:`~repro.simulation.engine.FlowSimulator` to capture the full event
history of a run: every flow start/finish, every rate re-share, and the
integrated busy time of every local link and cluster. Utilization
numbers close the loop on the schedule's analytic predictions
(:meth:`~repro.schedule.periodic.PeriodicSchedule.compute_time` /
``link_time``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is one of ``"flow_start"``, ``"flow_end"``, ``"reshare"``,
    ``"period_start"``; ``data`` carries kind-specific fields.
    """

    time: float
    kind: str
    data: dict


@dataclass
class TraceRecorder:
    """Accumulates events and integrates resource usage over time.

    Attach to a simulator via ``FlowSimulator(platform, trace=recorder)``.
    """

    events: list = field(default_factory=list)
    #: integral of per-cluster link throughput (load units transferred)
    link_bytes: dict = field(default_factory=dict)
    #: integral of per-cluster compute (load units processed)
    compute_units: dict = field(default_factory=dict)
    _horizon: float = 0.0

    # ------------------------------------------------------------------
    def record(self, time: float, kind: str, **data) -> None:
        self.events.append(TraceEvent(time=time, kind=kind, data=data))
        self._horizon = max(self._horizon, time)

    def add_transfer(self, src: int, dst: int, amount: float) -> None:
        """Credit ``amount`` transferred load units to both endpoints."""
        self.link_bytes[src] = self.link_bytes.get(src, 0.0) + amount
        self.link_bytes[dst] = self.link_bytes.get(dst, 0.0) + amount

    def add_compute(self, cluster: int, amount: float) -> None:
        self.compute_units[cluster] = self.compute_units.get(cluster, 0.0) + amount

    # ------------------------------------------------------------------
    def link_utilization(self, cluster: int, g: float, horizon: "float | None" = None) -> float:
        """Mean fraction of ``g`` used over the run horizon."""
        horizon = self._horizon if horizon is None else horizon
        if horizon <= 0 or g <= 0:
            return 0.0
        return self.link_bytes.get(cluster, 0.0) / (g * horizon)

    def compute_utilization(
        self, cluster: int, speed: float, horizon: "float | None" = None
    ) -> float:
        """Mean fraction of ``speed`` used over the run horizon."""
        horizon = self._horizon if horizon is None else horizon
        if horizon <= 0 or speed <= 0:
            return 0.0
        return self.compute_units.get(cluster, 0.0) / (speed * horizon)

    def events_of_kind(self, kind: str) -> list:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)
