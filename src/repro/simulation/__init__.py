"""Flow-level discrete-event simulation of periodic schedules.

The paper argues analytically (Section 3.2) that any valid allocation
can be executed as a periodic schedule. This package *checks* that
claim: it executes the reconstructed schedule under the paper's
bandwidth-sharing semantics — backbone connections each capped at the
route's per-connection bandwidth, local serial links shared max-min
fairly among the flows crossing them — and measures the throughput every
application actually achieves.
"""

from repro.simulation.fairness import FlowSpec, max_min_fair_rates
from repro.simulation.engine import FlowSimulator, SimulationResult
from repro.simulation.metrics import jain_index, throughput_ratios
from repro.simulation.trace import TraceEvent, TraceRecorder

__all__ = [
    "FlowSpec",
    "max_min_fair_rates",
    "FlowSimulator",
    "SimulationResult",
    "jain_index",
    "throughput_ratios",
    "TraceEvent",
    "TraceRecorder",
]
