"""The discrete-event engine executing a periodic schedule.

Hybrid fluid/event simulation, the standard approach for flow-level
network models: between events every flow transfers at its current
max-min fair rate and every cluster computes at its speed; events are
period boundaries and flow completions, each of which triggers a rate
re-share. Deliveries completed during period ``p`` enter the destination
cluster's compute queue at the start of period ``p + 1``, exactly as the
reconstruction of Section 3.2 prescribes.

The engine reports the throughput each application actually achieved so
tests and benchmark E9 can compare it against the allocation's nominal
throughput — the steady-state claim of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.topology import Platform
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.timeline import unrolled_timeline
from repro.simulation.entities import ActiveFlow, ComputeQueue
from repro.simulation.fairness import FlowSpec, max_min_fair_rates
from repro.util.errors import SimulationError

#: events closer than this are coalesced to dodge float-noise loops
_TIME_EPS = 1e-9


@dataclass
class SimulationResult:
    """Measured outcome of executing a schedule.

    Attributes
    ----------
    completed:
        Per-application load computed over the whole run.
    elapsed:
        Total simulated time (may exceed ``n_periods * Tp`` if flows or
        compute ran late and the run drained them).
    n_periods:
        Number of scheduled periods.
    period:
        The schedule period ``Tp``.
    late_flows:
        Number of transfers that were still in flight at the end of the
        period that launched them.
    events:
        Number of simulation events processed.
    """

    completed: np.ndarray
    elapsed: float
    n_periods: int
    period: float
    late_flows: int = 0
    events: int = 0
    meta: dict = field(default_factory=dict)

    def achieved_throughputs(self) -> np.ndarray:
        """Per-application throughput measured over the steady phase.

        The warm-up and drain periods are excluded: with ``P`` scheduled
        periods, a schedule that keeps its promises computes exactly
        ``(P - 1) * loads`` for every application, so the steady-state
        throughput estimate divides by ``(P - 1) * Tp``.
        """
        steady_time = (self.n_periods - 1) * self.period
        if steady_time <= 0:
            return np.zeros_like(self.completed)
        return self.completed / steady_time

    def __repr__(self) -> str:
        return (
            f"SimulationResult(elapsed={self.elapsed:.4g}, "
            f"total={self.completed.sum():.6g}, late_flows={self.late_flows})"
        )


class FlowSimulator:
    """Execute a :class:`~repro.schedule.periodic.PeriodicSchedule`.

    Parameters
    ----------
    platform:
        The platform the schedule was built for.
    rate_policy:
        ``"maxmin"`` (default) re-shares bandwidth max-min fairly among
        the currently active flows — the paper's sharing semantics taken
        at face value. ``"reserved"`` gives every flow exactly its
        steady-state rate ``volume / Tp``; this is the discipline
        implicitly assumed by the Section-3.2 feasibility argument and
        provably meets every period deadline. Comparing the two
        quantifies a subtlety the paper leaves implicit: fair sharing
        can make individual transfers miss their period deadline (they
        are counted in ``late_flows``) even though steady-state
        throughput still converges to the nominal value.
    max_events:
        Safety budget on simulation events.
    """

    def __init__(
        self,
        platform: Platform,
        rate_policy: str = "maxmin",
        max_events: int = 1_000_000,
        trace: "object | None" = None,
    ):
        if rate_policy not in ("maxmin", "reserved"):
            raise SimulationError(
                f"unknown rate_policy {rate_policy!r}; use 'maxmin' or 'reserved'"
            )
        self.platform = platform
        self.rate_policy = rate_policy
        self.max_events = max_events
        self.trace = trace  # optional repro.simulation.trace.TraceRecorder

    # ------------------------------------------------------------------
    def run(self, schedule: PeriodicSchedule, n_periods: int = 10) -> SimulationResult:
        """Simulate ``n_periods`` periods plus whatever drain time is needed.

        Raises
        ------
        SimulationError
            On a stalled configuration (pending work that can never
            progress) or event-budget exhaustion.
        """
        platform = self.platform
        K = platform.n_clusters
        plans = unrolled_timeline(schedule, n_periods)
        Tp = float(schedule.period)

        queues = [ComputeQueue(speed=c.speed) for c in platform.clusters]
        completed: dict[int, float] = {}
        flows: list[ActiveFlow] = []
        delivered_buffer: list[tuple[int, int, float]] = []  # (dst, app, volume)
        late_flows = 0
        events = 0

        now = 0.0
        next_plan = 0

        while True:
            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"simulation exceeded {self.max_events} events"
                )

            # -- inject the next period when we reach its start time ----
            if next_plan < len(plans) and abs(now - plans[next_plan].start) <= _TIME_EPS:
                plan = plans[next_plan]
                next_plan += 1
                late_flows += sum(1 for f in flows if f.remaining > _TIME_EPS)
                if self.trace is not None:
                    self.trace.record(now, "period_start", index=plan.index)
                # Deliveries from previous periods become computable now.
                for dst, app, volume in delivered_buffer:
                    queues[dst].push(app, volume)
                delivered_buffer.clear()
                # The plan's *local* computations are injected directly;
                # remote ones are realised through actual deliveries.
                for task in plan.computations:
                    if task.cluster == task.app:
                        queues[task.cluster].push(task.app, task.load)
                for t in plan.transfers:
                    route = platform.route(t.src, t.dst)
                    cap = (
                        float("inf")
                        if not route.links
                        else t.connections * route.bandwidth
                    )
                    flows.append(
                        ActiveFlow(
                            src=t.src,
                            dst=t.dst,
                            app=t.app,
                            remaining=t.volume,
                            cap=cap,
                            period=plan.index,
                        )
                    )
                    if self.trace is not None:
                        self.trace.record(
                            now, "flow_start", src=t.src, dst=t.dst,
                            volume=t.volume, period=plan.index,
                        )

            # -- recompute rates under the configured policy ------------
            if self.rate_policy == "maxmin":
                specs = [FlowSpec(f.src, f.dst, f.cap) for f in flows]
                rates = max_min_fair_rates(specs, platform.local_capacities)
                for f, r in zip(flows, rates):
                    f.rate = float(r)
            else:  # reserved: exactly the steady-state rate, always
                for f in flows:
                    f.rate = float(schedule.loads[f.src, f.dst]) / Tp

            # -- choose the next event time -----------------------------
            candidates: list[float] = []
            if next_plan < len(plans):
                candidates.append(plans[next_plan].start)
            for f in flows:
                eta = f.eta
                if np.isfinite(eta):
                    candidates.append(now + eta)
            if not candidates:
                # No more periods and no progressing flows: drain compute.
                if flows:
                    raise SimulationError(
                        "stalled: flows pending with zero rate and no "
                        "upcoming period"
                    )
                # Late deliveries that never saw another period boundary
                # become computable now.
                for dst, app, volume in delivered_buffer:
                    queues[dst].push(app, volume)
                delivered_buffer.clear()
                drain = max(q.time_to_drain() for q in queues) if queues else 0.0
                if not np.isfinite(drain):
                    raise SimulationError(
                        "stalled: backlog on a zero-speed cluster"
                    )
                dt = drain
                for idx, q in enumerate(queues):
                    processed = q.advance(dt, completed)
                    if self.trace is not None and processed > 0:
                        self.trace.add_compute(idx, processed)
                now += dt
                break

            t_next = min(candidates)
            if t_next < now - _TIME_EPS:
                raise SimulationError(f"time went backwards: {t_next} < {now}")
            dt = max(0.0, t_next - now)

            # -- advance the fluid state to t_next ----------------------
            if dt > 0:
                for idx, q in enumerate(queues):
                    processed = q.advance(dt, completed)
                    if self.trace is not None and processed > 0:
                        self.trace.add_compute(idx, processed)
                still: list[ActiveFlow] = []
                for f in flows:
                    f.remaining -= f.rate * dt
                    if self.trace is not None:
                        self.trace.add_transfer(f.src, f.dst, f.rate * dt)
                    if f.remaining <= _TIME_EPS * max(1.0, f.cap if np.isfinite(f.cap) else 1.0):
                        delivered_buffer.append((f.dst, f.app, _volume_of(f, schedule)))
                        if self.trace is not None:
                            self.trace.record(
                                t_next, "flow_end", src=f.src, dst=f.dst, app=f.app
                            )
                    else:
                        still.append(f)
                flows = still
            now = t_next

        out = np.zeros(K)
        for app, load in completed.items():
            out[app] = load
        return SimulationResult(
            completed=out,
            elapsed=now,
            n_periods=n_periods,
            period=Tp,
            late_flows=late_flows,
            events=events,
        )


def _volume_of(flow: ActiveFlow, schedule: PeriodicSchedule) -> float:
    """Original volume of a finished flow (its full chunk is delivered)."""
    return float(schedule.loads[flow.src, flow.dst])
