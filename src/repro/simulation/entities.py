"""Mutable runtime entities of the flow-level simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ActiveFlow:
    """A transfer in flight.

    Attributes
    ----------
    src, dst, app:
        Cluster indices and originating application.
    remaining:
        Volume still to deliver (load units).
    cap:
        Backbone rate cap (``connections * route bandwidth``).
    rate:
        Current max-min fair rate (updated on every re-share).
    period:
        Index of the period that launched the flow (lateness metric).
    """

    src: int
    dst: int
    app: int
    remaining: float
    cap: float
    period: int
    rate: float = 0.0

    @property
    def eta(self) -> float:
        """Time to completion at the current rate (inf when stalled)."""
        if self.remaining <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return self.remaining / self.rate


@dataclass
class ComputeQueue:
    """Fluid compute state of one cluster.

    Work is processed at the cluster's speed in FIFO order; per-app
    completed totals are what the throughput metrics read.
    """

    speed: float
    tasks: list = field(default_factory=list)  # [(app, remaining), ...]

    @property
    def backlog(self) -> float:
        return sum(load for _, load in self.tasks)

    def push(self, app: int, load: float) -> None:
        if load > 0:
            self.tasks.append((app, float(load)))

    def advance(self, dt: float, completed: "dict[int, float]") -> float:
        """Process up to ``speed * dt`` units, crediting ``completed``.

        Returns the amount actually processed (for utilization tracing).
        """
        budget = self.speed * dt
        processed = 0.0
        while budget > 0 and self.tasks:
            app, load = self.tasks[0]
            step = min(load, budget)
            completed[app] = completed.get(app, 0.0) + step
            processed += step
            budget -= step
            if step >= load:
                self.tasks.pop(0)
            else:
                self.tasks[0] = (app, load - step)
        return processed

    def time_to_drain(self) -> float:
        """Time needed to finish the current backlog (inf when stuck)."""
        if not self.tasks:
            return 0.0
        if self.speed <= 0:
            return float("inf")
        return self.backlog / self.speed
