"""Metrics over simulation outcomes: throughput ratios and fairness."""

from __future__ import annotations

import numpy as np

from repro.simulation.engine import SimulationResult


def jain_index(values: "np.ndarray | list[float]") -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    Equals 1 for perfectly equal shares and ``1/n`` when one participant
    takes everything. The empty vector yields 1 (vacuous fairness).
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return 1.0
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom


def throughput_ratios(
    result: SimulationResult, nominal: "np.ndarray | list[float]"
) -> np.ndarray:
    """Achieved / nominal per-application throughput.

    Applications with zero nominal throughput get ratio 1.0 when they
    also achieved zero (vacuously on target) and 0.0 otherwise is
    impossible (nothing can be computed without an allocation), so the
    convention is harmless.
    """
    nominal = np.asarray(nominal, dtype=float)
    achieved = result.achieved_throughputs()
    out = np.ones_like(nominal)
    mask = nominal > 0
    out[mask] = achieved[mask] / nominal[mask]
    return out


def summarize(result: SimulationResult, nominal: "np.ndarray | list[float]") -> dict:
    """One-dict summary used by benchmarks and examples."""
    ratios = throughput_ratios(result, nominal)
    return {
        "elapsed": result.elapsed,
        "total_completed": float(result.completed.sum()),
        "min_ratio": float(np.min(ratios)),
        "mean_ratio": float(np.mean(ratios)),
        "late_flows": result.late_flows,
        "jain_achieved": jain_index(result.achieved_throughputs()),
        "events": result.events,
    }
