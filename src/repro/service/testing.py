"""In-process ASGI test client (no sockets, no server).

Drives the app's ``__call__`` directly, one :func:`asyncio.run` per
request — the same exchange shape the stdlib bridge produces, minus
the TCP. Buffered requests return a :class:`TestResponse`; streaming
endpoints are consumed through :meth:`AsgiTestClient.stream`, which
runs the exchange on a background thread and hands chunks over a
queue, so a test can interleave stream reads with further requests
(the held-job recipe: open stream, read the ``status`` event, POST
``start``, then drain).

This is also the load harness of ``benchmarks/bench_service.py`` — a
thousand concurrent in-process requests exercise every lock the
service has without socket fd limits distorting the measurement.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
from typing import Any, Iterator

from repro.service.sse import parse_sse


class TestResponse:
    def __init__(self, status: int, headers: "dict[str, str]", body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body)


class _StreamHandle:
    """One open streaming response being produced on a worker thread."""

    _DONE = object()

    def __init__(self):
        self._chunks: "queue.Queue" = queue.Queue()
        self.status: "int | None" = None
        self.headers: "dict[str, str]" = {}
        self._started = threading.Event()
        self._disconnect = threading.Event()

    def iter_chunks(self, timeout: float = 60.0) -> "Iterator[bytes]":
        while True:
            chunk = self._chunks.get(timeout=timeout)
            if chunk is self._DONE:
                return
            yield chunk

    def iter_events(self, timeout: float = 60.0) -> "Iterator[tuple[str, dict]]":
        """SSE frames as ``(event, data)`` pairs."""
        return parse_sse(self.iter_chunks(timeout=timeout))

    def iter_ndjson(self, timeout: float = 60.0) -> "Iterator[dict]":
        buffer = b""
        for chunk in self.iter_chunks(timeout=timeout):
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line)

    def close(self) -> None:
        """Simulate the client disconnecting."""
        self._disconnect.set()


class AsgiTestClient:
    """Synchronous driver for one ASGI app."""

    def __init__(self, app):
        self.app = app

    # ------------------------------------------------------------------
    def _scope(self, method: str, path: str) -> dict:
        if "?" in path:
            path, _, query = path.partition("?")
        else:
            query = ""
        return {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": path,
            "query_string": query.encode("latin-1"),
            "headers": [(b"host", b"testclient")],
            "client": ("testclient", 0),
            "server": ("testclient", 80),
        }

    def request(
        self, method: str, path: str, json_body: Any = None
    ) -> TestResponse:
        body = b"" if json_body is None else json.dumps(json_body).encode()
        scope = self._scope(method, path)
        received = {"status": None, "headers": {}, "chunks": []}

        async def run():
            messages = [
                {"type": "http.request", "body": body, "more_body": False}
            ]

            async def receive():
                if messages:
                    return messages.pop(0)
                return {"type": "http.disconnect"}

            async def send(message):
                if message["type"] == "http.response.start":
                    received["status"] = message["status"]
                    received["headers"] = {
                        key.decode("latin-1"): value.decode("latin-1")
                        for key, value in message.get("headers", ())
                    }
                elif message["type"] == "http.response.body":
                    received["chunks"].append(message.get("body", b""))

            await self.app(scope, receive, send)

        asyncio.run(run())
        return TestResponse(
            received["status"], received["headers"], b"".join(received["chunks"])
        )

    def get(self, path: str) -> TestResponse:
        return self.request("GET", path)

    def post(self, path: str, json_body: Any = None) -> TestResponse:
        return self.request("POST", path, json_body)

    # ------------------------------------------------------------------
    def stream(self, path: str, timeout: float = 60.0) -> _StreamHandle:
        """Open a streaming GET; chunks arrive as the app emits them.

        Returns once the response status line is in (so a 404 is
        observable immediately via ``handle.status``).
        """
        handle = _StreamHandle()
        scope = self._scope("GET", path)

        async def run():
            async def receive():
                return {"type": "http.disconnect"}

            async def send(message):
                if handle._disconnect.is_set():
                    raise ConnectionResetError("test client closed stream")
                if message["type"] == "http.response.start":
                    handle.status = message["status"]
                    handle.headers = {
                        key.decode("latin-1"): value.decode("latin-1")
                        for key, value in message.get("headers", ())
                    }
                    handle._started.set()
                elif message["type"] == "http.response.body":
                    chunk = message.get("body", b"")
                    if chunk:
                        handle._chunks.put(chunk)

            await self.app(scope, receive, send)

        def worker():
            try:
                asyncio.run(run())
            except ConnectionResetError:
                pass
            finally:
                handle._started.set()  # error-before-start still unblocks
                handle._chunks.put(handle._DONE)

        threading.Thread(target=worker, daemon=True).start()
        if not handle._started.wait(timeout):
            raise TimeoutError(f"no response status within {timeout}s: {path}")
        return handle
