"""Batching of compatible concurrent solve requests.

Under a request storm the service sees many independent ``POST /solve``
bodies that all target the same platform fingerprint and config — i.e.
the same pooled solver. Solving them one call at a time would still be
warm, but batching them through one
:meth:`~repro.api.Solver.solve_many` call amortises the per-call
facade overhead and keeps one code path hot.

The enabling contract lives in the facade (and is pinned by tests):
``solve_many(problems, seeds=[s0, s1, ...])`` solves instance ``i``
**bitwise-exactly** as ``solve(problems[i], rng=si)`` would. Batching
is therefore invisible in the responses — any interleaving of requests
produces byte-identical reports to unbatched execution, which is the
Hypothesis property in ``tests/test_service_coalescer.py``.

Mechanics: requests land in a per-key bucket; the first request of a
bucket starts a dispatcher thread that waits up to ``max_delay``
seconds (or until ``max_batch`` requests pile up), then atomically
claims the bucket and runs one ``solve_many``. Each caller holds a
:class:`concurrent.futures.Future` resolved with its own report.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Hashable, Sequence

from repro.api.solver import Solver


class _Bucket:
    __slots__ = ("entries", "wake")

    def __init__(self):
        self.entries: list = []  # (problem, seed, Future)
        self.wake = threading.Event()


class RequestCoalescer:
    """Batch same-key solve requests into single ``solve_many`` calls."""

    def __init__(self, max_delay: float = 0.005, max_batch: int = 64):
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_delay = float(max_delay)
        self.max_batch = int(max_batch)
        self._buckets: "dict[Hashable, _Bucket]" = {}
        self._lock = threading.Lock()
        self.batches = 0
        self.coalesced_requests = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        key: Hashable,
        solver: Solver,
        problem,
        seed: "int | None" = None,
    ) -> "Future":
        """Enqueue one solve; the future resolves to its SolveReport.

        ``key`` must imply the solver: all requests sharing a key are
        executed on the one ``solver`` of the bucket's first request —
        the pool's ``(fingerprint, config-hash)`` key has exactly that
        property.
        """
        future: "Future" = Future()
        with self._lock:
            bucket = self._buckets.get(key)
            fresh = bucket is None
            if fresh:
                bucket = self._buckets[key] = _Bucket()
            bucket.entries.append((problem, seed, future))
            if len(bucket.entries) >= self.max_batch:
                bucket.wake.set()
        if fresh:
            threading.Thread(
                target=self._dispatch,
                args=(key, bucket, solver),
                name=f"coalesce-{key}",
                daemon=True,
            ).start()
        return future

    # ------------------------------------------------------------------
    def _claim(self, key: Hashable, bucket: _Bucket) -> Sequence:
        """Atomically detach the bucket; later submits start a new one."""
        with self._lock:
            if self._buckets.get(key) is bucket:
                del self._buckets[key]
            return list(bucket.entries)

    def _dispatch(self, key: Hashable, bucket: _Bucket, solver: Solver) -> None:
        bucket.wake.wait(self.max_delay)
        entries = self._claim(key, bucket)
        problems = [problem for problem, _, _ in entries]
        seeds = [seed for _, seed, _ in entries]
        try:
            reports = solver.solve_many(problems, seeds=seeds)
        except BaseException as exc:  # one bad batch fails all its callers
            for _, _, future in entries:
                future.set_exception(exc)
            return
        with self._lock:
            self.batches += 1
            self.coalesced_requests += len(entries)
            self.largest_batch = max(self.largest_batch, len(entries))
        for (_, _, future), report in zip(entries, reports):
            future.set_result(report)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "batches": self.batches,
                "coalesced_requests": self.coalesced_requests,
                "largest_batch": self.largest_batch,
                "pending_buckets": len(self._buckets),
            }
