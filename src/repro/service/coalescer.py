"""Batching of compatible concurrent solve requests.

Under a request storm the service sees many independent ``POST /solve``
bodies that all target the same platform fingerprint and config — i.e.
the same pooled solver. Solving them one call at a time would still be
warm, but batching them through one
:meth:`~repro.api.Solver.solve_many` call amortises the per-call
facade overhead and keeps one code path hot.

The enabling contract lives in the facade (and is pinned by tests):
``solve_many(problems, seeds=[s0, s1, ...])`` solves instance ``i``
**bitwise-exactly** as ``solve(problems[i], rng=si)`` would. Batching
is therefore invisible in the responses — any interleaving of requests
produces byte-identical reports to unbatched execution, which is the
Hypothesis property in ``tests/test_service_coalescer.py``.

Mechanics: requests land in a per-key bucket; the first request of a
bucket starts a dispatcher thread that waits up to ``max_delay``
seconds (or until ``max_batch`` requests pile up), then atomically
claims the bucket and runs one ``solve_many``. Each caller holds a
:class:`concurrent.futures.Future` resolved with its own report.

Batch counters are :class:`repro.obs.metrics.Counter` instances (plus a
batch-size :class:`~repro.obs.metrics.Histogram`) registered in the
owning service's metrics registry, so they are cumulative, race-free
under concurrent dispatchers, and exported by ``GET /metrics``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Hashable, Sequence

from repro.api.solver import Solver
from repro.obs.metrics import MetricsRegistry


class _Bucket:
    __slots__ = ("entries", "wake")

    def __init__(self):
        self.entries: list = []  # (problem, seed, Future)
        self.wake = threading.Event()


class RequestCoalescer:
    """Batch same-key solve requests into single ``solve_many`` calls."""

    def __init__(
        self,
        max_delay: float = 0.005,
        max_batch: int = 64,
        metrics: "MetricsRegistry | None" = None,
    ):
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_delay = float(max_delay)
        self.max_batch = int(max_batch)
        self._buckets: "dict[Hashable, _Bucket]" = {}
        self._lock = threading.Lock()
        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self.batches = registry.counter(
            "repro_coalesce_batches_total",
            help="solve_many batches dispatched by the coalescer.",
        )
        self.coalesced_requests = registry.counter(
            "repro_coalesce_requests_total",
            help="Requests that travelled inside a coalesced batch.",
        )
        self.batch_size = registry.histogram(
            "repro_coalesce_batch_size",
            help="Requests per dispatched batch.",
            lo=0.0,
            hi=float(self.max_batch + 1),
            n_bins=min(64, self.max_batch + 1),
        )
        self._largest_batch = registry.gauge(
            "repro_coalesce_largest_batch",
            help="Largest batch dispatched so far.",
        )

    # ------------------------------------------------------------------
    def submit(
        self,
        key: Hashable,
        solver: Solver,
        problem,
        seed: "int | None" = None,
    ) -> "Future":
        """Enqueue one solve; the future resolves to its SolveReport.

        ``key`` must imply the solver: all requests sharing a key are
        executed on the one ``solver`` of the bucket's first request —
        the pool's ``(fingerprint, config-hash)`` key has exactly that
        property.
        """
        future: "Future" = Future()
        with self._lock:
            bucket = self._buckets.get(key)
            fresh = bucket is None
            if fresh:
                bucket = self._buckets[key] = _Bucket()
            bucket.entries.append((problem, seed, future))
            if len(bucket.entries) >= self.max_batch:
                bucket.wake.set()
        if fresh:
            threading.Thread(
                target=self._dispatch,
                args=(key, bucket, solver),
                name=f"coalesce-{key}",
                daemon=True,
            ).start()
        return future

    # ------------------------------------------------------------------
    def _claim(self, key: Hashable, bucket: _Bucket) -> Sequence:
        """Atomically detach the bucket; later submits start a new one."""
        with self._lock:
            if self._buckets.get(key) is bucket:
                del self._buckets[key]
            return list(bucket.entries)

    def _dispatch(self, key: Hashable, bucket: _Bucket, solver: Solver) -> None:
        bucket.wake.wait(self.max_delay)
        entries = self._claim(key, bucket)
        problems = [problem for problem, _, _ in entries]
        seeds = [seed for _, seed, _ in entries]
        try:
            reports = solver.solve_many(problems, seeds=seeds)
        except BaseException as exc:  # one bad batch fails all its callers
            for _, _, future in entries:
                future.set_exception(exc)
            return
        self.batches.inc()
        self.coalesced_requests.inc(len(entries))
        self.batch_size.observe(len(entries))
        self._largest_batch.set_max(len(entries))
        for (_, _, future), report in zip(entries, reports):
            future.set_result(report)

    # ------------------------------------------------------------------
    @property
    def largest_batch(self) -> int:
        return int(self._largest_batch.value)

    def stats(self) -> dict:
        with self._lock:
            pending = len(self._buckets)
        return {
            "batches": self.batches.value,
            "coalesced_requests": self.coalesced_requests.value,
            "largest_batch": self.largest_batch,
            "pending_buckets": pending,
        }
