"""Job lifecycle records and pluggable stores.

A job is one asynchronous unit of service work (a held/async solve, a
sweep). Its :class:`JobRecord` moves through::

    held -> queued -> running -> done | failed | cancelled

(``held`` only when the client asked for a two-phase start, the
guaranteed-complete streaming recipe). Stores are pluggable behind the
tiny :class:`JobStore` interface:

* :class:`MemoryJobStore` — a locked dict, the default;
* :class:`JsonlJobStore` — the same, journaled to disk: every
  transition appends one JSON line, load replays the journal (last
  record per job wins), and compaction rewrites the live records
  through a temp file + :func:`os.replace` — the same atomic-sidecar
  discipline as :class:`repro.parallel.CampaignCheckpoint`, so a crash
  mid-compaction never loses the journal.

Jobs found ``running``/``queued`` when a journal is loaded belong to a
dead process; they are marked ``interrupted`` so clients polling across
a restart see a terminal status instead of a forever-pending job.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.service.errors import JobNotFound, ServiceError

JOB_STATUSES = (
    "held", "queued", "running", "done", "failed", "cancelled", "interrupted",
)
TERMINAL_STATUSES = ("done", "failed", "cancelled", "interrupted")


@dataclass(frozen=True)
class JobRecord:
    """One job's full lifecycle state (immutable snapshot).

    ``request`` echoes the sanitized request body that created the job;
    ``result`` holds the JSON result payload once terminal;
    ``progress`` is ``{"done": n, "total": m}`` while a sweep runs.
    """

    job_id: str
    kind: str  # "solve" | "sweep"
    status: str = "queued"
    request: dict = field(default_factory=dict)
    result: "dict | None" = None
    error: "str | None" = None
    progress: dict = field(default_factory=dict)
    created_at: float = 0.0
    updated_at: float = 0.0

    def __post_init__(self):
        if self.status not in JOB_STATUSES:
            raise ServiceError(
                f"unknown job status {self.status!r} "
                f"(expected one of {JOB_STATUSES})"
            )

    @property
    def is_terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_dict(self) -> dict:
        return asdict(self)

    def status_dict(self) -> dict:
        """The ``/jobs/{id}/status`` payload: everything but the result."""
        out = self.to_dict()
        out.pop("result")
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(**data)


class JobStore:
    """Minimal store interface the service layer codes against."""

    def create(self, record: JobRecord) -> None:
        raise NotImplementedError

    def get(self, job_id: str) -> JobRecord:
        raise NotImplementedError

    def update(self, job_id: str, **changes) -> JobRecord:
        raise NotImplementedError

    def list_jobs(self) -> "list[JobRecord]":
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemoryJobStore(JobStore):
    """Locked in-memory store (the default; nothing survives restart)."""

    def __init__(self):
        self._records: "dict[str, JobRecord]" = {}
        self._lock = threading.RLock()

    def create(self, record: JobRecord) -> None:
        now = time.time()
        record = replace(record, created_at=now, updated_at=now)
        with self._lock:
            if record.job_id in self._records:
                raise ServiceError(
                    f"duplicate job id {record.job_id!r}", status=409
                )
            self._records[record.job_id] = record
        self._persist(record)

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._records[job_id]
            except KeyError:
                raise JobNotFound(job_id) from None

    def update(self, job_id: str, **changes) -> JobRecord:
        with self._lock:
            record = self.get(job_id)
            record = replace(record, updated_at=time.time(), **changes)
            self._records[job_id] = record
        self._persist(record)
        return record

    def list_jobs(self) -> "list[JobRecord]":
        with self._lock:
            return sorted(
                self._records.values(), key=lambda r: (r.created_at, r.job_id)
            )

    def _persist(self, record: JobRecord) -> None:
        """Hook for journaling subclasses; the memory store drops it."""


class JsonlJobStore(MemoryJobStore):
    """Journal-backed store: append-per-transition, replay-on-load.

    The journal is human-greppable JSONL (one full record per
    transition). :meth:`compact` rewrites it down to one line per live
    job atomically; :meth:`close` compacts as a courtesy.
    """

    def __init__(self, path: "str | Path"):
        super().__init__()
        self.path = Path(path)
        self._io_lock = threading.Lock()
        self._fh = None
        self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = JobRecord.from_dict(json.loads(line))
                self._records[record.job_id] = record
        # Non-terminal jobs belonged to a process that is gone.
        for job_id, record in list(self._records.items()):
            if not record.is_terminal:
                self._records[job_id] = replace(
                    record,
                    status="interrupted",
                    error="service restarted while the job was pending",
                    updated_at=time.time(),
                )

    def _persist(self, record: JobRecord) -> None:
        if self._fh is None:  # during _load-time interruption marking
            return
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._io_lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def compact(self) -> None:
        """Rewrite the journal to one line per live job, atomically."""
        with self._lock:
            records = self.list_jobs()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with self._io_lock:
            with tmp.open("w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record.to_dict(), sort_keys=True))
                    fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            if self._fh is not None:
                self._fh.close()
            os.replace(tmp, self.path)
            self._fh = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        self.compact()
        with self._io_lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def open_job_store(path: "str | Path | None") -> JobStore:
    """``None`` -> in-memory store, a path -> JSONL-journaled store."""
    if path is None:
        return MemoryJobStore()
    return JsonlJobStore(path)
