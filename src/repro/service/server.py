"""Stdlib HTTP bridge: serve the ASGI app with no server dependency.

Production deployments put the app under a real ASGI server (uvicorn,
hypercorn); this module is the zero-dependency fallback the ``python
-m repro.experiments serve`` CLI uses so the service runs anywhere the
library does. A
:class:`ThreadingHTTPServer` accepts connections; each request thread
drives one ASGI ``http`` exchange to completion with its own
:func:`asyncio.run` — blocking handler work rides the request thread,
and streaming bodies (SSE/NDJSON) flush chunk-by-chunk.

Connections are close-delimited (``Connection: close``): correct for
both buffered and streamed responses without implementing chunked
transfer-encoding, at the cost of one TCP connection per request —
fine for the fallback tier this bridge serves.
"""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit


class _AsgiRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.0"  # close-delimited bodies, see module doc

    # quiet by default; the server object can flip this on
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _handle(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        split = urlsplit(self.path)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.0",
            "method": self.command,
            "scheme": "http",
            "path": split.path,
            "raw_path": self.path.encode("latin-1"),
            "query_string": split.query.encode("latin-1"),
            "headers": [
                (key.lower().encode("latin-1"), value.encode("latin-1"))
                for key, value in self.headers.items()
            ],
            "client": self.client_address,
            "server": self.server.server_address,
        }
        try:
            asyncio.run(self._drive(scope, body))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    async def _drive(self, scope: dict, body: bytes) -> None:
        messages = [{"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        async def send(message):
            if message["type"] == "http.response.start":
                self.send_response_only(message["status"])
                for key, value in message.get("headers", ()):
                    self.send_header(
                        key.decode("latin-1"), value.decode("latin-1")
                    )
                self.send_header("Connection", "close")
                self.end_headers()
            elif message["type"] == "http.response.body":
                chunk = message.get("body", b"")
                if chunk:
                    self.wfile.write(chunk)
                    self.wfile.flush()  # streamed events must not buffer

        await self.server.app(scope, receive, send)

    # one implementation for every verb the router knows
    do_GET = do_POST = do_PUT = do_DELETE = do_PATCH = _handle


class AsgiHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one ASGI app."""

    daemon_threads = True

    def __init__(self, app, host: str = "127.0.0.1", port: int = 8175,
                 verbose: bool = False):
        super().__init__((host, port), _AsgiRequestHandler)
        self.app = app
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests, CI smoke); returns it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
        return thread


def run_server(app, host: str = "127.0.0.1", port: int = 8175,
               verbose: bool = True) -> None:
    """Serve ``app`` until interrupted (the CLI ``serve`` entry)."""
    server = AsgiHTTPServer(app, host=host, port=port, verbose=verbose)
    service = getattr(app, "service", None)
    try:
        print(f"repro service listening on {server.url}", flush=True)
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        server.server_close()
        if service is not None:
            service.close()
