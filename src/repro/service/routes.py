"""HTTP route table: thin glue from paths to the service core.

Every handler parses nothing but transport concerns (path params, the
``?format=`` switch); request-body interpretation lives in
:class:`~repro.service.app.SolverService`, which is what the tests and
benchmarks drive directly.

Routes
------
======  =========================  ==========================================
GET     /healthz                   liveness probe
GET     /stats                     pool / coalescer / job counters
GET     /methods                   registered solve methods
GET     /scenarios                 registered scenarios (platform + sweep)
POST    /solve                     solve one scenario (sync, or async job)
POST    /sweep                     submit a sweep job
GET     /jobs                      all job status records
GET     /jobs/{job_id}/status      one job's status record
GET     /jobs/{job_id}/result      terminal result (409 until done)
POST    /jobs/{job_id}/start       release a held job
POST    /jobs/{job_id}/restart     resubmit a terminal job as a new job
GET     /jobs/{job_id}/stream      SSE (default) or ``?format=ndjson``
======  =========================  ==========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.service.asgi import Request, Response, Router, StreamingResponse
from repro.service.errors import ServiceError
from repro.service.sse import format_ndjson, format_sse, sse_keepalive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import SolverService


def build_router(service: "SolverService") -> Router:
    router = Router()

    def healthz(request: Request) -> Response:
        return Response.json({"status": "ok"})

    def stats(request: Request) -> Response:
        return Response.json(service.stats())

    def methods(request: Request) -> Response:
        return Response.json({"methods": service.describe()["methods"]})

    def scenarios(request: Request) -> Response:
        return Response.json({"scenarios": service.describe()["scenarios"]})

    def solve(request: Request) -> Response:
        kind, payload = service.submit_solve(request.json())
        if kind == "job":
            return Response.json({"job": payload}, status=202)
        return Response.json({"report": payload})

    def sweep(request: Request) -> Response:
        return Response.json({"job": service.submit_sweep(request.json())},
                             status=202)

    def jobs(request: Request) -> Response:
        return Response.json({"jobs": service.list_jobs()})

    def job_status(request: Request, job_id: str) -> Response:
        return Response.json(service.job_status(job_id))

    def job_result(request: Request, job_id: str) -> Response:
        return Response.json(service.job_result(job_id))

    def job_start(request: Request, job_id: str) -> Response:
        return Response.json({"job": service.start_job(job_id)})

    def job_restart(request: Request, job_id: str) -> Response:
        return Response.json({"job": service.restart_job(job_id)}, status=202)

    def job_stream(request: Request, job_id: str) -> Response:
        wire = request.query.get("format", "sse")
        if wire not in ("sse", "ndjson"):
            raise ServiceError(f"unknown stream format {wire!r}")
        try:
            keepalive = float(request.query.get("keepalive", 15.0))
        except ValueError:
            raise ServiceError("keepalive must be a number") from None
        events = service.stream_events(job_id, keepalive=keepalive)
        # Force the 404 check before the response status goes out: the
        # generator body only runs on first next().
        first = next(events, None)

        def chunks():
            try:
                for name, data in _chain(first, events):
                    if name == "keepalive":
                        if wire == "sse":
                            yield sse_keepalive()
                        continue
                    if wire == "sse":
                        yield format_sse(name, data)
                    else:
                        yield format_ndjson(name, data)
            finally:
                events.close()

        content_type = (
            "text/event-stream" if wire == "sse" else "application/x-ndjson"
        )
        return StreamingResponse(chunks(), content_type=content_type)

    router.add("GET", "/healthz", healthz)
    router.add("GET", "/stats", stats)
    router.add("GET", "/methods", methods)
    router.add("GET", "/scenarios", scenarios)
    router.add("POST", "/solve", solve)
    router.add("POST", "/sweep", sweep)
    router.add("GET", "/jobs", jobs)
    router.add("GET", "/jobs/{job_id}/status", job_status)
    router.add("GET", "/jobs/{job_id}/result", job_result)
    router.add("POST", "/jobs/{job_id}/start", job_start)
    router.add("POST", "/jobs/{job_id}/restart", job_restart)
    router.add("GET", "/jobs/{job_id}/stream", job_stream)
    return router


def _chain(first, rest):
    if first is not None:
        yield first
    yield from rest
