"""HTTP route table: thin glue from paths to the service core.

Every handler parses nothing but transport concerns (path params, the
``?format=`` switch); request-body interpretation lives in
:class:`~repro.service.app.SolverService`, which is what the tests and
benchmarks drive directly.

Routes
------
======  =========================  ==========================================
GET     /healthz                   liveness probe
GET     /stats                     pool / coalescer / job counters
GET     /metrics                   Prometheus text exposition
GET     /methods                   registered solve methods
GET     /scenarios                 registered scenarios (platform + sweep)
POST    /solve                     solve one scenario (sync, or async job)
POST    /sweep                     submit a sweep job
GET     /jobs                      all job status records
GET     /jobs/{job_id}/status      one job's status record
GET     /jobs/{job_id}/result      terminal result (409 until done)
GET     /jobs/{job_id}/trace       retained span trees for one job
POST    /jobs/{job_id}/start       release a held job
POST    /jobs/{job_id}/restart     resubmit a terminal job as a new job
GET     /jobs/{job_id}/stream      SSE (default) or ``?format=ndjson``
======  =========================  ==========================================

Every handler is wrapped with a per-route latency histogram and request
counter (``repro_request_seconds`` / ``repro_requests_total``) recorded
into the service's shared metrics registry — so ``GET /metrics``
describes the request traffic that produced it.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.service.asgi import Request, Response, Router, StreamingResponse
from repro.service.errors import ServiceError
from repro.service.sse import format_ndjson, format_sse, sse_keepalive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import SolverService

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def build_router(service: "SolverService") -> Router:
    router = Router()

    def add(method: str, pattern: str, handler: Callable) -> None:
        """Register ``handler`` wrapped with per-route observation."""

        def observed(request: Request, **params) -> Response:
            start = time.perf_counter()
            try:
                return handler(request, **params)
            finally:
                service.metrics.counter(
                    "repro_requests_total",
                    help="HTTP requests handled, by route.",
                    labels={"route": pattern, "method": method},
                ).inc()
                service.metrics.histogram(
                    "repro_request_seconds",
                    help="HTTP handler latency, by route.",
                    labels={"route": pattern, "method": method},
                    lo=0.0,
                    hi=10.0,
                    n_bins=64,
                ).observe(time.perf_counter() - start)

        router.add(method, pattern, observed)

    def healthz(request: Request) -> Response:
        return Response.json({"status": "ok"})

    def stats(request: Request) -> Response:
        return Response.json(service.stats())

    def metrics(request: Request) -> Response:
        return Response(
            service.metrics_text().encode("utf-8"),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    def methods(request: Request) -> Response:
        return Response.json({"methods": service.describe()["methods"]})

    def scenarios(request: Request) -> Response:
        return Response.json({"scenarios": service.describe()["scenarios"]})

    def solve(request: Request) -> Response:
        kind, payload = service.submit_solve(request.json())
        if kind == "job":
            return Response.json({"job": payload}, status=202)
        return Response.json({"report": payload})

    def sweep(request: Request) -> Response:
        return Response.json({"job": service.submit_sweep(request.json())},
                             status=202)

    def jobs(request: Request) -> Response:
        return Response.json({"jobs": service.list_jobs()})

    def job_status(request: Request, job_id: str) -> Response:
        return Response.json(service.job_status(job_id))

    def job_result(request: Request, job_id: str) -> Response:
        return Response.json(service.job_result(job_id))

    def job_trace(request: Request, job_id: str) -> Response:
        return Response.json(service.job_trace(job_id))

    def job_start(request: Request, job_id: str) -> Response:
        return Response.json({"job": service.start_job(job_id)})

    def job_restart(request: Request, job_id: str) -> Response:
        return Response.json({"job": service.restart_job(job_id)}, status=202)

    def job_stream(request: Request, job_id: str) -> Response:
        wire = request.query.get("format", "sse")
        if wire not in ("sse", "ndjson"):
            raise ServiceError(f"unknown stream format {wire!r}")
        try:
            keepalive = float(request.query.get("keepalive", 15.0))
        except ValueError:
            raise ServiceError("keepalive must be a number") from None
        events = service.stream_events(job_id, keepalive=keepalive)
        # Force the 404 check before the response status goes out: the
        # generator body only runs on first next().
        first = next(events, None)

        def chunks():
            try:
                for name, data in _chain(first, events):
                    if name == "keepalive":
                        if wire == "sse":
                            yield sse_keepalive()
                        continue
                    if wire == "sse":
                        yield format_sse(name, data)
                    else:
                        yield format_ndjson(name, data)
            finally:
                events.close()

        content_type = (
            "text/event-stream" if wire == "sse" else "application/x-ndjson"
        )
        return StreamingResponse(chunks(), content_type=content_type)

    add("GET", "/healthz", healthz)
    add("GET", "/stats", stats)
    add("GET", "/metrics", metrics)
    add("GET", "/methods", methods)
    add("GET", "/scenarios", scenarios)
    add("POST", "/solve", solve)
    add("POST", "/sweep", sweep)
    add("GET", "/jobs", jobs)
    add("GET", "/jobs/{job_id}/status", job_status)
    add("GET", "/jobs/{job_id}/result", job_result)
    add("GET", "/jobs/{job_id}/trace", job_trace)
    add("POST", "/jobs/{job_id}/start", job_start)
    add("POST", "/jobs/{job_id}/restart", job_restart)
    add("GET", "/jobs/{job_id}/stream", job_stream)
    return router


def _chain(first, rest):
    if first is not None:
        yield first
    yield from rest
