"""Event framing and per-job fan-out for the streaming endpoints.

The service streams job events (row batches from a sweep's
:class:`~repro.parallel.stream.CallbackRowSink`, progress ticks,
terminal status) to any number of concurrent subscribers. Two wire
framings of the same event dicts:

* **SSE** (``text/event-stream``): ``event: <name>`` + ``data: <json>``
  blocks, the browser-native framing;
* **NDJSON** (``application/x-ndjson``): one JSON object per line with
  the event name inlined as ``"event"`` — trivial to consume from any
  HTTP client without an SSE parser.

:class:`JobEventBroker` is the fan-out hub: publishers (the job runner
threads) push event dicts, each subscriber drains its own queue. The
broker keeps **no history** — the guaranteed-complete streaming recipe
is to create the job held (``"hold": true``), subscribe, then start it
(see :mod:`repro.service.routes`).
"""

from __future__ import annotations

import json
import queue
import threading
from typing import Iterator

#: event names that end a stream (mirror terminal job statuses)
TERMINAL_EVENTS = ("done", "failed", "cancelled", "interrupted")


def format_sse(event: str, data: dict) -> bytes:
    """One Server-Sent-Events frame: named event + JSON payload."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")


def format_ndjson(event: str, data: dict) -> bytes:
    """One NDJSON line; the event name rides inside the object."""
    merged = {"event": event, **data}
    payload = json.dumps(merged, sort_keys=True, separators=(",", ":"))
    return payload.encode("utf-8") + b"\n"


def sse_keepalive() -> bytes:
    """An SSE comment line — keeps idle connections from timing out."""
    return b": keep-alive\n\n"


def parse_sse(chunks: "Iterator[bytes]") -> "Iterator[tuple[str, dict]]":
    """Inverse of :func:`format_sse` over a byte-chunk stream.

    Yields ``(event, data)`` pairs; comment lines (keepalives) are
    skipped. Used by the test client and the example client — the
    service itself only writes.
    """
    buffer = b""
    for chunk in chunks:
        buffer += chunk
        while b"\n\n" in buffer:
            frame, buffer = buffer.split(b"\n\n", 1)
            event, data = None, None
            for line in frame.decode("utf-8").splitlines():
                if line.startswith(":"):
                    continue  # comment / keepalive
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data = json.loads(line[len("data:"):].strip())
            if event is not None:
                yield event, data if data is not None else {}


class JobEventBroker:
    """Per-job publish/subscribe fan-out (in-process, thread-safe).

    Each subscriber owns a private unbounded :class:`queue.Queue`;
    ``publish`` copies the event reference into every live queue.
    Events are dicts ``{"event": name, ...payload}``. Subscribers that
    stop draining only grow their own queue — publishers never block.
    """

    def __init__(self):
        self._subscribers: "dict[str, list[queue.Queue]]" = {}
        self._lock = threading.Lock()

    def subscribe(self, job_id: str) -> "queue.Queue":
        q: "queue.Queue" = queue.Queue()
        with self._lock:
            self._subscribers.setdefault(job_id, []).append(q)
        return q

    def unsubscribe(self, job_id: str, q: "queue.Queue") -> None:
        with self._lock:
            subs = self._subscribers.get(job_id)
            if subs is None:
                return
            try:
                subs.remove(q)
            except ValueError:
                pass
            if not subs:
                del self._subscribers[job_id]

    def publish(self, job_id: str, event: str, data: "dict | None" = None) -> None:
        payload = {"event": event, **(data or {})}
        with self._lock:
            subs = list(self._subscribers.get(job_id, ()))
        for q in subs:
            q.put(payload)

    def subscriber_count(self, job_id: str) -> int:
        with self._lock:
            return len(self._subscribers.get(job_id, ()))
