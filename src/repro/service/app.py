"""The resident solver service and its ASGI application factory.

:class:`SolverService` is the HTTP-free core: it owns the warm
:class:`~repro.service.pool.SolverPool`, the request
:class:`~repro.service.coalescer.RequestCoalescer`, the job store, the
event broker and a worker thread-pool, and exposes the operations the
routes map onto. Everything it consumes and produces is plain JSON
dicts, so it is directly drivable from tests and benchmarks without a
socket in sight.

Request/response contracts (see ``docs/architecture.md`` for the flow
diagram):

``POST /solve`` body::

    {"scenario": "das2",        # platform scenario name (required)
     "objective": "maxmin",     # optional; config.objective wins
     "seed": 123,               # solve seed (int, optional)
     "scenario_seed": 7,        # platform-build seed (default: seed)
     "config": {...},           # partial SolverConfig dict
     "async": false,            # true -> job instead of inline result
     "coalesce": true}          # opt out of request batching

The response is bitwise the report of::

    Solver(cfg).solve(
        build_scenario(name, objective, rng=default_rng(scenario_seed)),
        rng=seed)

independent of how many concurrent requests were coalesced into one
``solve_many`` batch (the facade's explicit-seeds contract).

``POST /sweep`` body::

    {"settings": [{"K": 5, ...}, ...]   # explicit grid points, or:
     "n_settings": 8, "k_values": [5, 10], "settings_seed": 0,
     "scenario": "calibrated",  # sweep scenario name or Scenario dict
     "methods": [...], "objectives": [...], "n_platforms": 3,
     "seed": 42,                # campaign root seed
     "config": {...},           # partial SolverConfig (stream forced on)
     "hold": false}             # true -> create held, start explicitly

Sweeps are always jobs; their rows stream over ``GET
/jobs/{id}/stream`` as they fold (strict task-index order — the serial
reference order). The *guaranteed-complete* streaming recipe: submit
with ``"hold": true``, open the stream (the first ``status`` event
confirms the subscription), then ``POST /jobs/{id}/start`` — every row
of the campaign arrives on that stream.
"""

from __future__ import annotations

import queue
import re
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator

import numpy as np

from repro.api.config import SolverConfig, config_fingerprint
from repro.api.scenarios import scenario_registry
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.trace import Tracer, use_tracer
from repro.platform.serialization import platform_fingerprint
from repro.service.asgi import AsgiApp
from repro.service.coalescer import RequestCoalescer
from repro.service.errors import ServiceError
from repro.service.jobstore import JobRecord, JobStore, open_job_store
from repro.service.pool import SolverPool
from repro.service.sse import TERMINAL_EVENTS, JobEventBroker


def _config_from(payload: dict, force_stream: bool = False) -> SolverConfig:
    """Build the request's :class:`SolverConfig` (partial dicts fine)."""
    data = dict(payload.get("config") or {})
    if "method" not in data and payload.get("method") is not None:
        data["method"] = payload["method"]
    if force_stream:
        data["stream"] = True
    if int(data.get("shards", 1)) > 1:
        raise ServiceError(
            "shards > 1 is not available through the service: sharded "
            "rows fold inside the shard executors and cannot stream"
        )
    return SolverConfig.from_dict(data)


def _setting_from_dict(data: dict):
    from repro.experiments.config import Setting

    try:
        k = data["K"] if "K" in data else data["k"]
        return Setting(
            k=int(k),
            connectivity=float(data["connectivity"]),
            heterogeneity=float(data["heterogeneity"]),
            mean_g=float(data["mean_g"]),
            mean_bw=float(data["mean_bw"]),
            mean_maxcon=float(data["mean_maxcon"]),
        )
    except KeyError as exc:
        raise ServiceError(f"setting is missing key {exc}") from None


def _scenario_from(payload: dict) -> "tuple[object, str]":
    """Resolve the sweep scenario and a stable pool-affinity key."""
    import hashlib
    import json as _json

    from repro.experiments.config import DEFAULT_SCENARIO, Scenario

    raw = payload.get("scenario")
    if raw is None:
        return DEFAULT_SCENARIO, "sweep:default"
    if isinstance(raw, str):
        try:
            return scenario_registry().sweep_scenario(raw), f"sweep:{raw.lower()}"
        except ValueError as exc:
            raise ServiceError(str(exc), status=400) from None
    if isinstance(raw, dict):
        try:
            scenario = Scenario(**raw)
        except TypeError as exc:
            raise ServiceError(f"bad scenario dict: {exc}") from None
        digest = hashlib.sha256(
            _json.dumps(raw, sort_keys=True).encode()
        ).hexdigest()[:16]
        return scenario, f"sweep:inline:{digest}"
    raise ServiceError("scenario must be a name or a Scenario dict")


class SolverService:
    """The long-lived core behind the HTTP surface."""

    #: per-job traces retained in memory (LRU; traces are debugging
    #: artifacts, not results — old ones are droppable)
    MAX_TRACES = 256

    def __init__(
        self,
        job_store: "JobStore | str | None" = None,
        max_solvers: int = 32,
        max_workers: int = 8,
        coalesce_window: float = 0.005,
        max_coalesce_batch: int = 64,
    ):
        if isinstance(job_store, JobStore):
            self.jobs = job_store
        else:
            self.jobs = open_job_store(job_store)
        # One registry for the whole process: the pool, the coalescer
        # and the request layer all register their families here, so
        # ``GET /metrics`` is a single consistent snapshot.
        self.metrics = MetricsRegistry()
        self.pool = SolverPool(max_solvers=max_solvers, metrics=self.metrics)
        self.coalescer = RequestCoalescer(
            max_delay=coalesce_window,
            max_batch=max_coalesce_batch,
            metrics=self.metrics,
        )
        self._solves_counter = self.metrics.counter(
            "repro_solves_total",
            help="Solve reports produced (sync and async).",
        )
        self._lp_iterations = self.metrics.counter(
            "repro_lp_iterations_total",
            help="Simplex iterations spent across all solve reports.",
        )
        self.broker = JobEventBroker()
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job"
        )
        self.started_at = time.time()  # wall clock: display only
        self._started_monotonic = time.monotonic()  # uptime arithmetic
        self._id_lock = threading.Lock()
        self._next_id = self._seed_id_counter()
        self._specs: "dict[str, dict]" = {}  # runtime-only sweep specs
        self._trace_lock = threading.Lock()
        self._traces: "OrderedDict[str, list]" = OrderedDict()
        self._closed = False

    def _seed_id_counter(self) -> int:
        """Continue numbering past any journal-loaded job ids."""
        highest = 0
        for record in self.jobs.list_jobs():
            found = re.search(r"(\d+)$", record.job_id)
            if found:
                highest = max(highest, int(found.group(1)))
        return highest

    def new_job_id(self, kind: str) -> str:
        with self._id_lock:
            self._next_id += 1
            return f"{kind}-{self._next_id:06d}"

    # ------------------------------------------------------------------
    # solve
    # ------------------------------------------------------------------
    def _build_solve(self, payload: dict):
        name = payload.get("scenario")
        if not isinstance(name, str):
            raise ServiceError(
                "solve request needs a 'scenario' platform-scenario name "
                f"(one of {list(scenario_registry().names('platform'))})"
            )
        config = _config_from(payload)
        seed = payload.get("seed")
        if seed is not None:
            seed = int(seed)
        scenario_seed = payload.get("scenario_seed", seed)
        objective = payload.get("objective") or config.objective or "maxmin"
        try:
            problem = scenario_registry().build_problem(
                name,
                objective=objective,
                rng=np.random.default_rng(scenario_seed),
            )
        except ValueError as exc:
            raise ServiceError(str(exc), status=400) from None
        fingerprint = platform_fingerprint(problem.platform)
        return problem, fingerprint, config, seed

    def submit_solve(self, payload: dict) -> "tuple[str, dict]":
        """Handle one ``POST /solve``; returns ``(kind, payload)`` with
        kind ``"report"`` (synchronous) or ``"job"`` (``"async": true``).
        """
        self._check_open()
        problem, fingerprint, config, seed = self._build_solve(payload)
        solver = self.pool.solver_for(fingerprint, config)
        coalesce = bool(payload.get("coalesce", True))
        wants_async = bool(payload.get("async", False))
        job_id = self.new_job_id("solve") if wants_async else None
        if coalesce:
            future = self.coalescer.submit(
                self.pool.key_for(fingerprint, config), solver, problem, seed
            )
        elif job_id is not None:
            # Uncoalesced async solves get a per-job trace (a coalesced
            # batch is shared across callers, so it has no single owner).
            future = self.executor.submit(
                self._traced_call, job_id, solver.solve, problem, rng=seed
            )
        else:
            future = self.executor.submit(solver.solve, problem, rng=seed)
        if not wants_async:
            report = future.result()
            self._record_report(report)
            return "report", report.to_dict()

        self.jobs.create(
            JobRecord(job_id, kind="solve", status="running", request=payload)
        )

        def finish(fut):
            try:
                report = fut.result()
            except Exception as exc:  # noqa: BLE001 - job boundary
                self._fail_job(job_id, exc)
            else:
                self._record_report(report)
                self.jobs.update(
                    job_id, status="done", result={"report": report.to_dict()}
                )
                self.broker.publish(
                    job_id, "done", {"job_id": job_id, "status": "done"}
                )

        future.add_done_callback(finish)
        return "job", self.jobs.get(job_id).to_dict()

    def _record_report(self, report) -> None:
        """Fold one finished report into the service counters."""
        self._solves_counter.inc()
        lp_stats = report.lp_stats or {}
        iterations = int(lp_stats.get("iterations", 0))
        if iterations > 0:
            self._lp_iterations.inc(iterations)

    def _traced_call(self, job_id: str, fn, *args, **kwargs):
        """Run ``fn`` under a fresh per-job tracer; retain its trees."""
        tracer = Tracer()
        try:
            with use_tracer(tracer):
                return fn(*args, **kwargs)
        finally:
            self._store_trace(job_id, tracer.to_dicts())

    def _store_trace(self, job_id: str, trace: list) -> None:
        with self._trace_lock:
            self._traces[job_id] = trace
            self._traces.move_to_end(job_id)
            while len(self._traces) > self.MAX_TRACES:
                self._traces.popitem(last=False)

    # ------------------------------------------------------------------
    # sweep jobs
    # ------------------------------------------------------------------
    def submit_sweep(self, payload: dict) -> dict:
        """Handle one ``POST /sweep``: create (and maybe start) a job."""
        self._check_open()
        scenario, scenario_key = _scenario_from(payload)
        config = _config_from(payload, force_stream=True)
        if payload.get("settings") is not None:
            settings = [_setting_from_dict(d) for d in payload["settings"]]
        elif payload.get("n_settings") is not None:
            from repro.experiments.config import sample_settings

            settings = sample_settings(
                int(payload["n_settings"]),
                rng=np.random.default_rng(payload.get("settings_seed", 0)),
                k_values=payload.get("k_values"),
            )
        else:
            raise ServiceError(
                "sweep request needs 'settings' (explicit grid points) or "
                "'n_settings' (sampled)"
            )
        if not settings:
            raise ServiceError("sweep request has no settings")
        seed = payload.get("seed")
        spec = {
            "settings": settings,
            "scenario": scenario,
            "pool_key": scenario_key,
            "config": config,
            "methods": payload.get("methods"),
            "objectives": payload.get("objectives"),
            "n_platforms": payload.get("n_platforms"),
            "seed": None if seed is None else int(seed),
        }
        job_id = self.new_job_id("sweep")
        hold = bool(payload.get("hold", False))
        self.jobs.create(
            JobRecord(
                job_id,
                kind="sweep",
                status="held" if hold else "queued",
                request=payload,
                progress={"done": 0, "total": None},
            )
        )
        with self._id_lock:
            self._specs[job_id] = spec
        if not hold:
            self.executor.submit(self._run_sweep_job, job_id)
        return self.jobs.get(job_id).to_dict()

    def start_job(self, job_id: str) -> dict:
        """Release a held job (``POST /jobs/{id}/start``)."""
        self._check_open()
        record = self.jobs.get(job_id)
        if record.status != "held":
            raise ServiceError(
                f"job {job_id} is {record.status!r}, only held jobs can be "
                "started",
                status=409,
            )
        record = self.jobs.update(job_id, status="queued")
        self.executor.submit(self._run_sweep_job, job_id)
        return record.to_dict()

    def restart_job(self, job_id: str) -> dict:
        """Resubmit a terminal job (``POST /jobs/{id}/restart``).

        Jobs found ``running``/``queued`` when a journal is replayed are
        marked ``interrupted`` — the in-flight work died with the old
        process and cannot be resumed mid-stream. Restart is the
        explicit recovery path: the journaled ``request`` that created
        the job is resubmitted *as a new job* (fresh id, fresh
        lifecycle), and the old record stays in the history untouched.
        Non-terminal jobs 409 — they are still owned by a live worker;
        so do jobs whose journal predates request echoing (nothing to
        resubmit from).
        """
        self._check_open()
        record = self.jobs.get(job_id)
        if not record.is_terminal:
            raise ServiceError(
                f"job {job_id} is {record.status!r}; only terminal jobs "
                "(done/failed/cancelled/interrupted) can be restarted",
                status=409,
            )
        if not record.request:
            raise ServiceError(
                f"job {job_id} has no journaled request to resubmit",
                status=409,
            )
        if record.kind == "sweep":
            payload = self.submit_sweep(record.request)
        else:
            _, payload = self.submit_solve({**record.request, "async": True})
        payload = dict(payload)
        payload["restarted_from"] = job_id
        return payload

    def _run_sweep_job(self, job_id: str) -> None:
        with self._id_lock:
            spec = self._specs.pop(job_id, None)
        if spec is None:  # pragma: no cover - double-start guard
            return
        tracer = Tracer()
        with use_tracer(tracer):
            try:
                self._execute_sweep(job_id, spec)
            finally:
                self._store_trace(job_id, tracer.to_dicts())

    def _execute_sweep(self, job_id: str, spec: dict) -> None:
        try:
            self.jobs.update(job_id, status="running")
            solver = self.pool.solver_for(spec["pool_key"], spec["config"])

            from repro.experiments.persistence import row_to_dict

            def on_rows(rows) -> None:
                self.broker.publish(
                    job_id, "rows", {"rows": [row_to_dict(r) for r in rows]}
                )

            def progress(done: int, total: int) -> None:
                self.jobs.update(
                    job_id, progress={"done": done, "total": total}
                )
                self.broker.publish(
                    job_id, "progress", {"done": done, "total": total}
                )

            accumulator = solver.sweep(
                spec["settings"],
                scenario=spec["scenario"],
                methods=spec["methods"],
                objectives=spec["objectives"],
                n_platforms=spec["n_platforms"],
                rng=spec["seed"],
                progress=progress,
                on_rows=on_rows,
            )
            result = {
                "tables": accumulator.tables(),
                "accumulator_state": accumulator.state_dict(),
            }
            self.jobs.update(job_id, status="done", result=result)
            self.broker.publish(
                job_id, "done", {"job_id": job_id, "status": "done"}
            )
        except Exception as exc:  # noqa: BLE001 - job boundary
            self._fail_job(job_id, exc)

    def _fail_job(self, job_id: str, exc: BaseException) -> None:
        message = f"{type(exc).__name__}: {exc}"
        self.jobs.update(job_id, status="failed", error=message)
        self.broker.publish(
            job_id, "failed", {"job_id": job_id, "status": "failed",
                               "error": message}
        )

    # ------------------------------------------------------------------
    # job inspection / streaming
    # ------------------------------------------------------------------
    def job_status(self, job_id: str) -> dict:
        return self.jobs.get(job_id).status_dict()

    def job_result(self, job_id: str) -> dict:
        record = self.jobs.get(job_id)
        if record.status != "done":
            raise ServiceError(
                f"job {job_id} is {record.status!r}"
                + (f": {record.error}" if record.error else "")
                + "; result only exists once done",
                status=409,
            )
        return {
            "job_id": record.job_id,
            "kind": record.kind,
            "result": record.result,
        }

    def list_jobs(self) -> "list[dict]":
        return [record.status_dict() for record in self.jobs.list_jobs()]

    def stream_events(
        self, job_id: str, keepalive: float = 15.0
    ) -> "Iterator[tuple[str, dict]]":
        """Yield ``(event, data)`` pairs for a job until it terminates.

        Subscribe-then-snapshot ordering closes the terminal race: the
        runner updates the store *before* publishing its terminal event,
        so either the snapshot already shows a terminal status (emit it
        synthetically) or the queue is guaranteed to deliver it.
        """
        self.jobs.get(job_id)  # 404 before the response starts
        subscription = self.broker.subscribe(job_id)
        try:
            record = self.jobs.get(job_id)
            yield "status", record.status_dict()
            if record.is_terminal:
                data = {"job_id": job_id, "status": record.status}
                if record.error:
                    data["error"] = record.error
                yield record.status, data
                return
            while True:
                try:
                    event = subscription.get(timeout=keepalive)
                except queue.Empty:
                    yield "keepalive", {}
                    continue
                name = event["event"]
                data = {k: v for k, v in event.items() if k != "event"}
                yield name, data
                if name in TERMINAL_EVENTS:
                    return
        finally:
            self.broker.unsubscribe(job_id, subscription)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        by_status: "dict[str, int]" = {}
        for record in self.jobs.list_jobs():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        return {
            # monotonic arithmetic: immune to wall-clock steps (NTP)
            "uptime": time.monotonic() - self._started_monotonic,
            "jobs": by_status,
            "pool": self.pool.stats(),
            "coalescer": self.coalescer.stats(),
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition).

        Job-status gauges are refreshed from the store at render time;
        everything else is served live from the shared registry.
        """
        by_status: "dict[str, int]" = {}
        for record in self.jobs.list_jobs():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        for status in ("queued", "running", "done", "failed", *by_status):
            self.metrics.gauge(
                "repro_jobs",
                help="Jobs by status.",
                labels={"status": status},
            ).set(by_status.get(status, 0))
        return render_prometheus(self.metrics)

    def job_trace(self, job_id: str) -> dict:
        """The retained span trees for a job (``GET /jobs/{id}/trace``)."""
        record = self.jobs.get(job_id)  # 404 on unknown jobs first
        with self._trace_lock:
            trace = self._traces.get(job_id)
        if trace is None:
            raise ServiceError(
                f"job {job_id} has no retained trace (status "
                f"{record.status!r}; traces cover jobs executed by this "
                "process and are evicted oldest-first)",
                status=404,
            )
        return {"job_id": job_id, "trace": trace}

    def describe(self) -> dict:
        """The ``/scenarios`` + ``/methods`` discovery payload pieces."""
        from repro.core.solve import available_methods

        registry = scenario_registry()
        return {
            "methods": list(available_methods()),
            "scenarios": [
                registry.info(name).as_dict() for name in registry.names()
            ],
        }

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is shut down", status=503)

    def close(self) -> None:
        """Drain workers and close the store (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown(wait=True)
        self.jobs.close()


# ----------------------------------------------------------------------
def create_app(
    service: "SolverService | None" = None, **service_kwargs
) -> AsgiApp:
    """The zero-dependency ASGI application (any ASGI server hosts it).

    The built app exposes the service as ``app.service`` and wires
    ``service.close`` into ASGI lifespan shutdown.
    """
    from repro.service.routes import build_router

    if service is None:
        service = SolverService(**service_kwargs)
    app = AsgiApp(build_router(service))
    app.service = service
    app.on_shutdown.append(service.close)
    return app


def create_fastapi_app(
    service: "SolverService | None" = None, **service_kwargs
):
    """Optional FastAPI wrapper (the ``fastapi`` extra).

    Mounts the canonical ASGI app inside a FastAPI shell so deployments
    already composed of FastAPI routers can graft the solver service
    in. Raises :class:`ServiceError` with an actionable message when
    FastAPI is not installed — the plain :func:`create_app` result runs
    under uvicorn/hypercorn just the same.
    """
    try:
        from fastapi import FastAPI
    except ImportError:
        raise ServiceError(
            "the 'fastapi' extra is not installed; use create_app() — the "
            "plain ASGI app runs under any ASGI server without it",
            status=500,
        ) from None
    asgi = create_app(service, **service_kwargs)
    shell = FastAPI(title="repro solver service")
    shell.mount("", asgi)
    shell.state.repro_service = asgi.service
    return shell
