"""A deliberately small ASGI toolkit (zero dependencies).

The service must run in environments where FastAPI/Starlette are not
installed, so this module provides just enough ASGI 3.0 plumbing for
the routes in :mod:`repro.service.routes`: a request wrapper, JSON and
streaming responses, a ``{param}``-pattern router, and an application
object handling the ``http`` and ``lifespan`` scopes. Any ASGI server
(uvicorn, hypercorn, the bundled stdlib bridge in
:mod:`repro.service.server`) can host the resulting app.

Handlers are plain *synchronous* callables ``handler(request,
**params) -> Response`` — they block on solver work, so the app runs
them (and iterates streaming bodies) on the event loop's default
thread-pool executor, keeping the loop responsive while many requests
stream concurrently.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Any, Callable, Iterable, Iterator
from urllib.parse import parse_qsl

from repro.service.errors import ServiceError


class Request:
    """One HTTP request: ASGI scope + fully-read body."""

    def __init__(self, scope: dict, body: bytes = b""):
        self.scope = scope
        self.method: str = scope.get("method", "GET").upper()
        self.path: str = scope.get("path", "/")
        self.body = body
        self.query: "dict[str, str]" = dict(
            parse_qsl(scope.get("query_string", b"").decode("latin-1"))
        )
        self.headers: "dict[str, str]" = {
            key.decode("latin-1").lower(): value.decode("latin-1")
            for key, value in scope.get("headers", ())
        }

    def json(self) -> Any:
        """The body parsed as JSON (empty body -> ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}", status=400)


class Response:
    """A buffered response; :meth:`json` builds the common case."""

    def __init__(
        self,
        body: bytes = b"",
        status: int = 200,
        content_type: str = "application/octet-stream",
        headers: "dict[str, str] | None" = None,
    ):
        self.body = body
        self.status = int(status)
        self.headers = dict(headers or {})
        self.headers.setdefault("content-type", content_type)

    @classmethod
    def json(cls, data: Any, status: int = 200) -> "Response":
        body = json.dumps(data, sort_keys=True).encode("utf-8")
        return cls(body, status=status, content_type="application/json")


class StreamingResponse(Response):
    """A response whose body is produced incrementally.

    ``chunks`` is a *synchronous* iterable of byte chunks (the SSE /
    NDJSON generators of the stream endpoint); the app pulls it on the
    executor so a slow producer never stalls the event loop.
    """

    def __init__(
        self,
        chunks: "Iterable[bytes]",
        status: int = 200,
        content_type: str = "application/octet-stream",
        headers: "dict[str, str] | None" = None,
    ):
        super().__init__(b"", status, content_type, headers)
        self.headers.setdefault("cache-control", "no-store")
        self.chunks = chunks


class Router:
    """Method + ``/path/{param}/...`` pattern dispatch."""

    def __init__(self):
        self._routes: "list[tuple[str, re.Pattern, Callable]]" = []
        self._paths: "set[str]" = set()

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        regex = re.compile(
            "^"
            + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )
        self._routes.append((method.upper(), regex, handler))
        self._paths.add(pattern)

    def match(self, method: str, path: str) -> "tuple[Callable, dict]":
        """The handler and path params; raises :class:`ServiceError`
        with 404 (no such path) or 405 (path exists, wrong method)."""
        path_matched = False
        for route_method, regex, handler in self._routes:
            found = regex.match(path)
            if found is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, found.groupdict()
        if path_matched:
            raise ServiceError(f"method {method} not allowed on {path}", 405)
        raise ServiceError(f"no route for {path}", status=404)


async def _read_body(receive) -> bytes:
    parts = []
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            break
        parts.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    return b"".join(parts)


class AsgiApp:
    """ASGI 3.0 application over a :class:`Router`.

    ``on_shutdown`` callbacks run when the hosting server completes the
    lifespan protocol (and are also invoked by
    :meth:`repro.service.app.SolverService.close` for hosts that skip
    lifespan, like the stdlib bridge and the test client).
    """

    def __init__(self, router: Router):
        self.router = router
        self.on_shutdown: "list[Callable[[], None]]" = []

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        await self._http(scope, receive, send)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                for callback in self.on_shutdown:
                    callback()
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _http(self, scope, receive, send) -> None:
        body = await _read_body(receive)
        request = Request(scope, body)
        loop = asyncio.get_running_loop()
        try:
            handler, params = self.router.match(request.method, request.path)
            response = await loop.run_in_executor(
                None, lambda: handler(request, **params)
            )
        except ServiceError as exc:
            response = Response.json({"error": str(exc)}, status=exc.status)
        except Exception as exc:  # noqa: BLE001 - boundary translation
            response = Response.json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )
        await self._send_response(loop, response, send)

    async def _send_response(self, loop, response: Response, send) -> None:
        headers = [
            (key.encode("latin-1"), value.encode("latin-1"))
            for key, value in response.headers.items()
        ]
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": headers,
            }
        )
        if isinstance(response, StreamingResponse):
            iterator: "Iterator[bytes]" = iter(response.chunks)
            sentinel = object()
            try:
                while True:
                    chunk = await loop.run_in_executor(
                        None, next, iterator, sentinel
                    )
                    if chunk is sentinel:
                        break
                    await send(
                        {
                            "type": "http.response.body",
                            "body": chunk,
                            "more_body": True,
                        }
                    )
            finally:
                # a disconnected client must still release the
                # generator's subscriptions (its finally blocks)
                close = getattr(iterator, "close", None)
                if close is not None:
                    await loop.run_in_executor(None, close)
            await send({"type": "http.response.body", "body": b""})
            return
        await send({"type": "http.response.body", "body": response.body})
