"""Solver-as-a-service: the resident scheduling API.

The batch facade (:mod:`repro.api`) made repeated solves cheap within
one process; this package makes that warmth *resident*: a long-lived
HTTP service whose :class:`SolverPool` keeps one warm
:class:`~repro.api.Solver` per (platform fingerprint, config
fingerprint) pair, whose :class:`RequestCoalescer` batches compatible
concurrent solve requests into single bitwise-transparent
``solve_many`` calls, and whose sweep jobs stream their rows
incrementally (Server-Sent Events or NDJSON) straight from the
campaign's :class:`~repro.parallel.stream.CallbackRowSink` — in strict
task-index order, i.e. exactly the serial ``jobs=1`` reference fold.

Zero dependencies beyond the library itself: :func:`create_app` builds
a plain ASGI 3.0 app (host it under uvicorn, hypercorn, or the bundled
stdlib bridge via ``python -m repro.experiments serve``);
:func:`create_fastapi_app` is the
optional FastAPI shell for deployments that want to mount it alongside
existing routers.

>>> from repro.service import SolverService, create_app
>>> from repro.service.testing import AsgiTestClient
>>> client = AsgiTestClient(create_app(max_workers=2))
>>> client.get("/healthz").json()
{'status': 'ok'}
>>> body = {"scenario": "das2", "seed": 0, "config": {"method": "greedy"}}
>>> client.post("/solve", body).json()["report"]["method"]
'greedy'
"""

from repro.service.app import SolverService, create_app, create_fastapi_app
from repro.service.coalescer import RequestCoalescer
from repro.service.errors import JobNotFound, ServiceError
from repro.service.jobstore import (
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobRecord,
    JobStore,
    JsonlJobStore,
    MemoryJobStore,
    open_job_store,
)
from repro.service.pool import SolverPool
from repro.service.server import AsgiHTTPServer, run_server
from repro.service.sse import (
    JobEventBroker,
    format_ndjson,
    format_sse,
    parse_sse,
)

__all__ = [
    # application
    "SolverService",
    "create_app",
    "create_fastapi_app",
    "run_server",
    "AsgiHTTPServer",
    # building blocks
    "SolverPool",
    "RequestCoalescer",
    "JobEventBroker",
    "format_sse",
    "format_ndjson",
    "parse_sse",
    # job lifecycle
    "JobRecord",
    "JobStore",
    "MemoryJobStore",
    "JsonlJobStore",
    "open_job_store",
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    # errors
    "ServiceError",
    "JobNotFound",
]
