"""Service-layer errors.

One exception type carries the HTTP status a handler should answer
with, so route code raises domain errors and the dispatch layer owns
the wire translation — handlers never build error responses by hand.
"""

from __future__ import annotations

from repro.util.errors import SolverError


class ServiceError(SolverError):
    """A request the service cannot honour, with its HTTP status.

    Subclasses :class:`~repro.util.errors.SolverError` so facade
    validation failures and service-level failures share one except
    clause at the dispatch boundary.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = int(status)


class JobNotFound(ServiceError):
    """Unknown job id (HTTP 404)."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job {job_id!r}", status=404)
        self.job_id = job_id
