"""Warm :class:`~repro.api.Solver` instances keyed by what they cache.

The whole point of a resident service is that the second request from a
platform is cheaper than the first: the facade's
:class:`~repro.api.solver.SolverState` holds the LP template cache, the
dense-matrix memo and the variable-index adoption map, all keyed by
platform fingerprint. The pool keeps one warm ``Solver`` per

    (platform fingerprint, config fingerprint)

pair — the platform fingerprint scopes *what* is cached, the
:func:`~repro.api.config.config_fingerprint` scopes *how it solves*
(two configs may produce different results, so they must never share a
report-stamping solver). Eviction is LRU with a bounded size; each
``Solver`` additionally bounds its own index cache, so total memory is
capped on both axes.

Solvers handed out are shared across threads — safe because
``SolverState`` and :class:`~repro.lp.builder.LPBuildCache` lock their
mutations and reuse is value-transparent (pristine template copies,
never shared solve state).

Hit/miss/eviction counters are :class:`repro.obs.metrics.Counter`
instances registered in the owning service's metrics registry (or a
private one for standalone pools): cumulative, thread-safe under their
own locks, and served verbatim by both ``GET /stats`` and the
Prometheus ``GET /metrics`` endpoint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from repro.api.config import SolverConfig, config_fingerprint
from repro.api.solver import Solver
from repro.obs.metrics import MetricsRegistry


class SolverPool:
    """Bounded LRU pool of warm solvers (thread-safe)."""

    def __init__(
        self,
        max_solvers: int = 32,
        solver_factory: "Callable[[SolverConfig], Solver]" = Solver,
        metrics: "MetricsRegistry | None" = None,
    ):
        if max_solvers < 1:
            raise ValueError(f"max_solvers must be >= 1, got {max_solvers}")
        self.max_solvers = int(max_solvers)
        self._factory = solver_factory
        self._solvers: "OrderedDict[tuple[str, str], Solver]" = OrderedDict()
        self._lock = threading.RLock()
        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self.pool_hits = registry.counter(
            "repro_pool_hits_total",
            help="Requests served by an already-warm pooled solver.",
        )
        self.pool_misses = registry.counter(
            "repro_pool_misses_total",
            help="Requests that had to build a cold solver.",
        )
        self.evictions = registry.counter(
            "repro_pool_evictions_total",
            help="Warm solvers evicted by the LRU bound.",
        )
        self._size_gauge = registry.gauge(
            "repro_pool_size", help="Resident warm solvers."
        )

    # ------------------------------------------------------------------
    def key_for(self, fingerprint: str, config: SolverConfig) -> "tuple[str, str]":
        return (str(fingerprint), config_fingerprint(config))

    def solver_for(self, fingerprint: str, config: SolverConfig) -> Solver:
        """The warm solver for this platform/config pair (made if cold).

        ``fingerprint`` is any stable identity of the workload's cache
        affinity — :func:`~repro.platform.serialization.
        platform_fingerprint` for explicit-platform solves, a scenario
        key for registry-built ones.
        """
        key = self.key_for(fingerprint, config)
        with self._lock:
            solver = self._solvers.get(key)
            if solver is not None:
                self._solvers.move_to_end(key)
                self.pool_hits.inc()
                return solver
            self.pool_misses.inc()
            solver = self._factory(config)
            self._solvers[key] = solver
            while len(self._solvers) > self.max_solvers:
                self._solvers.popitem(last=False)
                self.evictions.inc()
            self._size_gauge.set(len(self._solvers))
            return solver

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._solvers)

    def stats(self) -> dict:
        """Pool counters plus the pooled solvers' cache counters, summed.

        The summed ``build_hits``/``cold_builds`` pair is the service's
        warm-reuse story in two numbers (gated by
        ``benchmarks/bench_service.py``).
        """
        with self._lock:
            solvers = list(self._solvers.values())
            size = len(self._solvers)
        out = {
            "size": size,
            "max_solvers": self.max_solvers,
            "pool_hits": self.pool_hits.value,
            "pool_misses": self.pool_misses.value,
            "evictions": self.evictions.value,
        }
        aggregate: "dict[str, int]" = {}
        for solver in solvers:
            for key, value in solver.state.stats().items():
                aggregate[key] = aggregate.get(key, 0) + int(value)
        out["solver_totals"] = aggregate
        return out
