"""Random platform generation following Section 6 / Table 1 of the paper.

The paper instantiates random platforms from six parameters: ``K`` (the
number of clusters), ``connectivity`` (the probability that any two
clusters are connected by a backbone link), and mean values for ``g``
(local link capacity), ``bw`` (per-connection backbone bandwidth) and
``maxcon`` (backbone connection cap), the last three perturbed by a
``heterogeneity`` factor: each value is drawn uniformly from
``[mean * (1 - h), mean * (1 + h)]``. Computing speed is fixed at 100
("only relative values are meaningful in a periodic schedule").

Besides the paper's generator, this module provides deterministic preset
builders (star, line, fully connected) used by tests and examples, and a
``extra_routers`` option that splices pass-through routers into backbone
links to exercise multi-hop routes through routers with no attached
cluster (Figure 2 of the paper shows such routers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.platform.cluster import Cluster
from repro.platform.links import BackboneLink
from repro.platform.topology import Platform
from repro.util.errors import PlatformError
from repro.util.rng import ensure_rng


@dataclass(frozen=True, slots=True)
class PlatformSpec:
    """Parameter setting for the random generator (one row of Table 1).

    Attributes
    ----------
    n_clusters:
        ``K``, the number of clusters.
    connectivity:
        Probability that any two clusters are joined by a backbone link.
    heterogeneity:
        Relative spread of ``g``, ``bw`` and ``maxcon`` around their means.
    mean_g, mean_bw, mean_max_connect:
        Mean local capacity, per-connection backbone bandwidth, and
        backbone connection cap.
    speed:
        Cluster computing speed (the paper fixes it at 100).
    speed_heterogeneity:
        Relative spread of speeds around ``speed``. The paper's text
        fixes every speed at exactly 100, but under that reading (and
        equal payoffs) both objectives are trivially optimised by
        local-only computation, which contradicts the sub-1 ratios of
        Figure 5 — so the Section-6 scenarios re-use the platform
        heterogeneity here (see EXPERIMENTS.md, interpretation note 7).
    extra_routers:
        Number of pass-through routers spliced into random backbone
        links (0 reproduces the paper's flat topology).
    ensure_connected:
        Add a random Hamiltonian-path backbone so every pair of clusters
        is routable (off by default: the paper allows disconnected pairs).
    """

    n_clusters: int
    connectivity: float
    heterogeneity: float
    mean_g: float
    mean_bw: float
    mean_max_connect: float
    speed: float = 100.0
    speed_heterogeneity: float = 0.0
    extra_routers: int = 0
    ensure_connected: bool = False

    def __post_init__(self):
        if self.n_clusters < 1:
            raise PlatformError(f"need at least one cluster, got {self.n_clusters}")
        if not 0.0 <= self.connectivity <= 1.0:
            raise PlatformError(f"connectivity must be in [0, 1], got {self.connectivity}")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise PlatformError(
                f"heterogeneity must be in [0, 1), got {self.heterogeneity}"
            )
        for label, value in (
            ("mean_g", self.mean_g),
            ("mean_bw", self.mean_bw),
            ("mean_max_connect", self.mean_max_connect),
            ("speed", self.speed),
        ):
            if value <= 0:
                raise PlatformError(f"{label} must be positive, got {value}")
        if not 0.0 <= self.speed_heterogeneity < 1.0:
            raise PlatformError(
                f"speed_heterogeneity must be in [0, 1), got {self.speed_heterogeneity}"
            )
        if self.extra_routers < 0:
            raise PlatformError(f"extra_routers must be >= 0, got {self.extra_routers}")

    def with_clusters(self, n_clusters: int) -> "PlatformSpec":
        """Copy of this spec with a different ``K`` (used in K-sweeps)."""
        return replace(self, n_clusters=n_clusters)


def _sample(rng: np.random.Generator, mean: float, heterogeneity: float, size: int):
    lo = mean * (1.0 - heterogeneity)
    hi = mean * (1.0 + heterogeneity)
    return rng.uniform(lo, hi, size=size)


def generate_platform(
    spec: PlatformSpec, rng: "int | np.random.Generator | None" = None
) -> Platform:
    """Draw one random platform according to ``spec`` (Section 6 model).

    Each cluster gets its own router; every unordered router pair is
    joined by a backbone link with probability ``spec.connectivity``;
    backbone bandwidth / connection caps and local capacities follow the
    uniform heterogeneity law. Connection caps are rounded to the nearest
    integer and floored at 1.
    """
    rng = ensure_rng(rng)
    K = spec.n_clusters

    g_values = _sample(rng, spec.mean_g, spec.heterogeneity, K)
    speed_values = _sample(rng, spec.speed, spec.speed_heterogeneity, K)
    routers = [f"R{k}" for k in range(K)]
    clusters = [
        Cluster(
            name=f"C{k}",
            speed=float(speed_values[k]),
            g=float(g_values[k]),
            router=routers[k],
        )
        for k in range(K)
    ]

    pairs = [(i, j) for i in range(K) for j in range(i + 1, K)]
    links: list[BackboneLink] = []
    if pairs:
        chosen = rng.random(len(pairs)) < spec.connectivity
        selected = [pair for pair, keep in zip(pairs, chosen) if keep]
    else:
        selected = []

    if spec.ensure_connected and K > 1:
        # Splice in a random Hamiltonian path over the routers so that the
        # platform is guaranteed connected; duplicates are dropped.
        order = rng.permutation(K)
        existing = set(selected)
        for a, b in zip(order[:-1], order[1:]):
            edge = (min(int(a), int(b)), max(int(a), int(b)))
            if edge not in existing:
                selected.append(edge)
                existing.add(edge)

    bw_values = _sample(rng, spec.mean_bw, spec.heterogeneity, len(selected))
    mc_values = _sample(rng, spec.mean_max_connect, spec.heterogeneity, len(selected))
    for idx, (i, j) in enumerate(selected):
        links.append(
            BackboneLink(
                name=f"B{i}-{j}",
                ends=(routers[i], routers[j]),
                bw=float(bw_values[idx]),
                max_connect=max(1, int(round(mc_values[idx]))),
            )
        )

    all_routers = list(routers)
    if spec.extra_routers and links:
        links, all_routers = _splice_pass_through_routers(
            links, all_routers, spec.extra_routers, rng
        )

    return Platform(clusters=clusters, routers=all_routers, backbone_links=links)


def _splice_pass_through_routers(
    links: list[BackboneLink],
    routers: list[str],
    n_extra: int,
    rng: np.random.Generator,
) -> tuple[list[BackboneLink], list[str]]:
    """Split random backbone links in two around new pass-through routers.

    Both halves inherit the original bandwidth and connection cap, so
    route bottleneck values are unchanged; the only effect is longer
    router paths, which exercises multi-hop routing code paths.
    """
    links = list(links)
    routers = list(routers)
    for idx in range(n_extra):
        pos = int(rng.integers(len(links)))
        victim = links.pop(pos)
        mid = f"X{idx}"
        routers.append(mid)
        links.append(
            BackboneLink(
                name=f"{victim.name}:a",
                ends=(victim.ends[0], mid),
                bw=victim.bw,
                max_connect=victim.max_connect,
            )
        )
        links.append(
            BackboneLink(
                name=f"{victim.name}:b",
                ends=(mid, victim.ends[1]),
                bw=victim.bw,
                max_connect=victim.max_connect,
            )
        )
    return links, routers


# ----------------------------------------------------------------------
# Deterministic preset topologies (tests, examples, docs)
# ----------------------------------------------------------------------
def star_platform(
    n_leaves: int,
    hub_speed: float = 100.0,
    leaf_speed: float = 100.0,
    g: float = 100.0,
    bw: float = 10.0,
    max_connect: int = 4,
) -> Platform:
    """Hub-and-spoke platform: cluster 0 is the hub, others are leaves.

    All leaf routers connect to the hub router by one backbone link each.
    """
    if n_leaves < 1:
        raise PlatformError("star platform needs at least one leaf")
    routers = [f"R{k}" for k in range(n_leaves + 1)]
    clusters = [Cluster("hub", hub_speed, g, "R0")]
    clusters += [
        Cluster(f"leaf{k}", leaf_speed, g, f"R{k}") for k in range(1, n_leaves + 1)
    ]
    links = [
        BackboneLink(f"spoke{k}", ("R0", f"R{k}"), bw, max_connect)
        for k in range(1, n_leaves + 1)
    ]
    return Platform(clusters, routers, links)


def line_platform(
    n_clusters: int,
    speed: float = 100.0,
    g: float = 100.0,
    bw: float = 10.0,
    max_connect: int = 4,
) -> Platform:
    """Chain platform ``C0 - C1 - ... - C_{n-1}``.

    Routes between distant clusters traverse every intermediate backbone
    link, which makes connection-count contention easy to reason about in
    tests.
    """
    if n_clusters < 1:
        raise PlatformError("line platform needs at least one cluster")
    routers = [f"R{k}" for k in range(n_clusters)]
    clusters = [Cluster(f"C{k}", speed, g, f"R{k}") for k in range(n_clusters)]
    links = [
        BackboneLink(f"seg{k}", (f"R{k}", f"R{k + 1}"), bw, max_connect)
        for k in range(n_clusters - 1)
    ]
    return Platform(clusters, routers, links)


def fully_connected_platform(
    n_clusters: int,
    speeds: "Sequence[float] | float" = 100.0,
    g: "Sequence[float] | float" = 100.0,
    bw: float = 10.0,
    max_connect: int = 4,
) -> Platform:
    """Complete graph over cluster routers, optionally heterogeneous."""
    if n_clusters < 1:
        raise PlatformError("need at least one cluster")
    if isinstance(speeds, (int, float)):
        speeds = [float(speeds)] * n_clusters
    if isinstance(g, (int, float)):
        g = [float(g)] * n_clusters
    if len(speeds) != n_clusters or len(g) != n_clusters:
        raise PlatformError("speeds/g must have one entry per cluster")
    routers = [f"R{k}" for k in range(n_clusters)]
    clusters = [
        Cluster(f"C{k}", float(speeds[k]), float(g[k]), f"R{k}")
        for k in range(n_clusters)
    ]
    links = [
        BackboneLink(f"B{i}-{j}", (f"R{i}", f"R{j}"), bw, max_connect)
        for i in range(n_clusters)
        for j in range(i + 1, n_clusters)
    ]
    return Platform(clusters, routers, links)
