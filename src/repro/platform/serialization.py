"""JSON (de)serialization of platforms.

Platforms are plain data, so a JSON round-trip preserves them exactly up
to float representation. Explicit routing tables are serialized too,
which matters for the NP-hardness reduction whose routes are pinned by
construction rather than recomputed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.platform.cluster import Cluster
from repro.platform.links import BackboneLink
from repro.platform.routing import Route
from repro.platform.topology import Platform
from repro.util.errors import PlatformError

_FORMAT_VERSION = 1


def platform_to_dict(platform: Platform, include_routes: bool = True) -> dict:
    """Serialize ``platform`` into a JSON-compatible dictionary."""
    data: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "routers": sorted(platform.routers),
        "clusters": [
            {"name": c.name, "speed": c.speed, "g": c.g, "router": c.router}
            for c in platform.clusters
        ],
        "backbone_links": [
            {
                "name": link.name,
                "ends": list(link.ends),
                "bw": link.bw,
                "max_connect": link.max_connect,
            }
            for link in sorted(platform.links.values(), key=lambda li: li.name)
        ],
    }
    if include_routes:
        data["routes"] = [
            {
                "from": k,
                "to": l,
                "routers": list(platform.route(k, l).routers),
                "links": list(platform.route(k, l).links),
            }
            for (k, l) in platform.routed_pairs()
        ]
    return data


def platform_fingerprint(platform: Platform) -> str:
    """Content hash identifying a platform up to float representation.

    Two platforms with identical clusters, links and routing tables hash
    identically even when they are distinct objects (e.g. one was
    pickled across a process boundary, or both were loaded from the same
    file), which is what lets :class:`repro.api.Solver` share LP
    templates and variable indices across calls that pass equal-but-
    distinct platforms. The hash is memoised on the instance — platforms
    are immutable once built — so repeated lookups cost one dict probe.
    """
    try:
        memo = platform.__dict__
    except AttributeError:  # platform stand-in without a __dict__
        memo = None
    if memo is not None:
        cached = memo.get("_fingerprint_memo")
        if cached is not None:
            return cached
    payload = json.dumps(platform_to_dict(platform), sort_keys=True)
    digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()
    if memo is not None:
        memo["_fingerprint_memo"] = digest
    return digest


def platform_from_dict(data: dict) -> Platform:
    """Rebuild a :class:`Platform` from :func:`platform_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise PlatformError(f"unsupported platform format version {version!r}")
    clusters = [
        Cluster(
            name=c["name"], speed=float(c["speed"]), g=float(c["g"]), router=c["router"]
        )
        for c in data["clusters"]
    ]
    links = [
        BackboneLink(
            name=li["name"],
            ends=(li["ends"][0], li["ends"][1]),
            bw=float(li["bw"]),
            max_connect=int(li["max_connect"]),
        )
        for li in data["backbone_links"]
    ]
    links_by_name = {li.name: li for li in links}
    routes = None
    if "routes" in data:
        routes = {}
        for r in data["routes"]:
            link_path = tuple(r["links"])
            if link_path:
                bandwidth = min(links_by_name[name].bw for name in link_path)
                cap = min(links_by_name[name].max_connect for name in link_path)
            else:
                bandwidth = float("inf")
                cap = 0
            routes[(int(r["from"]), int(r["to"]))] = Route(
                routers=tuple(r["routers"]),
                links=link_path,
                bandwidth=bandwidth,
                connection_cap=cap,
            )
    return Platform(
        clusters=clusters,
        routers=data["routers"],
        backbone_links=links,
        routes=routes,
    )


def save_platform(platform: Platform, path: "str | Path") -> None:
    """Write ``platform`` to ``path`` as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(platform_to_dict(platform), indent=2, sort_keys=True)
    )


def load_platform(path: "str | Path") -> Platform:
    """Read a platform previously written by :func:`save_platform`."""
    return platform_from_dict(json.loads(Path(path).read_text()))
