"""The :class:`Platform` aggregate and residual-capacity bookkeeping.

A platform bundles clusters, routers, backbone links and the fixed
routing table. It is immutable after construction; algorithms that
consume capacity step by step (the greedy heuristic, LPRG's residual
phase) track their own mutable :class:`CapacityLedger` on top.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.platform.cluster import Cluster
from repro.platform.links import BackboneLink
from repro.platform.routing import Route, compute_routes
from repro.util.errors import PlatformError, RoutingError


class Platform:
    """A multi-cluster Grid platform (Section 2 of the paper).

    Parameters
    ----------
    clusters:
        Sequence of :class:`Cluster`; the position in the sequence is the
        cluster index ``k`` used everywhere else (``C^k``).
    routers:
        Names of all routers, including pass-through routers that no
        cluster is attached to.
    backbone_links:
        The wide-area links interconnecting routers.
    routes:
        Optional explicit routing table ``(k, l) -> Route``. When omitted
        the deterministic shortest-hop routing of
        :func:`repro.platform.routing.compute_routes` is used. Explicit
        tables let tests and the NP-hardness reduction pin exact paths.
    """

    def __init__(
        self,
        clusters: Sequence[Cluster],
        routers: Iterable[str],
        backbone_links: Iterable[BackboneLink],
        routes: "Mapping[tuple[int, int], Route] | None" = None,
    ):
        self.clusters: tuple[Cluster, ...] = tuple(clusters)
        self.routers: frozenset[str] = frozenset(routers)
        self.links: dict[str, BackboneLink] = {}
        for link in backbone_links:
            if link.name in self.links:
                raise PlatformError(f"duplicate backbone link name {link.name!r}")
            self.links[link.name] = link
        self._validate_structure()
        if routes is None:
            routes = compute_routes(
                [c.router for c in self.clusters], self.routers, self.links
            )
        else:
            routes = dict(routes)
            self._validate_routes(routes)
        self._routes: dict[tuple[int, int], Route] = dict(routes)
        self._routes_through: dict[str, tuple[tuple[int, int], ...]] = (
            self._index_routes_by_link()
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _validate_structure(self) -> None:
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise PlatformError(f"duplicate cluster names in {names}")
        for cluster in self.clusters:
            if cluster.router not in self.routers:
                raise PlatformError(
                    f"cluster {cluster.name!r} attached to unknown router "
                    f"{cluster.router!r}"
                )
        for link in self.links.values():
            for end in link.ends:
                if end not in self.routers:
                    raise PlatformError(
                        f"backbone link {link.name!r} references unknown router {end!r}"
                    )

    def _validate_routes(self, routes: Mapping[tuple[int, int], Route]) -> None:
        K = len(self.clusters)
        for (k, l), route in routes.items():
            if not (0 <= k < K and 0 <= l < K) or k == l:
                raise RoutingError(f"route key {(k, l)} is not a valid ordered pair")
            if route.routers[0] != self.clusters[k].router:
                raise RoutingError(
                    f"route {(k, l)} starts at {route.routers[0]!r}, expected "
                    f"{self.clusters[k].router!r}"
                )
            if route.routers[-1] != self.clusters[l].router:
                raise RoutingError(
                    f"route {(k, l)} ends at {route.routers[-1]!r}, expected "
                    f"{self.clusters[l].router!r}"
                )
            for name in route.links:
                if name not in self.links:
                    raise RoutingError(
                        f"route {(k, l)} uses unknown backbone link {name!r}"
                    )

    def _index_routes_by_link(self) -> dict[str, tuple[tuple[int, int], ...]]:
        through: dict[str, list[tuple[int, int]]] = {name: [] for name in self.links}
        for pair, route in self._routes.items():
            for name in route.links:
                through[name].append(pair)
        return {name: tuple(sorted(pairs)) for name, pairs in through.items()}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        """Number of clusters ``K``."""
        return len(self.clusters)

    @property
    def speeds(self) -> np.ndarray:
        """Vector of cluster speeds ``s_k`` (length ``K``)."""
        return np.array([c.speed for c in self.clusters], dtype=float)

    @property
    def local_capacities(self) -> np.ndarray:
        """Vector of local-link capacities ``g_k`` (length ``K``)."""
        return np.array([c.g for c in self.clusters], dtype=float)

    def cluster_index(self, name: str) -> int:
        """Index of the cluster called ``name``."""
        for k, cluster in enumerate(self.clusters):
            if cluster.name == name:
                return k
        raise PlatformError(f"no cluster named {name!r}")

    # ------------------------------------------------------------------
    # routing queries
    # ------------------------------------------------------------------
    def has_route(self, k: int, l: int) -> bool:
        """True when the fixed routing connects ``C^k`` to ``C^l``."""
        return (k, l) in self._routes

    def route(self, k: int, l: int) -> Route:
        """The fixed route ``L_{k,l}``; raises :class:`RoutingError` if absent."""
        try:
            return self._routes[(k, l)]
        except KeyError:
            raise RoutingError(
                f"no route from cluster {k} to cluster {l} (disconnected platform)"
            ) from None

    def routed_pairs(self) -> tuple[tuple[int, int], ...]:
        """All ordered cluster pairs ``(k, l)`` that have a route."""
        return tuple(sorted(self._routes))

    def route_bandwidth(self, k: int, l: int) -> float:
        """Per-connection bandwidth ``g_{k,l} = min_{li in L_{k,l}} bw(li)``."""
        return self.route(k, l).bandwidth

    def routes_through(self, link_name: str) -> tuple[tuple[int, int], ...]:
        """Ordered cluster pairs whose route traverses ``link_name``."""
        try:
            return self._routes_through[link_name]
        except KeyError:
            raise PlatformError(f"unknown backbone link {link_name!r}") from None

    # ------------------------------------------------------------------
    # dunder / reporting
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Platform(K={self.n_clusters}, routers={len(self.routers)}, "
            f"backbones={len(self.links)}, routes={len(self._routes)})"
        )

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [repr(self)]
        for k, c in enumerate(self.clusters):
            lines.append(
                f"  C^{k} {c.name!r}: s={c.speed:g} g={c.g:g} router={c.router!r}"
            )
        for link in sorted(self.links.values(), key=lambda li: li.name):
            lines.append(
                f"  link {link.name!r}: {link.ends[0]!r}--{link.ends[1]!r} "
                f"bw={link.bw:g} max_connect={link.max_connect}"
            )
        return "\n".join(lines)


class CapacityLedger:
    """Mutable residual capacities on top of an immutable platform.

    Tracks what remains of every resource while an algorithm assigns
    load: residual speed per cluster, residual local-link capacity per
    cluster, residual connection count per backbone link. The ``commit``
    methods implement exactly the update rules of the greedy heuristic
    (Section 5.1, step 6).
    """

    #: absolute slack when checking float-resource exhaustion; matches the
    #: primal feasibility tolerance of the LP backends feeding the ledger
    TOL = 1e-6

    def __init__(self, platform: Platform):
        self.platform = platform
        self.speed = platform.speeds.copy()
        self.local = platform.local_capacities.copy()
        self.connections: dict[str, int] = {
            name: link.max_connect for name, link in platform.links.items()
        }

    # ------------------------------------------------------------------
    def can_open_connection(self, k: int, l: int) -> bool:
        """True if every backbone link on the route has a spare connection."""
        if not self.platform.has_route(k, l):
            return False
        return all(
            self.connections[name] >= 1 for name in self.platform.route(k, l).links
        )

    def remote_benefit(self, k: int, m: int) -> float:
        """``benefit_m = min{g_k, g_{k,m}, g_m, s_m}`` over residual values.

        Zero when no route exists or no connection can be opened.
        """
        if k == m:
            raise ValueError("remote_benefit requires k != m; use speed[k] locally")
        if not self.can_open_connection(k, m):
            return 0.0
        bw = self.platform.route_bandwidth(k, m)
        return max(
            0.0, min(self.local[k], bw, self.local[m], self.speed[m])
        )

    def local_cap(self, k: int) -> float:
        """Step-5 local allocation cap: the largest amount another
        application could have executed on ``C^k``.

        ``max_{m != k} min{g_k, g_{k,m}, g_m, s_k}`` over residual values,
        degenerating to the full residual speed when the maximum is zero
        or there is no other cluster (interpretation note 3 in DESIGN.md).
        """
        s_k = self.speed[k]
        best = 0.0
        for m in range(self.platform.n_clusters):
            if m == k or not self.platform.has_route(k, m):
                continue
            bw = self.platform.route_bandwidth(k, m)
            best = max(best, min(self.local[k], bw, self.local[m], s_k))
        if best <= self.TOL:
            return max(0.0, s_k)
        return max(0.0, best)

    # ------------------------------------------------------------------
    def commit_local(self, k: int, amount: float) -> None:
        """Consume ``amount`` units of local compute on ``C^k``."""
        self._consume_speed(k, amount)

    def commit_remote(self, k: int, l: int, amount: float) -> None:
        """Open one connection from ``C^k`` to ``C^l`` carrying ``amount``.

        Decrements the target speed, both local links, and one connection
        on every backbone link of the route (Section 5.1 step 6).
        """
        if not self.can_open_connection(k, l):
            raise PlatformError(
                f"no spare connection on route {k} -> {l}; cannot commit"
            )
        self._consume_speed(l, amount)
        self._consume_local(k, amount)
        self._consume_local(l, amount)
        for name in self.platform.route(k, l).links:
            self.connections[name] -= 1

    def charge_transfer(self, k: int, l: int, amount: float, n_connections: int) -> None:
        """Charge an externally computed allocation (LPR warm start).

        Unlike :meth:`commit_remote` this consumes ``n_connections``
        connections at once and does not insist they all be available one
        by one - but the residual may not go negative.
        """
        self._consume_speed(l, amount)
        self._consume_local(k, amount)
        self._consume_local(l, amount)
        if n_connections:
            for name in self.platform.route(k, l).links:
                self.connections[name] -= n_connections
                if self.connections[name] < 0:
                    raise PlatformError(
                        f"connection capacity of link {name!r} over-committed"
                    )

    # ------------------------------------------------------------------
    def _consume_speed(self, k: int, amount: float) -> None:
        if amount < -self.TOL:
            raise ValueError(f"negative allocation {amount}")
        if amount > self.speed[k] + self.TOL:
            raise PlatformError(
                f"cluster {k}: allocation {amount:g} exceeds residual speed "
                f"{self.speed[k]:g}"
            )
        self.speed[k] = max(0.0, self.speed[k] - amount)

    def _consume_local(self, k: int, amount: float) -> None:
        if amount > self.local[k] + self.TOL:
            raise PlatformError(
                f"cluster {k}: transfer {amount:g} exceeds residual local capacity "
                f"{self.local[k]:g}"
            )
        self.local[k] = max(0.0, self.local[k] - amount)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict snapshot (useful in tests and debugging)."""
        return {
            "speed": self.speed.copy(),
            "local": self.local.copy(),
            "connections": dict(self.connections),
        }

    def total_residual_speed(self) -> float:
        return float(np.sum(self.speed))

    def __repr__(self) -> str:
        used = sum(
            link.max_connect - self.connections[name]
            for name, link in self.platform.links.items()
        )
        return (
            f"CapacityLedger(residual_speed={self.total_residual_speed():g}, "
            f"connections_used={used})"
        )
