"""Named realistic testbed topologies.

The paper's future-work list (Section 7) starts with "we will simulate
platforms and application parameters that are measured from real-world
testbeds". These presets provide that: hand-built models of three
research platforms of the paper's era, with cluster speeds, access-link
capacities and backbone characteristics in realistic proportions (the
absolute unit is "load units per time unit" as everywhere else; only
relative values matter for scheduling, as the paper notes).

They are deliberately *models*, not measurements: the value is having
fixed, named, structurally-diverse topologies for examples, tests and
benchmarks, instead of only Table-1 random graphs.
"""

from __future__ import annotations

from repro.platform.cluster import Cluster, equivalent_star_speed
from repro.platform.links import BackboneLink
from repro.platform.topology import Platform
from repro.util.errors import PlatformError


def _site(name: str, workers: int, w_speed: float, w_bw: float,
          master: float, g: float, router: str) -> Cluster:
    speed = equivalent_star_speed(master, [w_speed] * workers, [w_bw] * workers)
    return Cluster(name, speed=speed, g=g, router=router)


def grid5000_like() -> Platform:
    """A Grid'5000-flavoured platform: 9 sites on a national backbone.

    Sites are collapsed star clusters of different sizes; the backbone
    mirrors Renater's ring-plus-chords shape, with generous per-flow
    bandwidth but bounded connection budgets.
    """
    sites = {
        # name: (workers, worker speed, worker bw, master, g)
        "grenoble": (96, 2.0, 4.0, 8.0, 350.0),
        "lyon": (56, 2.2, 4.0, 8.0, 300.0),
        "paris": (128, 1.8, 3.0, 10.0, 450.0),
        "rennes": (99, 2.0, 4.0, 8.0, 380.0),
        "sophia": (72, 2.1, 4.0, 8.0, 320.0),
        "toulouse": (57, 2.0, 4.0, 6.0, 260.0),
        "bordeaux": (48, 2.4, 5.0, 6.0, 250.0),
        "lille": (53, 1.9, 3.5, 6.0, 240.0),
        "nancy": (47, 2.3, 4.5, 6.0, 230.0),
    }
    clusters = [
        _site(name, *params, router=f"rtr-{name}")
        for name, params in sites.items()
    ]
    routers = [f"rtr-{name}" for name in sites]
    ring = ["paris", "lille", "nancy", "lyon", "grenoble", "sophia",
            "toulouse", "bordeaux", "rennes"]
    links = [
        BackboneLink(
            f"renater-{a}-{b}", (f"rtr-{a}", f"rtr-{b}"), bw=35.0, max_connect=16
        )
        for a, b in zip(ring, ring[1:] + ring[:1])
    ]
    # Chords through Paris and Lyon (the real topology is star-ish).
    for spoke in ("lyon", "rennes", "toulouse"):
        links.append(
            BackboneLink(
                f"renater-paris-{spoke}", ("rtr-paris", f"rtr-{spoke}"),
                bw=45.0, max_connect=24,
            )
        )
    return Platform(clusters, routers, links)


def das2_like() -> Platform:
    """A DAS-2-flavoured platform: 5 Dutch sites, one fat university net."""
    sites = {
        "vu": (72, 2.0, 6.0, 8.0, 400.0),
        "leiden": (32, 2.0, 6.0, 6.0, 280.0),
        "nikhef": (32, 2.0, 6.0, 6.0, 280.0),
        "delft": (32, 2.0, 6.0, 6.0, 280.0),
        "utrecht": (32, 2.0, 6.0, 6.0, 280.0),
    }
    clusters = [
        _site(name, *params, router=f"rtr-{name}") for name, params in sites.items()
    ]
    routers = [f"rtr-{name}" for name in sites] + ["rtr-surfnet"]
    links = [
        BackboneLink(
            f"surfnet-{name}", (f"rtr-{name}", "rtr-surfnet"), bw=60.0, max_connect=32
        )
        for name in sites
    ]
    return Platform(clusters, routers, links)


def intercontinental_grid() -> Platform:
    """Three continents behind long, thin, connection-limited pipes.

    The stress-test preset: abundant compute everywhere, but transfers
    must cross oceans where per-connection bandwidth and the connection
    budget are both scarce — the regime where the choice of heuristic
    matters most.
    """
    sites = {
        "chicago": (256, 2.0, 3.0, 12.0, 500.0),
        "amsterdam": (128, 2.2, 3.5, 10.0, 400.0),
        "tokyo": (96, 2.5, 4.0, 8.0, 300.0),
        "sydney": (48, 2.0, 3.0, 6.0, 200.0),
    }
    clusters = [
        _site(name, *params, router=f"rtr-{name}") for name, params in sites.items()
    ]
    routers = [f"rtr-{name}" for name in sites]
    links = [
        BackboneLink("atlantic", ("rtr-chicago", "rtr-amsterdam"), bw=8.0, max_connect=6),
        BackboneLink("pacific", ("rtr-chicago", "rtr-tokyo"), bw=6.0, max_connect=4),
        BackboneLink("asia-oceania", ("rtr-tokyo", "rtr-sydney"), bw=4.0, max_connect=3),
        BackboneLink("eurasia", ("rtr-amsterdam", "rtr-tokyo"), bw=5.0, max_connect=4),
    ]
    return Platform(clusters, routers, links)


PRESETS = {
    "grid5000": grid5000_like,
    "das2": das2_like,
    "intercontinental": intercontinental_grid,
}


def get_preset(name: str) -> Platform:
    """Build a named preset platform.

    >>> get_preset("das2").n_clusters
    5
    """
    try:
        return PRESETS[name.lower()]()
    except KeyError:
        raise PlatformError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
