"""Fixed inter-cluster routing (Section 2).

The paper assumes routing between clusters is *fixed*: the routing table
contains an ordered list ``L_{k,l}`` of backbone links for a connection
from ``C^k`` to ``C^l``. We realise this with deterministic shortest-hop
paths over the router graph: among all hop-minimal paths the
lexicographically smallest router sequence is chosen, so the same
platform always yields the same routing table regardless of dict
ordering or hash randomisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.platform.links import BackboneLink
from repro.util.errors import RoutingError


@dataclass(frozen=True, slots=True)
class Route:
    """An ordered backbone path between two cluster routers.

    Attributes
    ----------
    routers:
        Router sequence, starting at the source cluster's router and
        ending at the destination cluster's router.
    links:
        Names of the backbone links traversed, in order (``L_{k,l}``).
    bandwidth:
        Per-connection bandwidth of the route: ``min_{l in links} bw(l)``.
    connection_cap:
        Static cap on connections: ``min_{l in links} max_connect(l)``.
    """

    routers: tuple[str, ...]
    links: tuple[str, ...]
    bandwidth: float
    connection_cap: int

    def __post_init__(self):
        if len(self.routers) != len(self.links) + 1:
            raise RoutingError(
                f"route has {len(self.routers)} routers but {len(self.links)} links"
            )

    def __len__(self) -> int:
        return len(self.links)

    def reversed(self) -> "Route":
        """The same physical path traversed in the opposite direction."""
        return Route(
            routers=tuple(reversed(self.routers)),
            links=tuple(reversed(self.links)),
            bandwidth=self.bandwidth,
            connection_cap=self.connection_cap,
        )


def _adjacency(
    routers: Iterable[str], links: Mapping[str, BackboneLink]
) -> dict[str, list[tuple[str, str]]]:
    """Sorted adjacency lists: router -> [(neighbour, link_name)]."""
    adj: dict[str, list[tuple[str, str]]] = {r: [] for r in routers}
    for link in links.values():
        a, b = link.ends
        if a not in adj or b not in adj:
            raise RoutingError(
                f"backbone link {link.name!r} references unknown router in {link.ends}"
            )
        adj[a].append((b, link.name))
        adj[b].append((a, link.name))
    for neighbours in adj.values():
        neighbours.sort()
    return adj


def shortest_paths_from(
    source: str,
    routers: Iterable[str],
    links: Mapping[str, BackboneLink],
) -> dict[str, tuple[tuple[str, ...], tuple[str, ...]]]:
    """Deterministic hop-minimal paths from ``source`` to every router.

    Returns a mapping ``dest -> (router_path, link_path)``. Among equal
    hop counts the lexicographically smallest predecessor router (then
    link name) wins, making results independent of iteration order.
    """
    adj = _adjacency(routers, links)
    if source not in adj:
        raise RoutingError(f"unknown source router {source!r}")

    dist: dict[str, int] = {source: 0}
    # predecessor: dest -> (router, link_name), chosen lexicographically.
    pred: dict[str, tuple[str, str]] = {}
    frontier = [source]
    while frontier:
        # Process the frontier in sorted order so that predecessor
        # assignment is deterministic.
        frontier.sort()
        next_frontier: list[str] = []
        for u in frontier:
            for v, link_name in adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    pred[v] = (u, link_name)
                    next_frontier.append(v)
                elif dist[v] == dist[u] + 1 and (u, link_name) < pred.get(v, ("￿", "")):
                    pred[v] = (u, link_name)
        frontier = next_frontier

    out: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {}
    for dest in dist:
        router_path: list[str] = [dest]
        link_path: list[str] = []
        node = dest
        while node != source:
            prev, link_name = pred[node]
            link_path.append(link_name)
            router_path.append(prev)
            node = prev
        out[dest] = (tuple(reversed(router_path)), tuple(reversed(link_path)))
    return out


def build_route(
    router_path: Sequence[str],
    link_path: Sequence[str],
    links: Mapping[str, BackboneLink],
) -> Route:
    """Assemble a :class:`Route`, computing its bandwidth and connection cap."""
    if link_path:
        bandwidth = min(links[name].bw for name in link_path)
        cap = min(links[name].max_connect for name in link_path)
    else:
        # Degenerate same-router route: no backbone constraint applies.
        bandwidth = float("inf")
        cap = 0
    return Route(
        routers=tuple(router_path),
        links=tuple(link_path),
        bandwidth=bandwidth,
        connection_cap=cap,
    )


def compute_routes(
    cluster_routers: Sequence[str],
    routers: Iterable[str],
    links: Mapping[str, BackboneLink],
) -> dict[tuple[int, int], Route]:
    """Fixed routing table for every ordered cluster pair with a path.

    Parameters
    ----------
    cluster_routers:
        ``cluster_routers[k]`` is the router of cluster ``k``.
    routers, links:
        The full router set and backbone links.

    Returns
    -------
    dict
        ``(k, l) -> Route`` for all ordered pairs ``k != l`` whose routers
        are connected. Pairs in different components are absent. Two
        clusters attached to the *same* router get an empty route with
        infinite bandwidth (intra-site transfer, constrained only by the
        local links).
    """
    router_list = list(routers)
    routes: dict[tuple[int, int], Route] = {}
    # BFS once per *distinct* source router, then fan out to clusters.
    by_router: dict[str, list[int]] = {}
    for k, r in enumerate(cluster_routers):
        by_router.setdefault(r, []).append(k)
    for src_router, sources in by_router.items():
        paths = shortest_paths_from(src_router, router_list, links)
        for l, dst_router in enumerate(cluster_routers):
            if dst_router not in paths:
                continue
            router_path, link_path = paths[dst_router]
            for k in sources:
                if k == l:
                    continue
                if src_router == dst_router:
                    routes[(k, l)] = Route(
                        routers=(src_router,),
                        links=(),
                        bandwidth=float("inf"),
                        connection_cap=0,
                    )
                else:
                    routes[(k, l)] = build_route(router_path, link_path, links)
    return routes
