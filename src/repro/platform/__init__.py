"""Platform substrate: the paper's Section-2 network/application model.

A :class:`~repro.platform.topology.Platform` is a collection of clusters
(front-end speed ``s_k`` + local serial link ``g_k``) attached to routers
that are interconnected by backbone links (per-connection bandwidth
``bw`` + connection cap ``max-connect``), with fixed shortest-hop routing
between every pair of clusters.
"""

from repro.platform.links import BackboneLink, LocalLink
from repro.platform.cluster import Cluster
from repro.platform.routing import Route, compute_routes
from repro.platform.topology import Platform, CapacityLedger
from repro.platform.generator import (
    PlatformSpec,
    generate_platform,
    star_platform,
    line_platform,
    fully_connected_platform,
)
from repro.platform.serialization import (
    platform_to_dict,
    platform_from_dict,
    platform_fingerprint,
    save_platform,
    load_platform,
)
from repro.platform.presets import PRESETS, get_preset

__all__ = [
    "BackboneLink",
    "LocalLink",
    "Cluster",
    "Route",
    "compute_routes",
    "Platform",
    "CapacityLedger",
    "PlatformSpec",
    "generate_platform",
    "star_platform",
    "line_platform",
    "fully_connected_platform",
    "platform_to_dict",
    "platform_from_dict",
    "platform_fingerprint",
    "save_platform",
    "load_platform",
    "PRESETS",
    "get_preset",
]
