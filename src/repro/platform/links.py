"""Link types of the platform model (Section 2 of the paper).

Two kinds of links with *different bandwidth-sharing semantics*:

* :class:`BackboneLink` - a wide-area link. Every connection routed over
  it receives a fixed bandwidth ``bw`` (TCP flows on a backbone each get
  the same share), up to ``max_connect`` simultaneous connections in both
  directions combined, after which no further connection may be opened.
* :class:`LocalLink` - the serial link between a cluster's front-end and
  its router. Flows *share* the capacity: the sum of their rates may not
  exceed ``capacity`` (= ``g_k`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import PlatformError


@dataclass(frozen=True, slots=True)
class BackboneLink:
    """An internet backbone link between two routers.

    Parameters
    ----------
    name:
        Unique identifier within a platform.
    ends:
        Names of the two routers joined by the link (unordered).
    bw:
        Bandwidth granted to *each* connection (load units / time unit).
    max_connect:
        Maximum number of connections (both directions combined) that the
        divisible-load applications may open on this link.
    """

    name: str
    ends: tuple[str, str]
    bw: float
    max_connect: int

    def __post_init__(self):
        if self.bw < 0:
            raise PlatformError(f"backbone link {self.name!r}: negative bw {self.bw}")
        if self.max_connect < 0:
            raise PlatformError(
                f"backbone link {self.name!r}: negative max_connect {self.max_connect}"
            )
        if len(self.ends) != 2 or self.ends[0] == self.ends[1]:
            raise PlatformError(
                f"backbone link {self.name!r}: must join two distinct routers, got {self.ends}"
            )

    def joins(self, a: str, b: str) -> bool:
        """True when the link joins routers ``a`` and ``b`` (either order)."""
        return {a, b} == set(self.ends)

    @property
    def total_bandwidth(self) -> float:
        """Aggregate bandwidth if every allowed connection is opened."""
        return self.bw * self.max_connect


@dataclass(frozen=True, slots=True)
class LocalLink:
    """The serial cluster <-> router link with shared bandwidth ``g_k``.

    Several connections may share the link; each receives a portion of
    the capacity and the portions sum to at most ``capacity``.
    """

    name: str
    capacity: float

    def __post_init__(self):
        if self.capacity < 0:
            raise PlatformError(
                f"local link {self.name!r}: negative capacity {self.capacity}"
            )
