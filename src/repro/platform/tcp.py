"""RTT-aware per-connection bandwidth (the paper's Section-7 refinement).

The paper's model grants each backbone connection a fixed bandwidth
``bw(li)``. Its future-work list proposes "an even more realistic
network model, which would include link latencies [and] TCP bandwidth
sharing behaviors according to round-trip times". This module implements
that refinement in the standard flow-level form:

    tcp_rate(route) = min( window / rtt(route),  min_li bw(li) )

i.e. a TCP connection is *window-limited* on long fat paths (its steady
throughput is the congestion-window size divided by the round-trip time
— the classic bandwidth-delay-product argument) and *capacity-limited*
otherwise. ``rtt(route) = 2 * sum(latency(li))``.

Because program (7) only consumes a route's *per-connection bandwidth*,
the refinement plugs into everything — LP, heuristics, schedules,
simulator — by re-deriving routes with :func:`apply_tcp_model`; no other
code changes. The E12 ablation benchmark measures how rankings shift
when latency awareness is turned on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.platform.routing import Route
from repro.platform.topology import Platform
from repro.util.errors import PlatformError


@dataclass(frozen=True, slots=True)
class TcpModel:
    """Window-limited TCP throughput model.

    Parameters
    ----------
    window:
        Effective congestion-window size in load units; a connection's
        rate over a route with round-trip time ``rtt`` is capped at
        ``window / rtt``.
    default_latency:
        One-way latency assumed for links absent from ``latencies``.
    latencies:
        Per-backbone-link one-way latency (time units), keyed by link
        name.
    """

    window: float
    default_latency: float = 0.0
    latencies: "Mapping[str, float] | None" = None

    def __post_init__(self):
        if self.window <= 0:
            raise PlatformError(f"TCP window must be positive, got {self.window}")
        if self.default_latency < 0:
            raise PlatformError(
                f"negative default latency {self.default_latency}"
            )
        if self.latencies is not None:
            for name, value in self.latencies.items():
                if value < 0:
                    raise PlatformError(f"negative latency for link {name!r}")

    def latency(self, link_name: str) -> float:
        """One-way latency of one backbone link."""
        if self.latencies is not None and link_name in self.latencies:
            return float(self.latencies[link_name])
        return self.default_latency

    def rtt(self, route: Route) -> float:
        """Round-trip time of a route (2x the summed one-way latencies)."""
        return 2.0 * sum(self.latency(name) for name in route.links)

    def connection_bandwidth(self, route: Route) -> float:
        """Per-connection rate: min(window/rtt, bottleneck bw)."""
        if not route.links:
            return route.bandwidth  # same-router: no TCP path at all
        rtt = self.rtt(route)
        if rtt <= 0:
            return route.bandwidth
        return min(route.bandwidth, self.window / rtt)


def apply_tcp_model(platform: Platform, model: TcpModel) -> Platform:
    """A copy of ``platform`` whose route bandwidths follow ``model``.

    The returned platform has identical clusters, routers, links and
    paths; only each route's per-connection ``bandwidth`` is re-derived.
    All schedulers operate on it unchanged.
    """
    new_routes = {}
    for (k, l) in platform.routed_pairs():
        route = platform.route(k, l)
        new_routes[(k, l)] = Route(
            routers=route.routers,
            links=route.links,
            bandwidth=model.connection_bandwidth(route),
            connection_cap=route.connection_cap,
        )
    return Platform(
        clusters=platform.clusters,
        routers=platform.routers,
        backbone_links=list(platform.links.values()),
        routes=new_routes,
    )
