"""Cluster abstraction (Section 2).

Divisible-load theory shows that a star- or tree-structured cluster is
*equivalent* to a single processor [Bataineh et al. 1994; Barlas 1998],
so each cluster is characterised by exactly two scalars: its cumulated
speed ``s_k`` and the capacity ``g_k`` of the serial link that connects
its front-end to its router.  :func:`equivalent_star_speed` implements
the classical reduction used to derive ``s_k`` from a concrete star
cluster, so users with per-node inventories can collapse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.platform.links import LocalLink
from repro.util.errors import PlatformError


@dataclass(frozen=True, slots=True)
class Cluster:
    """A cluster reduced to its equivalent front-end processor.

    Parameters
    ----------
    name:
        Unique cluster identifier (``C^k`` in the paper).
    speed:
        Cumulated computing speed ``s_k`` (load units / time unit).
    g:
        Capacity of the serial cluster <-> router link (``g_k``).
    router:
        Name of the router this cluster's front-end is attached to.
    """

    name: str
    speed: float
    g: float
    router: str

    def __post_init__(self):
        if self.speed < 0:
            raise PlatformError(f"cluster {self.name!r}: negative speed {self.speed}")
        if self.g < 0:
            raise PlatformError(f"cluster {self.name!r}: negative local capacity {self.g}")

    @property
    def local_link(self) -> LocalLink:
        """The shared serial link between front-end and router."""
        return LocalLink(name=f"local:{self.name}", capacity=self.g)


def equivalent_star_speed(
    master_speed: float,
    worker_speeds: Sequence[float],
    worker_bandwidths: Sequence[float],
) -> float:
    """Collapse a star cluster into a single equivalent speed.

    Steady-state divisible-load theory for a star network [Banino et al.
    2004]: the master can compute at ``master_speed`` and simultaneously
    feed each worker ``i`` at most ``min(worker_speed_i, bandwidth_i)``
    load units per time unit (a worker cannot compute faster than data
    arrives). Because the front-end serialises nothing internally in the
    steady-state model (one-port constraints are absorbed in the local
    link ``g_k``), the equivalent speed is the sum of these rates.

    Parameters
    ----------
    master_speed:
        Computing speed of the front-end itself.
    worker_speeds, worker_bandwidths:
        Per-worker computing speed and link bandwidth from the front-end.
    """
    if len(worker_speeds) != len(worker_bandwidths):
        raise PlatformError(
            "worker_speeds and worker_bandwidths must have the same length"
        )
    if master_speed < 0 or any(s < 0 for s in worker_speeds) or any(
        b < 0 for b in worker_bandwidths
    ):
        raise PlatformError("speeds and bandwidths must be non-negative")
    return float(master_speed) + float(
        sum(min(s, b) for s, b in zip(worker_speeds, worker_bandwidths))
    )
