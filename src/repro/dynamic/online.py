"""Online steady-state re-scheduling over a live :class:`LPSession`.

The static pipeline solves program (7) once; this module keeps the
solution *current* while an :class:`~repro.dynamic.events.EventTrace`
perturbs the platform. The core observation (ROADMAP: "online
steady-state scheduling") is that almost every real-world event lands
in one of three LP-mutation classes, in increasing order of cost:

``"rhs"`` — **RHS-only fast path.** CPU drift rewrites the
    ``compute[k]`` row's RHS, local-capacity drift the ``local[k]``
    row's, node failure/recovery zeroes/restores both. One or two
    entries of ``b_ub`` change via :meth:`LPSession.set_rhs`; the
    carried basis stays structurally valid and the revised engine's
    dual simplex repairs it in a handful of pivots.

``"bounds"`` — **bound-only pin/release.** A backbone-link failure
    forbids every transfer routed through the link:
    :meth:`LPSession.fix_variable` pins the affected ``alpha``/``beta``
    variables to zero; recovery releases them back to their snapshotted
    boxes (:meth:`LPSession.release_variable`). No matrix row is
    touched. Overlapping failures are refcounted by recomputing the
    needed pin set from the currently-failed links, so a variable shared
    by two dead routes stays pinned until *both* recover.

``"structural"`` — **rebuild.** Application arrival/departure changes
    the payoff vector, and with it the maxmin linearisation row set (and
    the SUM objective coefficients) — a genuinely different program.
    The scheduler rebuilds through the :class:`~repro.lp.builder.
    LPBuildCache` (payoffs are part of the cache key, so churning
    between two application mixes hits the template cache) and starts
    fresh sessions; drifted RHS values and link pins are re-applied to
    the new instance.

**The oracle-equivalence guarantee.** Both the incremental session and
a from-scratch oracle session are attached to the *same* mutated
:class:`~repro.lp.builder.LPInstance`; after every event the oracle
solves it cold (``solve(warm_basis=None)``). Two mechanisms then make
warm == cold *bitwise*, not merely value-equal. First, full-column
vertex canonicalization (``LPSession(canon="all")``) weights every
structural column in the secondary objective, so a degenerate optimal
face — e.g. a failed node leaving surplus capacity free elsewhere —
still canonicalizes to a unique vertex (the default ``"betas"`` mode
leaves infinite-ub alpha directions unpinned). Second, the same vertex
can still be represented by *different bases*, whose ``B^{-1}b``
extractions differ at roundoff; a **support crossover**
(:meth:`OnlineScheduler._support_token`) re-derives one deterministic
basis from the reported point alone — strictly-between columns plus
positive slacks, rank-completed over tight-row slacks in index order —
and both sessions re-solve from that token, so the reported floats
depend only on (instance data, token): identical on both sides exactly
when both paths found the same vertex. One residual mode remains: two
optimal vertices whose primary *and* secondary objectives tie at
roundoff, which no objective-based canonicalization can separate. When
the own-token extractions disagree but the values agree to ``1e-9``
relative, both sessions re-extract through the *oracle's* support
token — the cold path is a pure function of the instance, so the
tie-break is deterministic across runs and modes; a warm path stuck at
a genuinely sub-optimal vertex fails the value check and records a
mismatch. ``record.oracle_match`` is then an exact ``==`` on solution
vectors — gated across every registered trace family by
``benchmarks/bench_online.py`` — and the oracle's pivot count is the
from-scratch baseline that prices the warm path's savings.

After each re-solve the new LP point is rounded down to a valid
allocation, scored, and (optionally) replayed through
``schedule``/``simulation`` on the *drifted* platform; the per-event
:class:`DisruptionRecord`\\ s aggregate into a :class:`DisruptionReport`
(time-to-reoptimize, iterations vs oracle, schedule churn, steady-state
throughput deficit).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.core.problem import SteadyStateProblem
from repro.dynamic.events import EventTrace, EventTraceError, PlatformEvent
from repro.dynamic.options import DynamicOptions
from repro.heuristics.lpr import round_down
from repro.lp.builder import (
    LPBuildCache,
    active_build_cache,
    build_lp,
    use_build_cache,
)
from repro.lp.session import Basis, LPSession
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import current_tracer
from repro.platform.cluster import Cluster
from repro.platform.topology import Platform
from repro.util.errors import SolverError

#: event -> LP-mutation classes (see module docstring)
CLASSIFICATIONS = ("rhs", "bounds", "structural")

#: churn denominators below this treat the allocation as empty
_CHURN_EPS = 1e-12

#: support classification tolerance for the crossover extraction —
#: coarse enough that the warm and oracle points (same vertex, roundoff
#: apart) always classify identically, fine enough to separate genuine
#: basic values from bound-resting ones on program-(7) scales
_SUPPORT_TOL = 1e-7

#: relative residual below which a candidate column is rank-redundant
_RANK_TOL = 1e-8


def _sha(*arrays: np.ndarray) -> str:
    digest = hashlib.sha256()
    for arr in arrays:
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class DisruptionRecord:
    """Everything measured about one applied event.

    ``oracle_match`` is the bitwise warm-vs-cold comparison (None when
    the oracle is disabled); ``solution_sha`` hashes the LP point so
    reports are comparable without carrying the vectors;
    ``throughput_deficit`` is the relative gap between the rounded
    allocation's objective and the (relaxed) LP bound after the event.
    """

    event: PlatformEvent
    classification: str
    warm_iterations: int
    oracle_iterations: "int | None"
    reoptimize_seconds: float
    value: float
    oracle_value: "float | None"
    oracle_match: "bool | None"
    solution_sha: str
    alloc_sha: str
    alloc_value: float
    throughput_deficit: float
    churn: float
    beta_changes: int
    simulated_value: "float | None"

    def to_dict(self) -> dict:
        return {
            "event": self.event.to_dict(),
            "classification": self.classification,
            "warm_iterations": self.warm_iterations,
            "oracle_iterations": self.oracle_iterations,
            "reoptimize_seconds": self.reoptimize_seconds,
            "value": self.value,
            "oracle_value": self.oracle_value,
            "oracle_match": self.oracle_match,
            "solution_sha": self.solution_sha,
            "alloc_sha": self.alloc_sha,
            "alloc_value": self.alloc_value,
            "throughput_deficit": self.throughput_deficit,
            "churn": self.churn,
            "beta_changes": self.beta_changes,
            "simulated_value": self.simulated_value,
        }

    def state_entry(self) -> dict:
        """The deterministic slice of :meth:`to_dict`: no wall-clock
        timing and no pivot counts (warm and cold runs must produce
        identical state dicts — that is the replay invariant)."""
        return {
            "event": self.event.to_dict(),
            "classification": self.classification,
            "value": self.value,
            "solution_sha": self.solution_sha,
            "alloc_sha": self.alloc_sha,
            "alloc_value": self.alloc_value,
            "throughput_deficit": self.throughput_deficit,
            "churn": self.churn,
            "beta_changes": self.beta_changes,
            "simulated_value": self.simulated_value,
        }


@dataclass(frozen=True)
class DisruptionReport:
    """Aggregate of one trace replay (see :meth:`summary`)."""

    trace: EventTrace
    records: "tuple[DisruptionRecord, ...]"
    initial_value: float
    initial_solution_sha: str

    def __post_init__(self):
        object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        warm = sum(r.warm_iterations for r in self.records)
        oracle_counts = [
            r.oracle_iterations
            for r in self.records
            if r.oracle_iterations is not None
        ]
        oracle = sum(oracle_counts) if oracle_counts else None
        by_class = {c: 0 for c in CLASSIFICATIONS}
        for record in self.records:
            by_class[record.classification] += 1
        matches = [r.oracle_match for r in self.records if r.oracle_match is not None]
        n = len(self.records)
        return {
            "n_events": n,
            "by_classification": by_class,
            "warm_iterations": warm,
            "oracle_iterations": oracle,
            "iteration_reduction": (
                1.0 - warm / oracle if oracle else None
            ),
            "all_oracle_match": all(matches) if matches else None,
            "mean_reoptimize_seconds": (
                sum(r.reoptimize_seconds for r in self.records) / n if n else 0.0
            ),
            "max_reoptimize_seconds": (
                max((r.reoptimize_seconds for r in self.records), default=0.0)
            ),
            "mean_churn": (
                sum(r.churn for r in self.records) / n if n else 0.0
            ),
            "mean_throughput_deficit": (
                sum(r.throughput_deficit for r in self.records) / n if n else 0.0
            ),
            "initial_value": self.initial_value,
            "final_value": (
                self.records[-1].value if self.records else self.initial_value
            ),
        }

    def state_dict(self) -> dict:
        """Deterministic replay fingerprint: identical for warm
        incremental runs, cold (``warm_start=False``) runs, and runs
        reconstructed from a saved trace JSON."""
        return {
            "version": 1,
            "initial_value": self.initial_value,
            "initial_solution_sha": self.initial_solution_sha,
            "records": [r.state_entry() for r in self.records],
        }

    def to_dict(self) -> dict:
        return {
            "trace": self.trace.to_dict(),
            "initial_value": self.initial_value,
            "initial_solution_sha": self.initial_solution_sha,
            "records": [r.to_dict() for r in self.records],
            "summary": self.summary(),
        }


class OnlineScheduler:
    """Keep a steady-state schedule optimal while events land on it.

    Parameters
    ----------
    problem:
        The initial (pre-drift) problem; its platform topology — routes
        and backbone links — is fixed for the whole run, while speeds,
        capacities, availability and payoffs evolve with the trace.
    options:
        :class:`DynamicOptions` (defaults apply when omitted).
    engine:
        Must be ``"revised"`` — the bitwise oracle contract relies on
        the full-program revised path (the tableau engine's presolve
        changes the program shape between solves, which breaks the
        shared basis-token coordinates the support crossover needs).
    warm_start:
        ``False`` makes every incremental re-solve start cold
        (``solve(warm_basis=None)``) while keeping the same session and
        extraction path, so warm and cold runs must (and do) produce
        identical :meth:`DisruptionReport.state_dict` fingerprints.
    max_iter:
        Forwarded to the underlying :class:`LPSession`.
    """

    def __init__(
        self,
        problem: SteadyStateProblem,
        options: "DynamicOptions | None" = None,
        engine: str = "revised",
        warm_start: bool = True,
        max_iter: int = 100_000,
    ):
        if options is None:
            options = DynamicOptions()
        if not isinstance(options, DynamicOptions):
            raise SolverError(
                f"options must be a DynamicOptions, got {options!r}"
            )
        if engine != "revised":
            raise SolverError(
                f'OnlineScheduler requires engine="revised", got {engine!r} '
                "(the bitwise oracle contract needs the full-program "
                "revised path; tableau presolve reshapes the program "
                "between solves)"
            )
        self.problem = problem
        self.options = options
        self.engine = engine
        self.warm_start = bool(warm_start)
        self.max_iter = int(max_iter)
        base = problem.platform
        self._base = base
        self._speeds = np.asarray(base.speeds, dtype=float).copy()
        self._g = np.asarray(base.local_capacities, dtype=float).copy()
        self._payoffs = np.asarray(problem.payoffs, dtype=float).copy()
        self._failed_nodes: set[int] = set()
        self._failed_links: set[str] = set()
        self._cache = active_build_cache() or LPBuildCache()
        self._records: list[DisruptionRecord] = []
        # Observability only: per-event re-optimization latency and churn
        # series. Never serialised into report state dicts (see the
        # determinism-invisibility contract in docs/architecture.md).
        self.metrics = MetricsRegistry()
        self._build_sessions()
        solution = self._extract(self._session, self._solve_incremental())
        self._solution = solution
        self._prev_alloc = round_down(self._current_problem(), solution)
        self.initial_value = float(solution.value)
        self.initial_solution_sha = _sha(solution.x)

    # ------------------------------------------------------------------
    # current dynamic state
    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """Objective value of the most recent re-solve."""
        return float(self._solution.value)

    @property
    def solution(self):
        """LP point of the most recent re-solve."""
        return self._solution

    @property
    def allocation(self) -> Allocation:
        """Rounded allocation of the most recent re-solve."""
        return self._prev_alloc

    @property
    def payoffs(self) -> np.ndarray:
        return self._payoffs.copy()

    @property
    def failed_links(self) -> "tuple[str, ...]":
        return tuple(sorted(self._failed_links))

    @property
    def failed_nodes(self) -> "tuple[int, ...]":
        return tuple(sorted(self._failed_nodes))

    @staticmethod
    def _merged(totals: dict, session: "LPSession | None") -> dict:
        out = dict(totals)
        if session is not None:
            for key, val in session.stats.as_dict().items():
                out[key] = out.get(key, 0) + val
        return out

    @property
    def session_stats(self) -> dict:
        """Lifetime counters of the incremental session(s) — totals
        survive structural rebuilds replacing the live session."""
        return self._merged(self._warm_totals, self._session)

    @property
    def oracle_stats(self) -> "dict | None":
        if self._oracle is None:
            return None
        return self._merged(self._oracle_totals, self._oracle)

    @property
    def platform(self) -> Platform:
        """The platform under the current drift/failure state."""
        return self._current_platform()

    def _effective_speeds(self) -> np.ndarray:
        s = self._speeds.copy()
        for k in self._failed_nodes:
            s[k] = 0.0
        return s

    def _effective_g(self) -> np.ndarray:
        g = self._g.copy()
        for k in self._failed_nodes:
            g[k] = 0.0
        return g

    def _current_platform(self) -> Platform:
        s = self._effective_speeds()
        g = self._effective_g()
        clusters = [
            Cluster(c.name, float(s[k]), float(g[k]), c.router)
            for k, c in enumerate(self._base.clusters)
        ]
        return Platform(
            clusters,
            self._base.routers,
            list(self._base.links.values()),
            routes={
                pair: self._base.route(*pair)
                for pair in self._base.routed_pairs()
            },
        )

    def _current_problem(self) -> SteadyStateProblem:
        return SteadyStateProblem(
            self._current_platform(), self._payoffs, self.problem.objective
        )

    # ------------------------------------------------------------------
    # session (re)construction
    # ------------------------------------------------------------------
    def _build_sessions(self) -> None:
        template = SteadyStateProblem(
            self._base, self._payoffs, self.problem.objective
        )
        with use_build_cache(self._cache):
            instance = build_lp(template)
            # Both sessions are *warm-capable* and share the mutated
            # instance. The oracle is made cold per call
            # (solve(warm_basis=None)) rather than per session
            # (warm_start=False) because the cold-reference path never
            # records a final basis — and the support crossover needs
            # warm re-solves from an explicit token on both sides.
            self._session = LPSession(
                instance,
                warm_start=True,
                max_iter=self.max_iter,
                engine=self.engine,
                canon="all",
            )
            self._oracle = (
                LPSession(
                    instance,
                    warm_start=True,
                    max_iter=self.max_iter,
                    engine=self.engine,
                    canon="all",
                )
                if self.options.check_oracle
                else None
            )
            self._A = self._cache.dense_matrix(instance)
        self._instance = instance
        if not hasattr(self, "_warm_totals"):
            self._warm_totals = self._session.stats.as_dict()
            self._oracle_totals = (
                self._oracle.stats.as_dict() if self._oracle else {}
            )
        # A rebuilt instance starts from the *base* platform's rows and
        # boxes; replay the accumulated drift/failure state onto it.
        K = self._base.n_clusters
        s = self._effective_speeds()
        g = self._effective_g()
        self._session.set_rhs(
            [instance.row_id(f"compute[{k}]") for k in range(K)], s
        )
        self._session.set_rhs(
            [instance.row_id(f"local[{k}]") for k in range(K)], g
        )
        self._sync_pins()

    def _accumulate_stats(self) -> None:
        """Fold the live sessions' counters into the lifetime totals
        (sessions are replaced wholesale on structural rebuilds)."""
        for totals, session in (
            (self._warm_totals, self._session),
            (self._oracle_totals, self._oracle),
        ):
            if session is None:
                continue
            for key, val in session.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + val
            session.stats.__init__()

    def _pinned_vars_needed(self) -> "set[int]":
        index = self._instance.index
        needed: set[int] = set()
        for name in self._failed_links:
            for (k, l) in self._base.routes_through(name):
                needed.add(index.alpha(k, l))
                if index.has_beta(k, l):
                    needed.add(index.beta(k, l))
        return needed

    def _sync_pins(self) -> None:
        """Reconcile the session's pinned set with the failed-link set."""
        needed = self._pinned_vars_needed()
        current = set(self._session.pinned_variables)
        for var in sorted(needed - current):
            self._session.fix_variable(var, 0.0)
        for var in sorted(current - needed):
            self._session.release_variable(var)

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def _check_cluster(self, event: PlatformEvent) -> int:
        k = int(event.target)
        if k >= self._base.n_clusters:
            raise EventTraceError(
                f"{event.kind} targets cluster {k} but the platform has "
                f"{self._base.n_clusters} clusters"
            )
        return k

    def _apply(self, event: PlatformEvent) -> str:
        kind = event.kind
        inst = self._instance
        if kind == "cpu-drift":
            k = self._check_cluster(event)
            self._speeds[k] *= float(event.factor)
            if k not in self._failed_nodes:
                self._session.set_rhs(
                    [inst.row_id(f"compute[{k}]")], self._speeds[k]
                )
            return "rhs"
        if kind == "bw-drift":
            k = self._check_cluster(event)
            self._g[k] *= float(event.factor)
            if k not in self._failed_nodes:
                self._session.set_rhs(
                    [inst.row_id(f"local[{k}]")], self._g[k]
                )
            return "rhs"
        if kind == "node-fail":
            k = self._check_cluster(event)
            if k in self._failed_nodes:
                raise EventTraceError(f"node-fail: cluster {k} is already down")
            self._failed_nodes.add(k)
            self._session.set_rhs(
                [inst.row_id(f"compute[{k}]"), inst.row_id(f"local[{k}]")],
                [0.0, 0.0],
            )
            return "rhs"
        if kind == "node-recover":
            k = self._check_cluster(event)
            if k not in self._failed_nodes:
                raise EventTraceError(f"node-recover: cluster {k} is not down")
            self._failed_nodes.discard(k)
            self._session.set_rhs(
                [inst.row_id(f"compute[{k}]"), inst.row_id(f"local[{k}]")],
                [self._speeds[k], self._g[k]],
            )
            return "rhs"
        if kind == "link-fail":
            name = str(event.target)
            if name not in self._base.links:
                raise EventTraceError(f"link-fail: unknown backbone link {name!r}")
            if name in self._failed_links:
                raise EventTraceError(f"link-fail: link {name!r} is already down")
            self._failed_links.add(name)
            self._sync_pins()
            return "bounds"
        if kind == "link-recover":
            name = str(event.target)
            if name not in self._failed_links:
                raise EventTraceError(f"link-recover: link {name!r} is not down")
            self._failed_links.discard(name)
            self._sync_pins()
            return "bounds"
        if kind == "app-arrive":
            k = self._check_cluster(event)
            if self._payoffs[k] > 0.0:
                raise EventTraceError(
                    f"app-arrive: cluster {k} already hosts a live application"
                )
            self._payoffs[k] = float(event.payoff)
            self._accumulate_stats()
            self._build_sessions()
            return "structural"
        if kind == "app-depart":
            k = self._check_cluster(event)
            if self._payoffs[k] <= 0.0:
                raise EventTraceError(
                    f"app-depart: cluster {k} has no live application"
                )
            self._payoffs[k] = 0.0
            self._accumulate_stats()
            self._build_sessions()
            return "structural"
        raise EventTraceError(f"unknown event kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # canonical extraction (support crossover)
    # ------------------------------------------------------------------
    def _solve_incremental(self):
        """One re-solve of the incremental session: carried-basis warm
        when ``self.warm_start``, per-call cold otherwise (same session,
        same extraction — only the starting basis differs)."""
        if self.warm_start:
            return self._session.solve()
        return self._session.solve(warm_basis=None)

    def _support_token(self, x: np.ndarray) -> "Basis | None":
        """Derive a deterministic basis token from a reported LP point.

        Forced-basic columns are the structural variables strictly
        between their bounds and the slacks of non-tight rows; the
        remaining slots are filled by greedy rank completion over
        tight-row slacks in row order (Gram-Schmidt residual test —
        slack columns span everything, so completion always reaches
        ``m`` at a vertex). The token is a function of (A, bounds,
        support classification) only, and the classification tolerance
        is orders of magnitude above the roundoff separating the warm
        and oracle reports of one vertex — so both sides derive the
        *same* token, and re-solving from it reproduces bit-identical
        floats. Returns ``None`` when the point is not a vertex (a
        HiGHS-fallback interior report): the caller then keeps the raw
        solution.
        """
        inst = self._instance
        A = self._A
        m, n = A.shape
        slack = inst.b_ub - A @ x
        forced = [
            ("x", j)
            for j in range(n)
            if inst.lb[j] + _SUPPORT_TOL < x[j] < inst.ub[j] - _SUPPORT_TOL
        ]
        forced += [("r", i) for i in range(m) if slack[i] > _SUPPORT_TOL]
        if len(forced) > m:
            return None
        basis_q = np.zeros((m, m))
        rank = 0

        def absorb(col: np.ndarray) -> bool:
            nonlocal rank
            resid = col - basis_q[:, :rank] @ (basis_q[:, :rank].T @ col)
            norm = float(np.linalg.norm(resid))
            if norm > _RANK_TOL * max(1.0, float(np.linalg.norm(col))):
                basis_q[:, rank] = resid / norm
                rank += 1
                return True
            return False

        def unit(i: int) -> np.ndarray:
            e = np.zeros(m)
            e[i] = 1.0
            return e

        keys: list[tuple] = []
        for kind, ident in forced:
            col = A[:, ident].astype(float) if kind == "x" else unit(ident)
            if not absorb(col):
                return None  # dependent forced columns: not a vertex
            keys.append((kind, ident))
        have = set(keys)
        for i in range(m):
            if rank == m:
                break
            if ("r", i) not in have and absorb(unit(i)):
                keys.append(("r", i))
                have.add(("r", i))
        if rank < m:  # pragma: no cover - slacks always complete
            return None
        at_upper = [
            j
            for j in range(n)
            if ("x", j) not in have
            and np.isfinite(inst.ub[j])
            and inst.ub[j] - inst.lb[j] > _SUPPORT_TOL
            and abs(x[j] - inst.ub[j]) <= _SUPPORT_TOL
        ]
        return Basis(keys, at_upper)

    def _extract(self, session: LPSession, solution):
        """Re-solve from the point's own support token (see module
        docstring, "support crossover"). Zero to a few degenerate
        pivots; the resulting floats are trajectory-independent."""
        token = self._support_token(solution.x)
        if token is None:
            return solution
        return session.solve(warm_basis=token)

    # ------------------------------------------------------------------
    def step(self, event: PlatformEvent) -> DisruptionRecord:
        """Apply one event, re-solve incrementally, measure everything."""
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("event", kind=event.kind, time=event.time) as span:
                record = self._step(event)
                span.set(
                    classification=record.classification,
                    warm_iterations=record.warm_iterations,
                    churn=record.churn,
                )
        else:
            record = self._step(event)
        self.metrics.counter(
            "repro_online_events_total",
            help="Events applied, by classification.",
            labels={"classification": record.classification},
        ).inc()
        self.metrics.histogram(
            "repro_online_reoptimize_seconds",
            help="Per-event incremental re-optimization latency.",
            lo=0.0,
            hi=1.0,
            n_bins=64,
        ).observe(record.reoptimize_seconds)
        self.metrics.histogram(
            "repro_online_churn",
            help="Per-event allocation churn (relative L1 drift).",
            lo=0.0,
            hi=2.0,
            n_bins=64,
        ).observe(record.churn)
        return record

    def _step(self, event: PlatformEvent) -> DisruptionRecord:
        t0 = time.perf_counter()
        classification = self._apply(event)
        warm_before = self._session.stats.iterations
        solution = self._extract(self._session, self._solve_incremental())
        reoptimize_seconds = time.perf_counter() - t0
        warm_iterations = self._session.stats.iterations - warm_before

        oracle_iterations = oracle_value = oracle_match = None
        if self._oracle is not None:
            oracle_before = self._oracle.stats.iterations
            oracle_solution = self._extract(
                self._oracle, self._oracle.solve(warm_basis=None)
            )
            if not (
                solution.value == oracle_solution.value
                and np.array_equal(solution.x, oracle_solution.x)
            ) and (
                abs(solution.value - oracle_solution.value)
                <= 1e-9 * max(1.0, abs(oracle_solution.value))
            ):
                # Near-tie: two optimal vertices whose primary AND
                # generic secondary objectives tie at roundoff, so each
                # side's own support token keeps its own vertex. Break
                # the tie deterministically through the *oracle's*
                # canonical token — the cold path is a pure function of
                # the instance, so both runs of any mode re-extract
                # through the same token and land bit-identically. The
                # value agreement above (1e-9 relative) is what keeps
                # this a genuine check: a warm path stuck at a
                # sub-optimal vertex fails it and records a mismatch.
                tie_token = self._support_token(oracle_solution.x)
                if tie_token is not None:
                    solution = self._session.solve(warm_basis=tie_token)
                    oracle_solution = self._oracle.solve(
                        warm_basis=tie_token
                    )
            oracle_iterations = self._oracle.stats.iterations - oracle_before
            oracle_value = float(oracle_solution.value)
            oracle_match = bool(
                solution.value == oracle_solution.value
                and np.array_equal(solution.x, oracle_solution.x)
            )

        problem_now = self._current_problem()
        alloc = round_down(problem_now, solution)
        report = problem_now.check(alloc)
        if not report.ok:
            raise SolverError(
                f"online rounding produced an invalid allocation after "
                f"{event.kind} at t={event.time}: {report.violations[:3]}"
            )
        alloc_value = problem_now.objective_value(alloc)
        lp_value = float(solution.value)
        deficit = (
            max(0.0, 1.0 - alloc_value / lp_value) if lp_value > _CHURN_EPS else 0.0
        )

        prev = self._prev_alloc
        denom = max(
            float(np.abs(prev.alpha).sum()),
            float(np.abs(alloc.alpha).sum()),
            _CHURN_EPS,
        )
        churn = float(np.abs(alloc.alpha - prev.alpha).sum()) / denom
        beta_changes = int(np.count_nonzero(alloc.beta != prev.beta))

        simulated_value = None
        if self.options.replay and np.any(alloc.alpha):
            from repro.schedule.periodic import build_periodic_schedule
            from repro.simulation.engine import FlowSimulator

            schedule = build_periodic_schedule(
                problem_now.platform, alloc, denominator=self.options.denominator
            )
            result = FlowSimulator(problem_now.platform).run(
                schedule, n_periods=self.options.sim_periods
            )
            simulated_value = float(
                self.problem.objective.value(
                    result.achieved_throughputs(), self._payoffs
                )
            )

        record = DisruptionRecord(
            event=event,
            classification=classification,
            warm_iterations=int(warm_iterations),
            oracle_iterations=(
                int(oracle_iterations) if oracle_iterations is not None else None
            ),
            reoptimize_seconds=float(reoptimize_seconds),
            value=lp_value,
            oracle_value=oracle_value,
            oracle_match=oracle_match,
            solution_sha=_sha(solution.x),
            alloc_sha=_sha(alloc.alpha, alloc.beta),
            alloc_value=float(alloc_value),
            throughput_deficit=float(deficit),
            churn=churn,
            beta_changes=beta_changes,
            simulated_value=simulated_value,
        )
        self._records.append(record)
        self._solution = solution
        self._prev_alloc = alloc
        return record

    def run(self, trace: EventTrace) -> DisruptionReport:
        """Apply a whole trace in time order and aggregate the records."""
        if not isinstance(trace, EventTrace):
            raise SolverError(f"expected an EventTrace, got {trace!r}")
        records = [self.step(event) for event in trace]
        return DisruptionReport(
            trace=trace,
            records=tuple(records),
            initial_value=self.initial_value,
            initial_solution_sha=self.initial_solution_sha,
        )
