"""Online steady-state re-scheduling: dynamic platforms and app churn.

The seventh subsystem (see ``docs/architecture.md``): deterministic
:class:`EventTrace` timelines (drift, failure/recovery, application
churn) applied to a live schedule by an :class:`OnlineScheduler` that
classifies each event as RHS-only / bound-only / structural, re-solves
incrementally through the warm :class:`repro.lp.session.LPSession`
path, verifies every answer bitwise against a from-scratch oracle, and
replays the result through ``schedule``/``simulation`` into a
:class:`DisruptionReport`.
"""

from repro.dynamic.events import (
    EVENT_KINDS,
    EVENT_TRACE_VERSION,
    EventTrace,
    EventTraceError,
    PlatformEvent,
    churn_trace,
    drift_trace,
    failure_storm_trace,
)
from repro.dynamic.online import (
    CLASSIFICATIONS,
    DisruptionRecord,
    DisruptionReport,
    OnlineScheduler,
)
from repro.dynamic.options import DynamicOptions

__all__ = [
    "EVENT_KINDS",
    "EVENT_TRACE_VERSION",
    "CLASSIFICATIONS",
    "EventTrace",
    "EventTraceError",
    "PlatformEvent",
    "DynamicOptions",
    "DisruptionRecord",
    "DisruptionReport",
    "OnlineScheduler",
    "churn_trace",
    "drift_trace",
    "failure_storm_trace",
]
