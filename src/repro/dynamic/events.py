"""Deterministic platform/application event timelines for online runs.

The paper solves a *static* snapshot of program (7); a real Grid
drifts while the schedule is live: CPU speeds and local link
capacities wander, backbone links and whole clusters fail and come
back, applications arrive and depart. An :class:`EventTrace` is the
schema-validated, seed-generated description of one such timeline —
the dynamic twin of :class:`repro.util.faults.FaultPlan`: a trace is a
pure function of its generator arguments (never of wall-clock time or
iteration order), travels as JSON, and replays bit-for-bit wherever it
is loaded.

Event kinds (the ``kind`` discriminator of :class:`PlatformEvent`):

======================  ======================================  ==========
kind                    meaning                                 target
======================  ======================================  ==========
``cpu-drift``           cluster speed ``s_k`` scales by factor  cluster k
``bw-drift``            local capacity ``g_k`` scales by factor cluster k
``node-fail``           cluster drops out (speed = g = 0)       cluster k
``node-recover``        cluster returns at its drifted values   cluster k
``link-fail``           backbone link goes dark                 link name
``link-recover``        backbone link returns                   link name
``app-arrive``          application joins with ``payoff``       cluster k
``app-depart``          application leaves (payoff -> 0)        cluster k
======================  ======================================  ==========

How each kind maps onto the LP re-solve machinery — RHS-only edit,
bound-only pin/release, or structural rebuild — is the
:class:`repro.dynamic.online.OnlineScheduler`'s business; the trace is
pure data.

Three generator families mirror the registry names (``drift-heavy``,
``failure-storm``, ``churn``): :func:`drift_trace`,
:func:`failure_storm_trace` and :func:`churn_trace`. Each emits a
timeline that is *consistent by construction* (recoveries always follow
their failure, departures target live applications), so the scheduler's
strict apply-time validation never trips on a generated trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import ReproError
from repro.util.faults import _stable_hash

#: schema version of the on-disk trace format
EVENT_TRACE_VERSION = 1

#: every recognised event kind
EVENT_KINDS = (
    "cpu-drift",
    "bw-drift",
    "node-fail",
    "node-recover",
    "link-fail",
    "link-recover",
    "app-arrive",
    "app-depart",
)

_DRIFT_KINDS = ("cpu-drift", "bw-drift")
_CLUSTER_KINDS = (
    "cpu-drift", "bw-drift", "node-fail", "node-recover",
    "app-arrive", "app-depart",
)
_LINK_KINDS = ("link-fail", "link-recover")


class EventTraceError(ReproError):
    """An event trace is malformed (schema, field, or value errors)."""


@dataclass(frozen=True)
class PlatformEvent:
    """One timestamped platform/application change.

    ``target`` is a cluster index (int) for cluster-scoped kinds and a
    backbone-link name (str) for link-scoped kinds. ``factor`` is the
    multiplicative drift (required, positive, for the two drift kinds;
    forbidden elsewhere); ``payoff`` is the arriving application's
    payoff (required, positive, for ``app-arrive``; forbidden
    elsewhere).
    """

    time: float
    kind: str
    target: "int | str"
    factor: "float | None" = None
    payoff: "float | None" = None

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise EventTraceError(
                f"unknown event kind {self.kind!r}; valid: "
                f"{', '.join(EVENT_KINDS)}"
            )
        if not (np.isfinite(self.time) and self.time >= 0.0):
            raise EventTraceError(
                f"event time must be finite and >= 0, got {self.time!r}"
            )
        if self.kind in _CLUSTER_KINDS:
            if not isinstance(self.target, (int, np.integer)) or isinstance(
                self.target, bool
            ):
                raise EventTraceError(
                    f"{self.kind} target must be a cluster index, got "
                    f"{self.target!r}"
                )
            if int(self.target) < 0:
                raise EventTraceError(
                    f"{self.kind} target must be >= 0, got {self.target}"
                )
        else:
            if not isinstance(self.target, str) or not self.target:
                raise EventTraceError(
                    f"{self.kind} target must be a backbone link name, got "
                    f"{self.target!r}"
                )
        if self.kind in _DRIFT_KINDS:
            if self.factor is None or not (
                np.isfinite(self.factor) and float(self.factor) > 0.0
            ):
                raise EventTraceError(
                    f"{self.kind} needs a positive finite factor, got "
                    f"{self.factor!r}"
                )
        elif self.factor is not None:
            raise EventTraceError(
                f"factor only applies to drift events, not {self.kind!r}"
            )
        if self.kind == "app-arrive":
            if self.payoff is None or not (
                np.isfinite(self.payoff) and float(self.payoff) > 0.0
            ):
                raise EventTraceError(
                    f"app-arrive needs a positive finite payoff, got "
                    f"{self.payoff!r}"
                )
        elif self.payoff is not None:
            raise EventTraceError(
                f"payoff only applies to app-arrive events, not {self.kind!r}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {
            "time": float(self.time),
            "kind": self.kind,
            "target": (
                self.target if isinstance(self.target, str) else int(self.target)
            ),
        }
        if self.factor is not None:
            out["factor"] = float(self.factor)
        if self.payoff is not None:
            out["payoff"] = float(self.payoff)
        return out

    _FIELDS = ("time", "kind", "target", "factor", "payoff")

    @classmethod
    def from_dict(cls, data: dict) -> "PlatformEvent":
        if not isinstance(data, dict):
            raise EventTraceError(f"event must be an object, got {data!r}")
        unknown = sorted(set(data) - set(cls._FIELDS))
        if unknown:
            raise EventTraceError(
                f"unknown event field(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if "time" in kwargs:
            kwargs["time"] = float(kwargs["time"])
        if kwargs.get("factor") is not None:
            kwargs["factor"] = float(kwargs["factor"])
        if kwargs.get("payoff") is not None:
            kwargs["payoff"] = float(kwargs["payoff"])
        return cls(**kwargs)


@dataclass(frozen=True)
class EventTrace:
    """A seeded, schema-versioned, time-ordered event timeline.

    ``seed`` records the generator seed for provenance (a loaded trace
    replays identically whether or not the generator is re-run);
    ``events`` must be sorted by non-decreasing time — the order the
    :class:`~repro.dynamic.online.OnlineScheduler` applies them in.
    """

    seed: int = 0
    events: "tuple[PlatformEvent, ...]" = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, PlatformEvent):
                raise EventTraceError(f"not a PlatformEvent: {event!r}")
        times = [event.time for event in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise EventTraceError(
                "event trace must be sorted by non-decreasing time"
            )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "event-trace",
            "version": EVENT_TRACE_VERSION,
            "seed": int(self.seed),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventTrace":
        if not isinstance(data, dict) or data.get("kind") != "event-trace":
            raise EventTraceError(
                "not an event trace (kind="
                f"{data.get('kind') if isinstance(data, dict) else data!r})"
            )
        if data.get("version") != EVENT_TRACE_VERSION:
            raise EventTraceError(
                f"unsupported event trace version {data.get('version')!r} "
                f"(expected {EVENT_TRACE_VERSION})"
            )
        unknown = sorted(set(data) - {"kind", "version", "seed", "events"})
        if unknown:
            raise EventTraceError(
                f"unknown event trace field(s): {', '.join(unknown)}"
            )
        events = data.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise EventTraceError(
                f"event trace events must be a list, got {events!r}"
            )
        return cls(
            seed=int(data.get("seed", 0)),
            events=tuple(PlatformEvent.from_dict(e) for e in events),
        )

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "EventTrace":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise EventTraceError(f"event trace {path} does not exist") from None
        except json.JSONDecodeError as exc:
            raise EventTraceError(
                f"event trace {path} is not valid JSON: {exc}"
            )
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# generator families
# ----------------------------------------------------------------------

def _family_rng(family: str, seed: int) -> np.random.Generator:
    """The family's deterministic stream: seeded exactly like fault
    plans — ``SeedSequence(entropy=seed, spawn_key=(hash(family),))`` —
    so two families at the same seed never share draws."""
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=int(seed), spawn_key=(_stable_hash(family),)
        )
    )


def drift_trace(
    n_clusters: int,
    n_events: int = 12,
    seed: int = 0,
    magnitude: float = 0.3,
) -> EventTrace:
    """A drift-dominated timeline: speeds and local capacities wander.

    Each event scales one cluster's ``s_k`` or ``g_k`` by a log-normal
    factor ``exp(N(0, magnitude))`` clipped to ``[1/4, 4]`` — pure RHS
    edits, the warm-start fast path's home turf.
    """
    if n_clusters < 1:
        raise EventTraceError(f"n_clusters must be >= 1, got {n_clusters}")
    if n_events < 0:
        raise EventTraceError(f"n_events must be >= 0, got {n_events}")
    rng = _family_rng("drift-heavy", seed)
    events = []
    t = 0.0
    for _ in range(n_events):
        t += float(rng.uniform(0.5, 1.5))
        kind = "cpu-drift" if rng.random() < 0.5 else "bw-drift"
        factor = float(np.clip(np.exp(rng.normal(0.0, magnitude)), 0.25, 4.0))
        events.append(
            PlatformEvent(
                time=t,
                kind=kind,
                target=int(rng.integers(n_clusters)),
                factor=factor,
            )
        )
    return EventTrace(seed=int(seed), events=tuple(events))


def failure_storm_trace(
    n_clusters: int,
    link_names: "Sequence[str] | Iterable[str]",
    n_storms: int = 4,
    seed: int = 0,
) -> EventTrace:
    """A failure-storm timeline: things break, then come back.

    Each storm fails one backbone link (bound-only pin of every
    variable routed through it) or one cluster (RHS zeroing), and
    recovers it before the next storm starts — sequential by
    construction, so the scheduler's strict fail/recover pairing always
    holds.
    """
    if n_clusters < 1:
        raise EventTraceError(f"n_clusters must be >= 1, got {n_clusters}")
    if n_storms < 0:
        raise EventTraceError(f"n_storms must be >= 0, got {n_storms}")
    links = tuple(link_names)
    rng = _family_rng("failure-storm", seed)
    events = []
    t = 0.0
    for _ in range(n_storms):
        t += float(rng.uniform(0.5, 1.5))
        down = float(rng.uniform(0.5, 2.0))
        if links and rng.random() < 0.7:
            name = links[int(rng.integers(len(links)))]
            events.append(PlatformEvent(time=t, kind="link-fail", target=name))
            events.append(
                PlatformEvent(time=t + down, kind="link-recover", target=name)
            )
        else:
            k = int(rng.integers(n_clusters))
            events.append(PlatformEvent(time=t, kind="node-fail", target=k))
            events.append(
                PlatformEvent(time=t + down, kind="node-recover", target=k)
            )
        t += down
    return EventTrace(seed=int(seed), events=tuple(events))


def churn_trace(
    n_clusters: int,
    n_cycles: int = 3,
    seed: int = 0,
    payoff_low: float = 0.5,
    payoff_high: float = 2.0,
) -> EventTrace:
    """An application-churn timeline: apps depart and new ones arrive.

    Each cycle departs the application of one cluster and re-arrives a
    replacement with a fresh payoff drawn from ``[payoff_low,
    payoff_high]`` — structural events (the maxmin row set changes), so
    every cycle exercises the :class:`~repro.lp.builder.LPBuildCache`
    rebuild path. Cycles are sequential: each departure targets a live
    application.
    """
    if n_clusters < 1:
        raise EventTraceError(f"n_clusters must be >= 1, got {n_clusters}")
    if n_cycles < 0:
        raise EventTraceError(f"n_cycles must be >= 0, got {n_cycles}")
    if not 0.0 < payoff_low <= payoff_high:
        raise EventTraceError(
            f"need 0 < payoff_low <= payoff_high, got "
            f"({payoff_low}, {payoff_high})"
        )
    rng = _family_rng("churn", seed)
    events = []
    t = 0.0
    for _ in range(n_cycles):
        t += float(rng.uniform(0.5, 1.5))
        k = int(rng.integers(n_clusters))
        gap = float(rng.uniform(0.25, 1.0))
        payoff = float(rng.uniform(payoff_low, payoff_high))
        events.append(PlatformEvent(time=t, kind="app-depart", target=k))
        events.append(
            PlatformEvent(
                time=t + gap, kind="app-arrive", target=k, payoff=payoff
            )
        )
        t += gap
    return EventTrace(seed=int(seed), events=tuple(events))
