"""Facade knobs for online re-scheduling runs.

:class:`DynamicOptions` rides on ``SolverConfig(dynamic=...)`` exactly
like :class:`repro.distrib.supervise.SupervisionPolicy` rides on
``SolverConfig(supervision=...)``: a frozen, validated, dict-round-
trippable record — no ``**kwargs`` funnels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import SolverError


@dataclass(frozen=True)
class DynamicOptions:
    """Knobs of one :class:`repro.dynamic.online.OnlineScheduler` run.

    Parameters
    ----------
    replay:
        After each re-solve, round the LP point down to a valid
        allocation, build the periodic schedule and replay it through
        the flow simulator (the throughput-deficit column of the
        :class:`~repro.dynamic.online.DisruptionReport`). Turning it
        off keeps only the LP-level metrics — much faster on large
        traces.
    sim_periods:
        Periods the flow simulator replays per event (>= 2; achieved
        throughput is measured over ``sim_periods - 1`` warmed-up
        periods).
    denominator:
        Rational-period denominator for
        :func:`repro.schedule.periodic.build_periodic_schedule`.
    check_oracle:
        Solve the from-scratch oracle (cold, same mutated instance)
        after every incremental re-solve and record the bitwise
        comparison. The benchmark gate requires it; switch it off only
        to halve the LP work of production runs.
    """

    replay: bool = True
    sim_periods: int = 4
    denominator: int = 10_000
    check_oracle: bool = True

    def __post_init__(self):
        if not isinstance(self.replay, bool):
            raise SolverError(f"replay must be a bool, got {self.replay!r}")
        if not isinstance(self.check_oracle, bool):
            raise SolverError(
                f"check_oracle must be a bool, got {self.check_oracle!r}"
            )
        if not isinstance(self.sim_periods, int) or self.sim_periods < 2:
            raise SolverError(
                f"sim_periods must be an int >= 2, got {self.sim_periods!r}"
            )
        if not isinstance(self.denominator, int) or self.denominator < 1:
            raise SolverError(
                f"denominator must be an int >= 1, got {self.denominator!r}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "replay": self.replay,
            "sim_periods": self.sim_periods,
            "denominator": self.denominator,
            "check_oracle": self.check_oracle,
        }

    _FIELDS = ("replay", "sim_periods", "denominator", "check_oracle")

    @classmethod
    def from_dict(cls, data: dict) -> "DynamicOptions":
        if not isinstance(data, dict):
            raise SolverError(
                f"dynamic options must be an object, got {data!r}"
            )
        unknown = sorted(set(data) - set(cls._FIELDS))
        if unknown:
            raise SolverError(
                f"unknown dynamic option(s): {', '.join(unknown)}"
            )
        return cls(**data)
