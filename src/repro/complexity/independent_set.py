"""Maximum-independent-set solvers over edge-list graphs.

MAXIMUM-INDEPENDENT-SET is the NP-complete source problem of the
paper's reduction. The exact solver is a branch-and-bound on the
standard dichotomy "either v is excluded, or v is included and its
neighbourhood excluded", good for the small graphs the tests and the
E10 benchmark use; the greedy min-degree heuristic provides a fast
lower bound (and mirrors what the greedy scheduling heuristic G
implicitly computes on reduced instances).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _adjacency(n: int, edges: Iterable[tuple[int, int]]) -> list[set[int]]:
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for {n} vertices")
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        adj[u].add(v)
        adj[v].add(u)
    return adj


def is_independent_set(
    n: int, edges: Iterable[tuple[int, int]], vertices: Iterable[int]
) -> bool:
    """True when ``vertices`` is an independent set of the graph."""
    selected = set(vertices)
    if any(not (0 <= v < n) for v in selected):
        return False
    return all(not (u in selected and v in selected) for u, v in edges)


def greedy_independent_set(n: int, edges: Iterable[tuple[int, int]]) -> set[int]:
    """Min-degree greedy: repeatedly take a minimum-degree vertex and
    delete its closed neighbourhood. A classic 1/(d+1) approximation."""
    adj = _adjacency(n, edges)
    alive = set(range(n))
    chosen: set[int] = set()
    while alive:
        v = min(alive, key=lambda u: (len(adj[u] & alive), u))
        chosen.add(v)
        alive.discard(v)
        alive -= adj[v]
    return chosen


def exact_max_independent_set(
    n: int, edges: Iterable[tuple[int, int]], max_nodes: int = 1_000_000
) -> set[int]:
    """Exact maximum independent set by branch-and-bound.

    Branches on a maximum-degree vertex (exclude it / include it and
    drop its neighbourhood); prunes with the trivial ``|alive|`` bound.
    Intended for the small graphs of tests and benchmarks.
    """
    edges = list(edges)
    adj = _adjacency(n, edges)
    best: set[int] = greedy_independent_set(n, edges)
    budget = [max_nodes]

    def search(alive: set[int], chosen: set[int]) -> None:
        nonlocal best
        if budget[0] <= 0:
            raise RuntimeError(f"exceeded branch-and-bound budget {max_nodes}")
        budget[0] -= 1
        if len(chosen) + len(alive) <= len(best):
            return  # cannot beat the incumbent
        if not alive:
            if len(chosen) > len(best):
                best = set(chosen)
            return
        # Vertices of degree 0 within `alive` are always taken.
        isolated = {v for v in alive if not (adj[v] & alive)}
        if isolated:
            search(alive - isolated, chosen | isolated)
            return
        v = max(alive, key=lambda u: (len(adj[u] & alive), -u))
        # Branch 1: include v (and exclude its neighbourhood).
        search(alive - {v} - adj[v], chosen | {v})
        # Branch 2: exclude v.
        search(alive - {v}, chosen)

    search(set(range(n)), set())
    assert is_independent_set(n, edges, best)
    return best


def random_graph_edges(
    n: int, p: float, rng
) -> list[tuple[int, int]]:
    """Erdős–Rényi G(n, p) edge list (used by tests and benchmarks)."""
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                edges.append((u, v))
    return edges
