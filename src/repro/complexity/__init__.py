"""Section-4 NP-completeness machinery.

The paper proves STEADY-STATE-DIVISIBLE-LOAD NP-complete by reduction
from MAXIMUM-INDEPENDENT-SET. This package makes the proof executable:

* :mod:`repro.complexity.independent_set` — exact and greedy MIS solvers
  over plain edge-list graphs;
* :mod:`repro.complexity.reduction` — the instance construction I1 → I2
  (Figure 4), the solution mappings in both directions, and a numeric
  check of Lemma 1.

Tests close the loop numerically: on random small graphs, the exact
MILP optimum of the reduced platform equals the maximum independent set
size.
"""

from repro.complexity.independent_set import (
    exact_max_independent_set,
    greedy_independent_set,
    is_independent_set,
)
from repro.complexity.reduction import (
    ReducedInstance,
    reduce_mis_to_scheduling,
    allocation_from_independent_set,
    independent_set_from_allocation,
    verify_lemma1,
)

__all__ = [
    "exact_max_independent_set",
    "greedy_independent_set",
    "is_independent_set",
    "ReducedInstance",
    "reduce_mis_to_scheduling",
    "allocation_from_independent_set",
    "independent_set_from_allocation",
    "verify_lemma1",
]
