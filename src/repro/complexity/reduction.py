"""The reduction I1 (MAXIMUM-INDEPENDENT-SET) -> I2 (STEADY-STATE-
DIVISIBLE-LOAD) of Section 4, made executable.

Given a graph ``G = (V, E)`` with ``n`` vertices and a bound ``B``, the
construction (Figure 4 of the paper) builds a platform with ``n + 1``
clusters:

* ``C^0`` holds the only participating application (``pi_0 = 1``), has
  ``g_0 = n`` and **zero** computing speed, so all of its work must be
  delegated;
* every vertex ``V_i`` becomes a cluster ``C^i`` with ``g_i = s_i = 1``
  and ``pi_i = 0``;
* every edge ``e_k = (V_i, V_j)`` becomes a *shared* backbone link
  ``lcommon_k`` (bw = 1, max-connect = 1) between two fresh routers
  ``Qa_k`` / ``Qb_k``; the pinned route from ``C^0`` to ``C^i`` chains
  through the shared links of every edge incident to ``V_i``
  (Equation 8), so two routes share a backbone link **iff** the
  corresponding vertices are adjacent (Lemma 1).

Consequently a throughput of ``B`` is achievable iff ``G`` has an
independent set of size ``B``: each unit of throughput needs a dedicated
route to a distinct unit-speed cluster, and max-connect = 1 forbids two
routes through a common link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.allocation import Allocation
from repro.core.problem import SteadyStateProblem
from repro.platform.cluster import Cluster
from repro.platform.links import BackboneLink
from repro.platform.routing import Route
from repro.platform.topology import Platform
from repro.complexity.independent_set import is_independent_set


@dataclass
class ReducedInstance:
    """The scheduling instance produced from a MIS instance.

    Attributes
    ----------
    platform:
        The constructed platform (explicit pinned routes).
    payoffs:
        ``pi_0 = 1``, all others 0.
    rho:
        The throughput bound (= the MIS cardinality bound ``B``).
    n_vertices, edges:
        The original graph, kept for solution mapping.
    """

    platform: Platform
    payoffs: np.ndarray
    rho: float
    n_vertices: int
    edges: tuple[tuple[int, int], ...]

    def problem(self, objective: str = "maxmin") -> SteadyStateProblem:
        """The scheduling problem (MAXMIN over the single active app)."""
        return SteadyStateProblem(self.platform, self.payoffs, objective=objective)


def reduce_mis_to_scheduling(
    n_vertices: int,
    edges: Iterable[tuple[int, int]],
    bound: int,
) -> ReducedInstance:
    """Construct instance I2 from the MIS instance ``(G, B)``."""
    edges = tuple(tuple(sorted(e)) for e in edges)
    n = n_vertices

    # Route(i): indices of edges incident to V_i, in edge order.
    route_sets: list[list[int]] = [[] for _ in range(n)]
    for k, (i, j) in enumerate(edges):
        route_sets[i].append(k)
        route_sets[j].append(k)

    routers: list[str] = ["RC0"] + [f"RC{i + 1}" for i in range(n)]
    links: list[BackboneLink] = []

    # Shared per-edge routers and common links.
    for k in range(len(edges)):
        routers += [f"Qa{k}", f"Qb{k}"]
        links.append(
            BackboneLink(
                name=f"lcommon{k}", ends=(f"Qa{k}", f"Qb{k}"), bw=1.0, max_connect=1
            )
        )

    # Per-vertex chain links and pinned routes C^0 -> C^i.
    routes: dict[tuple[int, int], Route] = {}
    for i in range(n):
        ks = route_sets[i]
        router_path: list[str] = ["RC0"]
        link_path: list[str] = []
        if not ks:
            # Isolated vertex: a direct private link.
            name = f"l{i}_1"
            links.append(
                BackboneLink(name=name, ends=("RC0", f"RC{i + 1}"), bw=1.0, max_connect=1)
            )
            router_path.append(f"RC{i + 1}")
            link_path.append(name)
        else:
            # l^i_1 = (C0, Qa_{k1})
            name = f"l{i}_1"
            links.append(
                BackboneLink(
                    name=name, ends=("RC0", f"Qa{ks[0]}"), bw=1.0, max_connect=1
                )
            )
            link_path.append(name)
            router_path += [f"Qa{ks[0]}", f"Qb{ks[0]}"]
            link_path.append(f"lcommon{ks[0]}")
            for j in range(1, len(ks)):
                # l^i_{j+1} = (Qb_{k_j}, Qa_{k_{j+1}})
                name = f"l{i}_{j + 1}"
                links.append(
                    BackboneLink(
                        name=name,
                        ends=(f"Qb{ks[j - 1]}", f"Qa{ks[j]}"),
                        bw=1.0,
                        max_connect=1,
                    )
                )
                link_path.append(name)
                router_path += [f"Qa{ks[j]}", f"Qb{ks[j]}"]
                link_path.append(f"lcommon{ks[j]}")
            # l^i_{|Route(i)|+1} = (Qb_{k_last}, C^i)
            name = f"l{i}_{len(ks) + 1}"
            links.append(
                BackboneLink(
                    name=name,
                    ends=(f"Qb{ks[-1]}", f"RC{i + 1}"),
                    bw=1.0,
                    max_connect=1,
                )
            )
            link_path.append(name)
            router_path.append(f"RC{i + 1}")
        routes[(0, i + 1)] = Route(
            routers=tuple(router_path),
            links=tuple(link_path),
            bandwidth=1.0,
            connection_cap=1,
        )

    clusters = [Cluster(name="C0", speed=0.0, g=float(n), router="RC0")]
    clusters += [
        Cluster(name=f"C{i + 1}", speed=1.0, g=1.0, router=f"RC{i + 1}")
        for i in range(n)
    ]
    platform = Platform(
        clusters=clusters, routers=routers, backbone_links=links, routes=routes
    )
    payoffs = np.zeros(n + 1)
    payoffs[0] = 1.0
    return ReducedInstance(
        platform=platform,
        payoffs=payoffs,
        rho=float(bound),
        n_vertices=n,
        edges=edges,
    )


def allocation_from_independent_set(
    instance: ReducedInstance, vertices: Iterable[int]
) -> Allocation:
    """The paper's forward mapping: a valid allocation of throughput
    ``|V'|`` from an independent set ``V'``."""
    vertices = set(vertices)
    if not is_independent_set(instance.n_vertices, instance.edges, vertices):
        raise ValueError(f"{sorted(vertices)} is not an independent set")
    K = instance.n_vertices + 1
    alloc = Allocation.zeros(K)
    for v in vertices:
        alloc.alpha[0, v + 1] = 1.0
        alloc.beta[0, v + 1] = 1
    return alloc


def independent_set_from_allocation(
    instance: ReducedInstance, alloc: Allocation, min_load: float = 1e-9
) -> set[int]:
    """The paper's backward mapping: vertices whose clusters receive work.

    For any *valid* allocation the result is an independent set, because
    two routes with positive beta cannot share a max-connect-1 link.
    """
    used = {
        v
        for v in range(instance.n_vertices)
        if alloc.alpha[0, v + 1] > min_load and alloc.beta[0, v + 1] >= 1
    }
    if not is_independent_set(instance.n_vertices, instance.edges, used):
        raise ValueError(
            "allocation maps to a non-independent set - it must violate "
            "the connection constraints"
        )
    return used


def verify_lemma1(instance: ReducedInstance) -> bool:
    """Check Lemma 1: routes (C0, Ci) and (C0, Cj) share a backbone link
    iff (Vi, Vj) is an edge of the original graph."""
    platform = instance.platform
    edge_set = {frozenset(e) for e in instance.edges}
    for i in range(instance.n_vertices):
        for j in range(i + 1, instance.n_vertices):
            links_i = set(platform.route(0, i + 1).links)
            links_j = set(platform.route(0, j + 1).links)
            shares = bool(links_i & links_j)
            adjacent = frozenset((i, j)) in edge_set
            if shares != adjacent:
                return False
    return True
