"""Section-5 heuristics and exact comparators.

==========  =======================================================
name        algorithm
==========  =======================================================
``greedy``  G — resource-by-resource greedy (Section 5.1)
``lpr``     LPR — rational LP, betas rounded down (Section 5.2.1)
``lprg``    LPRG — LPR + greedy on the residual platform (5.2.2)
``lprr``    LPRR — randomized rounding, ~K^2 LP solves (5.2.3)
``lprg-it`` iterated LPRG — residual re-solves (extension, E15)
``lp``      rational relaxation: *upper bound*, not a schedule
``milp``    exact mixed-integer optimum (HiGHS)
``bnb``     exact optimum via our own branch-and-bound
==========  =======================================================
"""

from repro.heuristics.base import (
    Heuristic,
    HeuristicResult,
    get_heuristic,
    register_heuristic,
    registry,
)
from repro.heuristics.greedy import GreedyHeuristic, greedy_allocate
from repro.heuristics.lpr import LPRHeuristic, round_down
from repro.heuristics.lprg import LPRGHeuristic
from repro.heuristics.lprr import LPRRHeuristic
from repro.heuristics.lprg_iterated import IteratedLPRGHeuristic, residual_platform
from repro.heuristics.bounds import LPBound, MILPExact, BranchAndBoundExact

__all__ = [
    "Heuristic",
    "HeuristicResult",
    "get_heuristic",
    "register_heuristic",
    "registry",
    "GreedyHeuristic",
    "greedy_allocate",
    "LPRHeuristic",
    "round_down",
    "LPRGHeuristic",
    "LPRRHeuristic",
    "IteratedLPRGHeuristic",
    "residual_platform",
    "LPBound",
    "MILPExact",
    "BranchAndBoundExact",
]
