"""LPR: solve the rational LP, round the betas down (Section 5.2.1).

Given the rational solution ``(alpha~, beta~)``, build::

    beta^[k, l]  = floor(beta~[k, l])
    alpha^[k, l] = min(alpha~[k, l], beta^[k, l] * min bw on route)

which the paper shows is again a solution of the LP with integral betas.
Rounding *down* can waste a lot of residual network capacity — the
paper's Section 6.1 observes LPR sometimes rounds every beta to 0 — and
that is exactly what LPRG repairs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.allocation import Allocation
from repro.core.problem import SteadyStateProblem
from repro.heuristics.base import Heuristic, HeuristicResult, register_heuristic
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.solution import INTEGRALITY_TOL, LPSolution


def _floor_snapped(value: float) -> int:
    """Floor, but snap values within LP tolerance of an integer first.

    HiGHS may return 2.9999999997 for an exact 3; plain ``floor`` would
    lose a whole connection to solver noise.
    """
    nearest = round(value)
    if abs(value - nearest) <= INTEGRALITY_TOL:
        return int(nearest)
    return int(math.floor(value))


def round_down(problem: SteadyStateProblem, relaxed: LPSolution) -> Allocation:
    """Apply the LPR rounding rule to a rational LP solution."""
    platform = problem.platform
    K = platform.n_clusters
    alpha_t = relaxed.alpha
    beta_t = relaxed.beta

    alpha = np.zeros((K, K), dtype=float)
    beta = np.zeros((K, K), dtype=np.int64)
    for k in range(K):
        alpha[k, k] = alpha_t[k, k]
    for (k, l) in platform.routed_pairs():
        route = platform.route(k, l)
        if not route.links:
            # Same-router pair: no backbone constraint, keep alpha as-is.
            alpha[k, l] = alpha_t[k, l]
            continue
        b = _floor_snapped(float(beta_t[k, l]))
        beta[k, l] = b
        alpha[k, l] = min(float(alpha_t[k, l]), b * route.bandwidth)
    return Allocation(alpha, beta)


@register_heuristic
class LPRHeuristic(Heuristic):
    """Registry wrapper: rational LP + round-down."""

    name = "lpr"
    description = "LPR: rational LP, betas rounded down (Section 5.2.1)"
    uses_lp = True
    deterministic = True

    def _solve(
        self, problem: SteadyStateProblem, rng: np.random.Generator, **kwargs
    ) -> HeuristicResult:
        instance = build_lp(problem)
        relaxed = solve_lp_scipy(instance)
        alloc = round_down(problem, relaxed)
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=problem.objective_value(alloc),
            allocation=alloc,
            runtime=0.0,
            n_lp_solves=1,
            meta={"relaxation_value": relaxed.value},
        )
