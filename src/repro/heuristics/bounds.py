"""Exact comparators: the LP upper bound and the true mixed-integer optimum.

* :class:`LPBound` — the paper's "LP" method: the rational relaxation of
  program (7). Its value is an *upper bound* on the optimal throughput
  and generally not realizable (betas are fractional), so the result has
  ``allocation=None``. All Figure-5/6 ratios are computed against it.
* :class:`MILPExact` — the true optimum via HiGHS MILP.
* :class:`BranchAndBoundExact` — the true optimum via our own B&B
  (cross-check of the above; small K only).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.heuristics.base import Heuristic, HeuristicResult, register_heuristic
from repro.lp.branch_and_bound import solve_branch_and_bound
from repro.lp.builder import build_lp
from repro.lp.milp_backend import solve_milp_scipy
from repro.lp.scipy_backend import solve_lp_scipy
from repro.util.errors import SolverError


@register_heuristic
class LPBound(Heuristic):
    """Rational relaxation — an upper bound, not a schedule."""

    name = "lp"
    aliases = ("lp-bound", "relaxation")
    description = "rational relaxation of program (7): an upper bound, not a schedule"
    uses_lp = True
    deterministic = True

    def _solve(
        self, problem: SteadyStateProblem, rng: np.random.Generator, **kwargs
    ) -> HeuristicResult:
        solution = solve_lp_scipy(build_lp(problem))
        allocation = solution.to_allocation() if solution.is_integral else None
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=solution.value,
            allocation=allocation,
            runtime=0.0,
            n_lp_solves=1,
            meta={"solution": solution},
        )


@register_heuristic
class MILPExact(Heuristic):
    """Exact optimum of the mixed program via HiGHS MILP."""

    name = "milp"
    aliases = ("exact", "mlp")
    description = "exact mixed-integer optimum via HiGHS MILP"
    option_names = ("time_limit",)
    uses_lp = True
    deterministic = True

    def _solve(
        self,
        problem: SteadyStateProblem,
        rng: np.random.Generator,
        time_limit: "float | None" = None,
        **kwargs,
    ) -> HeuristicResult:
        solution = solve_milp_scipy(build_lp(problem), time_limit=time_limit)
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=solution.value,
            allocation=solution.to_allocation(),
            runtime=0.0,
            n_lp_solves=1,
            meta={"solution": solution},
        )


@register_heuristic
class BranchAndBoundExact(Heuristic):
    """Exact optimum via our own LP-based branch-and-bound."""

    name = "bnb"
    aliases = ("branch-and-bound",)
    description = "exact optimum via LP-based branch-and-bound (small K)"
    option_names = ("lp_engine", "max_nodes", "warm_start")
    uses_lp = True
    deterministic = True

    def _solve(
        self,
        problem: SteadyStateProblem,
        rng: np.random.Generator,
        max_nodes: int = 10_000,
        warm_start: bool = True,
        lp_engine: str = "revised",
        **kwargs,
    ) -> HeuristicResult:
        result = solve_branch_and_bound(
            build_lp(problem),
            max_nodes=max_nodes,
            warm_start=warm_start,
            engine=lp_engine,
        )
        if result.solution is None:
            raise SolverError("branch-and-bound found no integral solution")
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=result.solution.value,
            allocation=result.solution.to_allocation(),
            runtime=0.0,
            n_lp_solves=result.nodes,
            meta={"optimal": result.optimal, "bound": result.bound},
        )
