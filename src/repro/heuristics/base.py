"""Heuristic interface, result record, and registry.

Every algorithm — the four heuristics of Section 5, the LP upper bound
and the exact solvers — implements :class:`Heuristic` and registers
itself by name, so the experiment harness can sweep over algorithms
uniformly and :func:`repro.core.solve.solve` can dispatch by string.
"""

from __future__ import annotations

import difflib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.util.errors import SolverError
from repro.util.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.allocation import Allocation
    from repro.core.problem import SteadyStateProblem


@dataclass(frozen=True)
class MethodInfo:
    """Metadata describing one registered algorithm.

    The typed counterpart of :func:`repro.core.solve.available_methods`:
    what the method is, which run options it accepts, whether it solves
    LPs, and whether its result depends on the ``rng`` argument.
    """

    name: str
    aliases: tuple[str, ...]
    description: str
    options: tuple[str, ...]
    uses_lp: bool
    deterministic: bool

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "aliases": list(self.aliases),
            "description": self.description,
            "options": list(self.options),
            "uses_lp": self.uses_lp,
            "deterministic": self.deterministic,
        }


@dataclass
class HeuristicResult:
    """Outcome of running one algorithm on one problem.

    Attributes
    ----------
    method:
        Registered algorithm name.
    objective:
        Objective name the problem was solved under.
    value:
        Objective value achieved. For ``lp`` this is an *upper bound*
        (the relaxation is generally not realizable), for everything
        else it is the value of ``allocation``.
    allocation:
        The valid integer-beta allocation, or ``None`` for the pure
        relaxation bound.
    runtime:
        Wall-clock seconds spent inside the algorithm.
    n_lp_solves:
        Number of LP relaxations solved (0 for the greedy).
    meta:
        Algorithm-specific extras (e.g. the raw LP solution).
    """

    method: str
    objective: str
    value: float
    allocation: "Allocation | None"
    runtime: float
    n_lp_solves: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def is_schedule(self) -> bool:
        """True when the result is realizable (has an allocation)."""
        return self.allocation is not None

    def __repr__(self) -> str:
        return (
            f"HeuristicResult({self.method}, {self.objective}, "
            f"value={self.value:.6g}, runtime={self.runtime:.4g}s)"
        )


class Heuristic:
    """Base class: subclasses implement :meth:`_solve` and set ``name``."""

    #: registry key; subclasses must override
    name: str = "abstract"
    #: additional lookup aliases
    aliases: tuple[str, ...] = ()
    #: one-line human description (surfaced by ``method_info()``)
    description: str = ""
    #: keyword options :meth:`run` accepts besides ``rng``; anything
    #: else passed through the public API is rejected with a suggestion
    option_names: tuple[str, ...] = ()
    #: does the algorithm solve LP relaxations?
    uses_lp: bool = False
    #: is the result independent of the ``rng`` argument?
    deterministic: bool = True

    def info(self) -> MethodInfo:
        """This algorithm's :class:`MethodInfo` record."""
        return MethodInfo(
            name=self.name,
            aliases=tuple(self.aliases),
            description=self.description,
            options=tuple(sorted(self.option_names)),
            uses_lp=self.uses_lp,
            deterministic=self.deterministic,
        )

    def run(
        self,
        problem: "SteadyStateProblem",
        rng: "int | np.random.Generator | None" = None,
        **kwargs,
    ) -> HeuristicResult:
        """Solve ``problem``, timing the algorithm body."""
        rng = ensure_rng(rng)
        start = time.perf_counter()
        result = self._solve(problem, rng, **kwargs)
        result.runtime = time.perf_counter() - start
        return result

    def _solve(
        self, problem: "SteadyStateProblem", rng: np.random.Generator, **kwargs
    ) -> HeuristicResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Heuristic] = {}
_ALIASES: dict[str, str] = {}


def register_heuristic(cls: "Callable[[], Heuristic]") -> "Callable[[], Heuristic]":
    """Class decorator: instantiate and register under name + aliases."""
    instance = cls()
    key = instance.name.lower()
    if key in _REGISTRY:
        raise ValueError(f"duplicate heuristic name {key!r}")
    _REGISTRY[key] = instance
    for alias in instance.aliases:
        _ALIASES[alias.lower()] = key
    return cls


def registry() -> dict[str, Heuristic]:
    """Name -> instance mapping of all registered algorithms."""
    _ensure_loaded()
    return dict(_REGISTRY)


def get_heuristic(name: str) -> Heuristic:
    """Look an algorithm up by name or alias (case-insensitive)."""
    _ensure_loaded()
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = sorted(set(_REGISTRY) | set(_ALIASES))
        raise ValueError(f"unknown method {name!r}; known: {known}") from None


def nearest_name(name: str, candidates) -> "str | None":
    """Closest match to ``name`` among ``candidates`` (None if nothing
    is plausibly close) — shared by every did-you-mean diagnostic."""
    matches = difflib.get_close_matches(name, sorted(candidates), n=1)
    return matches[0] if matches else None


def unknown_option_error(option: str, method: str, valid) -> SolverError:
    """The :class:`SolverError` for an unrecognised solver option.

    Historically ``solve()`` forwarded unknown ``**kwargs`` into the
    heuristics' catch-all signatures, where they were silently ignored —
    a typo like ``eager_integer_fixng=True`` changed nothing and said
    nothing. Every public entry point now rejects unknown names through
    this helper, naming the nearest valid option.
    """
    valid = sorted(valid)
    message = f"unknown option {option!r} for method {method!r}"
    suggestion = nearest_name(option, valid)
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    message += f" (valid options: {valid})"
    return SolverError(message)


def _ensure_loaded() -> None:
    """Import the implementation modules so their decorators run."""
    from repro.heuristics import (  # noqa: F401
        bounds,
        greedy,
        lpr,
        lprg,
        lprg_iterated,
        lprr,
    )
