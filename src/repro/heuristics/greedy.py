"""The greedy heuristic G (Section 5.1).

The heuristic repeatedly (i) selects the application with the smallest
payoff received so far, (ii) picks the most profitable cluster for it
(local compute, or one new connection to a remote cluster), and (iii)
allocates an amount of work that does not starve the other applications,
updating residual capacities after every step.

The selection key follows the paper's *intuition* text (smallest
``alpha_k * pi_k`` first, ties to the largest payoff) rather than its
garbled lexicographic formula — see interpretation note 1 in DESIGN.md.
Applications with ``pi_k = 0`` never participate (note 2). The step-5
local cap degenerates to the full residual speed when it would be zero
(note 3), and a granularity floor bounds the number of local drip
allocations so adversarial capacity ratios cannot stall termination.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.problem import SteadyStateProblem
from repro.heuristics.base import Heuristic, HeuristicResult, register_heuristic
from repro.platform.topology import CapacityLedger

#: allocations below this are treated as "no more work can be executed"
_BENEFIT_TOL = 1e-9
#: local drip allocations are floored at this fraction of residual speed,
#: bounding the iteration count without materially changing results
_LOCAL_GRANULARITY = 1e-3


def greedy_allocate(
    problem: SteadyStateProblem,
    ledger: "CapacityLedger | None" = None,
    base: "Allocation | None" = None,
    selection: str = "intuition",
) -> Allocation:
    """Run G, optionally warm-started (used by LPRG).

    Parameters
    ----------
    problem:
        The steady-state problem (objective is irrelevant: G builds one
        allocation scored under either objective afterwards).
    ledger:
        Residual capacities to start from; ``None`` means the full
        platform. LPRG passes the ledger left over after charging the
        rounded LP solution.
    base:
        Existing allocation to extend in place of the zero allocation;
        its throughputs seed the fairness-selection key.
    selection:
        Step-3 selection rule. ``"intuition"`` (default) follows the
        paper's prose: pick the application with the *smallest*
        ``alpha_k * pi_k``, ties to the largest payoff. ``"literal"``
        implements the formula exactly as printed — sort non-decreasing
        by ``(1/(alpha_k pi_k), pi_k)`` and take the first — which after
        the very first allocation keeps re-selecting the *best served*
        application (winner-takes-all). The E14 ablation benchmark
        quantifies how much worse the literal reading is, supporting
        interpretation note 1 in DESIGN.md.

    Returns
    -------
    Allocation
        ``base`` (copied) plus everything G could add.
    """
    if selection not in ("intuition", "literal"):
        raise ValueError(
            f"unknown selection rule {selection!r}; use 'intuition' or 'literal'"
        )
    platform = problem.platform
    K = platform.n_clusters
    if ledger is None:
        ledger = CapacityLedger(platform)
    alloc = base.copy() if base is not None else Allocation.zeros(K)
    payoffs = problem.payoffs

    # Step 1: only participating applications enter the candidate list.
    pool = [k for k in range(K) if payoffs[k] > 0]

    while pool:
        # Step 3 (select application).
        received = {k: alloc.throughput(k) * payoffs[k] for k in pool}
        if selection == "intuition":
            # Smallest received payoff alpha_k * pi_k; ties -> largest
            # pi_k, then smallest index.
            k = min(pool, key=lambda a: (received[a], -payoffs[a], a))
        else:
            # Paper's formula verbatim: non-decreasing (1/(a*pi), pi).
            k = min(
                pool,
                key=lambda a: (
                    (1.0 / received[a]) if received[a] > 0 else float("inf"),
                    payoffs[a],
                    a,
                ),
            )

        # Step 4 (select cluster): benefit of one connection to each
        # remote cluster vs computing locally.
        best_l, best_benefit = k, float(ledger.speed[k])
        for m in range(K):
            if m == k:
                continue
            benefit = ledger.remote_benefit(k, m)
            if benefit > best_benefit + _BENEFIT_TOL:
                best_l, best_benefit = m, benefit

        if best_benefit <= _BENEFIT_TOL:
            pool.remove(k)  # no more work can be executed for A_k
            continue

        # Step 5 (amount) + step 6 (update residual capacities).
        if best_l == k:
            cap = ledger.local_cap(k)
            # Granularity floor relative to the *nominal* speed: bounds the
            # number of drip allocations per application at ~1/granularity.
            floor = platform.clusters[k].speed * _LOCAL_GRANULARITY
            amount = min(ledger.speed[k], max(cap, floor))
            if amount <= _BENEFIT_TOL:
                pool.remove(k)
                continue
            ledger.commit_local(k, amount)
            alloc.alpha[k, k] += amount
        else:
            amount = best_benefit
            ledger.commit_remote(k, best_l, amount)
            alloc.alpha[k, best_l] += amount
            alloc.beta[k, best_l] += 1

    return alloc


@register_heuristic
class GreedyHeuristic(Heuristic):
    """Registry wrapper around :func:`greedy_allocate`."""

    name = "greedy"
    aliases = ("g",)
    description = "greedy G: resource-by-resource allocation (Section 5.1)"
    option_names = ("selection",)
    uses_lp = False
    deterministic = True

    def _solve(
        self,
        problem: SteadyStateProblem,
        rng: np.random.Generator,
        selection: str = "intuition",
        **kwargs,
    ) -> HeuristicResult:
        alloc = greedy_allocate(problem, selection=selection)
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=problem.objective_value(alloc),
            allocation=alloc,
            runtime=0.0,
        )
