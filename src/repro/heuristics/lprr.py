"""LPRR: randomized rounding with LP re-solves (Section 5.2.3).

Following Coudert & Rivano's always-feasible scheme, the heuristic
repeatedly (1) solves the rational LP subject to all betas fixed so far,
(2) picks an unassigned route uniformly at random, (3) rounds its
current rational beta up with probability equal to its fractional part
(down otherwise), (4) clamps the value to the residual integer
connection capacity of every backbone link on the route so the next LP
stays feasible, and (5) fixes the variable. One LP per route pair makes
~K(K-1) solves — the K^2 complexity the paper reports (Figure 7).

Two variants used by the ablation benchmarks:

* ``equal_probability=True`` rounds up/down with probability 1/2
  regardless of the fractional part. The paper notes (Section 6.2) this
  performs much worse; benchmark E7 reproduces that observation.
* ``eager_integer_fixing=True`` fixes *every* currently-integral beta
  after each solve instead of one route per solve; an engineering
  optimisation that slashes LP count, measured in the same benchmark.

The K^2 re-solve loop runs through a warm-started
:class:`~repro.lp.session.LPSession` on small instances (the
``lp_backend="auto"`` default applies :func:`~repro.lp.session.
prefer_session`; pass ``"session"``/``"scipy"`` to force a backend):
each intermediate LP is presolved (every fixed beta shrinks the
program) and seeded with the previous optimal basis. The *final* solve
— the one whose solution becomes the returned allocation — always runs
through the session's cold full-program path, so ``warm_start=True``
and ``warm_start=False`` produce bitwise-identical allocations whenever
their intermediate rounding decisions agree (checked by
``benchmarks/bench_warmstart.py``). ``lp_backend="scipy"`` restores the
pre-session behaviour (fresh ``with_bounds`` copy + HiGHS per solve) as
the escape hatch.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.allocation import Allocation
from repro.core.problem import SteadyStateProblem
from repro.heuristics.base import Heuristic, HeuristicResult, register_heuristic
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.session import LPSession, resolve_lp_backend
from repro.lp.solution import INTEGRALITY_TOL


def _route_residual(platform, pair, residual: dict) -> int:
    """Spare integer connection capacity along ``pair``'s route."""
    route = platform.route(*pair)
    return min(residual[name] for name in route.links)


def _consume(platform, pair, value: int, residual: dict) -> None:
    for name in platform.route(*pair).links:
        residual[name] -= value


def _rounded_value(
    beta_tilde: float,
    rng: np.random.Generator,
    equal_probability: bool,
) -> int:
    """Randomized rounding of one rational beta value."""
    nearest = round(beta_tilde)
    if abs(beta_tilde - nearest) <= INTEGRALITY_TOL:
        return int(nearest)
    base = math.floor(beta_tilde)
    frac = beta_tilde - base
    p_up = 0.5 if equal_probability else frac
    return base + (1 if rng.random() < p_up else 0)


class _LPRRBase(Heuristic):
    """Shared implementation; subclasses pin the rounding probability."""

    equal_probability = False
    option_names = (
        "eager_integer_fixing",
        "lp_backend",
        "lp_engine",
        "share_bases",
        "warm_start",
    )
    uses_lp = True
    deterministic = False

    def _solve(
        self,
        problem: SteadyStateProblem,
        rng: np.random.Generator,
        eager_integer_fixing: bool = False,
        warm_start: bool = True,
        lp_backend: str = "auto",
        lp_engine: str = "revised",
        share_bases: bool = False,
        **kwargs,
    ) -> HeuristicResult:
        platform = problem.platform
        instance = build_lp(problem)
        index = instance.index
        lp_backend = resolve_lp_backend(instance, lp_backend, lp_engine)

        if lp_backend == "session":
            session = LPSession(
                instance,
                warm_start=warm_start,
                engine=lp_engine,
                share_bases=share_bases,
            )
            lb, ub = instance.lb, instance.ub  # mutated in place

            def lp_solve():
                return session.solve()

            def lp_solve_final():
                # Cold full-program solve: identical arithmetic in the
                # warm and cold paths, so the returned allocation is
                # bitwise-comparable across them.
                return session.solve(cold=True)

        else:
            session = None
            lb, ub = instance.lb.copy(), instance.ub.copy()

            def lp_solve():
                return solve_lp_scipy(instance.with_bounds(lb, ub))

            lp_solve_final = lp_solve

        residual = {name: link.max_connect for name, link in platform.links.items()}
        unassigned = list(index.beta_pairs)
        n_solves = 0

        while unassigned:
            solution = lp_solve()
            n_solves += 1

            pick = int(rng.integers(len(unassigned)))
            pair = unassigned.pop(pick)
            self._fix_pair(pair, solution, rng, platform, index, lb, ub, residual)

            if eager_integer_fixing:
                still = []
                for other in unassigned:
                    var = index.beta(*other)
                    value = float(solution.x[var])
                    if abs(value - round(value)) <= INTEGRALITY_TOL:
                        self._fix_pair(
                            other, solution, rng, platform, index, lb, ub, residual
                        )
                    else:
                        still.append(other)
                unassigned = still
            if session is not None:
                instance.invalidate_bounds()

        final = lp_solve_final()
        n_solves += 1
        alloc = Allocation(final.alpha, np.round(final.beta).astype(np.int64))
        meta = {"lp_backend": lp_backend, "lp_engine": lp_engine}
        if session is not None:
            meta["lp_stats"] = session.stats.as_dict()
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=problem.objective_value(alloc),
            allocation=alloc,
            runtime=0.0,
            n_lp_solves=n_solves,
            meta=meta,
        )

    def _fix_pair(
        self, pair, solution, rng, platform, index, lb, ub, residual
    ) -> None:
        var = index.beta(*pair)
        value = _rounded_value(float(solution.x[var]), rng, self.equal_probability)
        value = max(0, min(value, _route_residual(platform, pair, residual)))
        lb[var] = ub[var] = float(value)
        _consume(platform, pair, value, residual)


@register_heuristic
class LPRRHeuristic(_LPRRBase):
    """Paper-faithful LPRR (round up with probability = fractional part)."""

    name = "lprr"
    description = "LPRR: randomized rounding with ~K^2 LP re-solves (Section 5.2.3)"
    equal_probability = False


@register_heuristic
class LPRREqualHeuristic(_LPRRBase):
    """Ablation: round up/down with equal probability (Section 6.2 remark)."""

    name = "lprr-eq"
    description = "LPRR ablation: round up/down with equal probability (Section 6.2)"
    equal_probability = True
