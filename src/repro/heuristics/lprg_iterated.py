"""Iterated LPRG — an extension heuristic beyond the paper.

LPRG applies round-down once and hands the residual capacity to the
greedy. The iterated variant closes the loop instead: after charging the
rounded allocation, it *re-solves the LP on the residual platform*
(with the already-secured throughput folded into the MAXMIN rows) and
rounds again, repeating until rounding adds nothing; only then does the
greedy mop up. Each iteration costs one LP solve, so ``max_iters``
iterations sit between LPRG (1 solve) and LPRR (~K^2 solves) on the
cost/quality spectrum of Figure 7 — the natural "what's between LPRG and
LPRR?" question the paper leaves open.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.problem import SteadyStateProblem
from repro.heuristics.base import Heuristic, HeuristicResult, register_heuristic
from repro.heuristics.greedy import greedy_allocate
from repro.heuristics.lpr import round_down
from repro.heuristics.lprg import charge_ledger
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.platform.cluster import Cluster
from repro.platform.links import BackboneLink
from repro.platform.routing import Route
from repro.platform.topology import CapacityLedger, Platform

#: an iteration that adds less than this much load is considered dry
_PROGRESS_TOL = 1e-7


def residual_platform(ledger: CapacityLedger) -> Platform:
    """Snapshot the ledger as a platform with residual capacities.

    Clusters keep their names and routers; speeds/local capacities come
    from the ledger; backbone links keep their bandwidth but their
    ``max_connect`` becomes the residual connection count. Routes are
    re-pinned to the original paths with re-derived connection caps, so
    explicitly-routed platforms (e.g. the NP-hardness family) survive.
    """
    base = ledger.platform
    clusters = [
        Cluster(c.name, float(ledger.speed[k]), float(ledger.local[k]), c.router)
        for k, c in enumerate(base.clusters)
    ]
    links = [
        BackboneLink(
            name=li.name,
            ends=li.ends,
            bw=li.bw,
            max_connect=int(ledger.connections[name]),
        )
        for name, li in base.links.items()
    ]
    caps = {li.name: li.max_connect for li in links}
    routes = {}
    for pair in base.routed_pairs():
        route = base.route(*pair)
        routes[pair] = Route(
            routers=route.routers,
            links=route.links,
            bandwidth=route.bandwidth,
            connection_cap=(
                min(caps[name] for name in route.links) if route.links else 0
            ),
        )
    return Platform(clusters, base.routers, links, routes=routes)


@register_heuristic
class IteratedLPRGHeuristic(Heuristic):
    """LP -> round down -> charge -> re-solve on residual -> ... -> greedy."""

    name = "lprg-it"
    aliases = ("lprgi", "iterated-lprg")

    def _solve(
        self,
        problem: SteadyStateProblem,
        rng: np.random.Generator,
        max_iters: int = 4,
        **kwargs,
    ) -> HeuristicResult:
        if max_iters < 1:
            raise ValueError(f"max_iters must be >= 1, got {max_iters}")
        platform = problem.platform
        K = platform.n_clusters
        ledger = CapacityLedger(platform)
        total = Allocation.zeros(K)
        n_solves = 0

        for _ in range(max_iters):
            current = residual_platform(ledger)
            sub_problem = SteadyStateProblem(
                current, problem.applications, problem.objective
            )
            relaxed = solve_lp_scipy(
                build_lp(sub_problem, base_throughputs=total.throughputs)
            )
            n_solves += 1
            increment = round_down(sub_problem, relaxed)
            if increment.throughputs.sum() <= _PROGRESS_TOL:
                break
            charge_ledger(ledger, increment)
            total = total.merged_with(increment)

        alloc = greedy_allocate(problem, ledger=ledger, base=total)
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=problem.objective_value(alloc),
            allocation=alloc,
            runtime=0.0,
            n_lp_solves=n_solves,
        )
