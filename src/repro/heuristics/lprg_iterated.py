"""Iterated LPRG — an extension heuristic beyond the paper.

LPRG applies round-down once and hands the residual capacity to the
greedy. The iterated variant closes the loop instead: after charging the
rounded allocation, it *re-solves the LP on the residual platform*
(with the already-secured throughput folded into the MAXMIN rows) and
rounds again, repeating until rounding adds nothing; only then does the
greedy mop up. Each iteration costs one LP solve, so ``max_iters``
iterations sit between LPRG (1 solve) and LPRR (~K^2 solves) on the
cost/quality spectrum of Figure 7 — the natural "what's between LPRG and
LPRR?" question the paper leaves open.

With ``lp_backend="auto"``/``"session"`` the residual re-solves run
through an :class:`~repro.lp.session.LPSession`: instead of
snapshotting the ledger into a fresh ``Platform`` and re-assembling the
whole LP each round (``residual_platform`` + ``build_lp``), the session
keeps one instance and each round rewrites *only* the ``b_ub`` entries
the charged ledger touched — compute/local/connection rows, the MAXMIN
base-throughput rows — plus the per-beta connection-cap upper bounds.
Each round re-solves **cold**: a residual rewrite moves the optimum
wholesale, and measurement shows the previous optimal basis is then a
*worse* starting point than a fresh start (the repair path wanders
through the degenerate residual face), so — unlike LPRR's
one-pin-per-solve chain — basis carry is deliberately not used here
and ``warm_start`` has no effect on this method's session path.
``lp_backend="scipy"`` restores the original rebuild-from-scratch
HiGHS path, which doubles as the equivalence reference in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.problem import SteadyStateProblem
from repro.heuristics.base import Heuristic, HeuristicResult, register_heuristic
from repro.heuristics.greedy import greedy_allocate
from repro.heuristics.lpr import round_down
from repro.heuristics.lprg import charge_ledger
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.session import LPSession, resolve_lp_backend
from repro.platform.cluster import Cluster
from repro.platform.links import BackboneLink
from repro.platform.routing import Route
from repro.platform.topology import CapacityLedger, Platform

#: an iteration that adds less than this much load is considered dry
_PROGRESS_TOL = 1e-7


def residual_platform(ledger: CapacityLedger) -> Platform:
    """Snapshot the ledger as a platform with residual capacities.

    Clusters keep their names and routers; speeds/local capacities come
    from the ledger; backbone links keep their bandwidth but their
    ``max_connect`` becomes the residual connection count. Routes are
    re-pinned to the original paths with re-derived connection caps, so
    explicitly-routed platforms (e.g. the NP-hardness family) survive.
    """
    base = ledger.platform
    clusters = [
        Cluster(c.name, float(ledger.speed[k]), float(ledger.local[k]), c.router)
        for k, c in enumerate(base.clusters)
    ]
    links = [
        BackboneLink(
            name=li.name,
            ends=li.ends,
            bw=li.bw,
            max_connect=int(ledger.connections[name]),
        )
        for name, li in base.links.items()
    ]
    caps = {li.name: li.max_connect for li in links}
    routes = {}
    for pair in base.routed_pairs():
        route = base.route(*pair)
        routes[pair] = Route(
            routers=route.routers,
            links=route.links,
            bandwidth=route.bandwidth,
            connection_cap=(
                min(caps[name] for name in route.links) if route.links else 0
            ),
        )
    return Platform(clusters, base.routers, links, routes=routes)


class _ResidualUpdater:
    """Write a ledger + secured-base state into an LP instance in place.

    Precomputes, once, which ``b_ub`` rows and beta upper bounds the
    ledger can touch; each round is then a handful of vectorised writes
    — the incremental replacement for ``residual_platform`` +
    ``build_lp``.
    """

    def __init__(self, problem: SteadyStateProblem, instance):
        platform = problem.platform
        index = instance.index
        K = platform.n_clusters
        self.instance = instance
        self.rows_compute = np.array(
            [instance.row_id(f"compute[{k}]") for k in range(K)], dtype=int
        )
        self.rows_local = np.array(
            [instance.row_id(f"local[{k}]") for k in range(K)], dtype=int
        )
        self.rows_connect = [
            (name, instance.row_id(f"connect[{name}]"))
            for name in sorted(platform.links)
            if instance.has_row(f"connect[{name}]")
        ]
        payoffs = problem.payoffs
        self.rows_maxmin = (
            [
                (k, instance.row_id(f"maxmin[{k}]"), float(payoffs[k]))
                for k in range(K)
                if instance.has_row(f"maxmin[{k}]")
            ]
            if index.with_t
            else []
        )
        self.beta_caps = [
            (index.beta(k, l), tuple(platform.route(k, l).links))
            for (k, l) in index.beta_pairs
        ]

    def apply(self, ledger: CapacityLedger, base_throughputs: np.ndarray) -> None:
        inst = self.instance
        b = inst.b_ub
        b[self.rows_compute] = ledger.speed
        b[self.rows_local] = ledger.local
        for name, row in self.rows_connect:
            b[row] = float(ledger.connections[name])
        for k, row, payoff in self.rows_maxmin:
            b[row] = payoff * float(base_throughputs[k])
        for col, links in self.beta_caps:
            inst.ub[col] = float(min(ledger.connections[name] for name in links))
        inst.invalidate_bounds()


@register_heuristic
class IteratedLPRGHeuristic(Heuristic):
    """LP -> round down -> charge -> re-solve on residual -> ... -> greedy."""

    name = "lprg-it"
    aliases = ("lprgi", "iterated-lprg")
    description = "iterated LPRG: residual LP re-solves between roundings (extension)"
    option_names = (
        "lp_backend",
        "lp_engine",
        "max_iters",
        "share_bases",
        "warm_start",
    )
    uses_lp = True
    deterministic = True

    def _solve(
        self,
        problem: SteadyStateProblem,
        rng: np.random.Generator,
        max_iters: int = 4,
        warm_start: bool = True,
        lp_backend: str = "auto",
        lp_engine: str = "revised",
        share_bases: bool = False,
        **kwargs,
    ) -> HeuristicResult:
        if max_iters < 1:
            raise ValueError(f"max_iters must be >= 1, got {max_iters}")
        platform = problem.platform
        K = platform.n_clusters
        ledger = CapacityLedger(platform)
        total = Allocation.zeros(K)
        n_solves = 0

        instance = build_lp(problem)
        lp_backend = resolve_lp_backend(instance, lp_backend, lp_engine)
        meta = {"lp_backend": lp_backend, "lp_engine": lp_engine}

        if lp_backend == "session":
            session = LPSession(
                instance,
                warm_start=warm_start,
                engine=lp_engine,
                share_bases=share_bases,
            )
            updater = _ResidualUpdater(problem, instance)
            for _ in range(max_iters):
                updater.apply(ledger, total.throughputs)
                # Cold on purpose: after a residual rewrite the carried
                # basis starts further from the new optimum than the
                # all-slack vertex does (see module docstring).
                relaxed = session.solve(warm_basis=None)
                n_solves += 1
                increment = round_down(problem, relaxed)
                if increment.throughputs.sum() <= _PROGRESS_TOL:
                    break
                charge_ledger(ledger, increment)
                total = total.merged_with(increment)
            meta["lp_stats"] = session.stats.as_dict()
        else:
            for _ in range(max_iters):
                current = residual_platform(ledger)
                sub_problem = SteadyStateProblem(
                    current, problem.applications, problem.objective
                )
                relaxed = solve_lp_scipy(
                    build_lp(sub_problem, base_throughputs=total.throughputs)
                )
                n_solves += 1
                increment = round_down(sub_problem, relaxed)
                if increment.throughputs.sum() <= _PROGRESS_TOL:
                    break
                charge_ledger(ledger, increment)
                total = total.merged_with(increment)

        alloc = greedy_allocate(problem, ledger=ledger, base=total)
        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=problem.objective_value(alloc),
            allocation=alloc,
            runtime=0.0,
            n_lp_solves=n_solves,
            meta=meta,
        )
