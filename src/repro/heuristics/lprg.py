"""LPRG: LPR base + greedy refinement on the residual platform
(Section 5.2.2).

"LPR gives the basic framework of the solution, while the Greedy
heuristic refines it": after rounding the rational LP down, whatever
compute speed, local-link capacity and backbone connections remain
unclaimed are handed to G, warm-started with the rounded allocation so
its fairness key sees the payoff each application has already received.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.heuristics.base import Heuristic, HeuristicResult, register_heuristic
from repro.heuristics.greedy import greedy_allocate
from repro.heuristics.lpr import round_down
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.platform.topology import CapacityLedger

from repro.core.allocation import Allocation


def charge_ledger(ledger: CapacityLedger, alloc: Allocation) -> None:
    """Subtract an existing allocation's resource usage from a ledger.

    Float noise from the LP is clamped: the ledger tolerates overdrafts
    up to its ``TOL`` and floors residuals at zero.
    """
    K = alloc.n_clusters
    for k in range(K):
        local = float(alloc.alpha[k, k])
        if local:
            ledger.commit_local(k, min(local, ledger.speed[k]))
    for k, l, amount, n_conn in alloc.remote_transfers():
        ledger.charge_transfer(
            k,
            l,
            min(amount, ledger.speed[l], ledger.local[k], ledger.local[l]),
            n_conn,
        )


@register_heuristic
class LPRGHeuristic(Heuristic):
    """Registry wrapper: LP -> round down -> greedy top-up."""

    name = "lprg"
    description = "LPRG: LPR + greedy top-up on residual capacity (Section 5.2.2)"
    uses_lp = True
    deterministic = True

    def _solve(
        self, problem: SteadyStateProblem, rng: np.random.Generator, **kwargs
    ) -> HeuristicResult:
        instance = build_lp(problem)
        relaxed = solve_lp_scipy(instance)
        base = round_down(problem, relaxed)

        ledger = CapacityLedger(problem.platform)
        charge_ledger(ledger, base)
        alloc = greedy_allocate(problem, ledger=ledger, base=base)

        return HeuristicResult(
            method=self.name,
            objective=problem.objective.name,
            value=problem.objective_value(alloc),
            allocation=alloc,
            runtime=0.0,
            n_lp_solves=1,
            meta={
                "relaxation_value": relaxed.value,
                "lpr_value": problem.objective_value(base),
            },
        )
