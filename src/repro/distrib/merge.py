"""Deterministic shard merge: N shard artifacts -> one campaign result.

The merge layer is deliberately dumb: it never recomputes a row. Each
completed shard left an accumulator-state sidecar (its whole aggregate
as O(accumulator) JSON) and, optionally, a row-sink file in task order.
:func:`merge_shards` validates that the sidecars describe one complete
campaign — same campaign fingerprint, contiguous task coverage, every
shard fully folded — and then:

* combines the accumulator states in task order through
  :meth:`~repro.parallel.stream.SweepAccumulator.merge`, which is
  **exactly** associative (integer-exact counts/extrema/histogram bins
  and integer-mantissa moment sums), so the merged aggregate equals the
  serial ``jobs=1`` fold bit for bit, for any shard count or backend;
* concatenates the per-shard row sinks in shard (= task) order into the
  campaign's final row-sink file, reproducing the byte stream a
  single-sink serial run writes.

A shard that crashed mid-run fails validation loudly (its sidecar
covers fewer tasks than its manifest claims) — re-run it with
``resume=True`` and merge again; the merge result is independent of how
many times any shard crashed and resumed.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Sequence

from repro.distrib.manifest import ShardError, ShardManifest
from repro.parallel.stream import SweepAccumulator


def _read_sidecar(manifest: ShardManifest) -> "tuple[dict | None, str | None]":
    """Read one shard's sidecar: ``(state, problem)``.

    ``problem`` is a human-oriented description when the shard is
    merely *unfinished* (no sidecar yet, or folded fewer tasks than its
    range) — conditions ``resume`` fixes. Genuine corruption (invalid
    JSON, a foreign fingerprint) raises instead: no amount of resuming
    makes a foreign artifact mergeable.
    """
    path = manifest.state_path
    try:
        record = json.loads(path.read_text())
    except FileNotFoundError:
        return None, f"no state sidecar at {path} (shard never ran)"
    except json.JSONDecodeError as exc:
        raise ShardError(
            f"shard {manifest.shard_index} state sidecar {path} is not "
            f"valid JSON: {exc}"
        )
    fingerprint = record.get("fingerprint")
    if fingerprint not in ("", manifest.fingerprint):
        raise ShardError(
            f"shard {manifest.shard_index} state sidecar {path} belongs to "
            f"a different shard/campaign (fingerprint {fingerprint!r}); "
            "refusing to merge"
        )
    state = record.get("state") or {}
    n_folded = int(state.get("n_folded", 0))
    if n_folded != manifest.n_shard_tasks:
        return state, (
            f"incomplete: folded {n_folded} of "
            f"{manifest.n_shard_tasks} tasks"
        )
    return state, None


def load_shard_state(manifest: ShardManifest) -> dict:
    """Read + validate one shard's accumulator-state sidecar.

    Checks the sidecar exists, carries the shard's own fingerprint (so a
    stale artifact from a re-planned campaign cannot slip in) and covers
    the shard's full task range (an incomplete shard means a crashed or
    still-running host — merging it would silently drop results).
    """
    state, problem = _read_sidecar(manifest)
    if problem is not None:
        raise ShardError(
            f"shard {manifest.shard_index} is not mergeable — {problem}; "
            "run the shard (or resume it) before merging"
        )
    return state


def merge_accumulators(
    states: "Sequence[SweepAccumulator | dict]",
) -> SweepAccumulator:
    """Fold per-part aggregates (objects or state dicts) left to right.

    Because :meth:`SweepAccumulator.merge` is exactly associative, the
    result is bitwise the sequential fold of the concatenated row
    streams — this is the algebraic core :func:`merge_shards` (and the
    partition property test) exercises.
    """
    merged = SweepAccumulator()
    for state in states:
        part = (
            state
            if isinstance(state, SweepAccumulator)
            else SweepAccumulator.from_state(state)
        )
        merged.merge(part)
    return merged


def _validate_campaign(manifests: Sequence[ShardManifest]) -> list[ShardManifest]:
    """Check the manifests form one complete campaign partition.

    Validation is *coverage-based*, not index-based: the manifests must
    share a campaign fingerprint and task count, carry distinct shard
    indices, and their ranges — sorted by ``task_start`` — must tile
    ``[0, n_tasks)`` exactly. Nothing requires the indices to be
    ``0..N-1`` or the per-manifest ``n_shards`` bookkeeping to agree:
    straggler re-planning (:func:`repro.distrib.supervise.steal_shard`)
    legitimately refines the partition mid-campaign, appending
    fresh-index manifests whose ranges split a victim's. Merge order is
    task order, which is what makes the merged fold bitwise-serial.
    """
    if not manifests:
        raise ShardError("cannot merge zero shard manifests")
    ordered = sorted(manifests, key=lambda m: (m.task_start, m.task_stop))
    first = ordered[0]
    seen_indices: dict[int, ShardManifest] = {}
    for manifest in ordered:
        if manifest.campaign_fingerprint != first.campaign_fingerprint:
            raise ShardError(
                f"shard {manifest.shard_index} belongs to a different "
                f"campaign (fingerprint "
                f"{manifest.campaign_fingerprint!r} != "
                f"{first.campaign_fingerprint!r})"
            )
        if manifest.n_tasks != first.n_tasks:
            raise ShardError(
                f"shard {manifest.shard_index} disagrees on the campaign "
                f"shape ({manifest.n_tasks} tasks vs {first.n_tasks})"
            )
        if manifest.shard_index in seen_indices:
            raise ShardError(
                f"duplicate shard index {manifest.shard_index}: two "
                "manifests would share the same artifact files"
            )
        seen_indices[manifest.shard_index] = manifest
    expected_start = 0
    for manifest in ordered:
        if manifest.task_start > expected_start:
            raise ShardError(
                f"shard ranges leave a gap: tasks "
                f"[{expected_start}, {manifest.task_start}) are covered by "
                "no shard"
            )
        if manifest.task_start < expected_start:
            raise ShardError(
                f"shard ranges overlap: shard {manifest.shard_index} "
                f"starts at {manifest.task_start} inside an already "
                f"covered range (next uncovered task is {expected_start})"
            )
        expected_start = manifest.task_stop
    if expected_start != first.n_tasks:
        raise ShardError(
            f"shard ranges cover only {expected_start} of {first.n_tasks} "
            f"tasks: tasks [{expected_start}, {first.n_tasks}) are covered "
            "by no shard"
        )
    return ordered


def concatenate_row_sinks(
    sink_paths: "Sequence[str | Path]", out_path: "str | Path"
) -> Path:
    """Concatenate per-shard row-sink files into the final sink path.

    Shard sinks are written in task order within each shard and shards
    partition the task list contiguously, so plain concatenation (CSV:
    keeping only the first file's header line) reproduces byte-for-byte
    the file a single-sink serial run writes.
    """
    out_path = Path(out_path)
    is_csv = out_path.suffix.lower() == ".csv"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with out_path.open("wb") as out:
        for i, sink_path in enumerate(sink_paths):
            sink_path = Path(sink_path)
            if not sink_path.exists():
                raise ShardError(
                    f"shard row sink {sink_path} is missing; was the shard "
                    "run with its manifest's row_sink_path?"
                )
            with sink_path.open("rb") as src:
                if is_csv and i > 0:
                    src.readline()  # drop the repeated header
                shutil.copyfileobj(src, out)
    return out_path


def merge_shards(
    manifests: Sequence[ShardManifest],
    row_sink: "str | Path | None" = None,
) -> SweepAccumulator:
    """Combine completed shards into the campaign's aggregate.

    Validates campaign identity and completeness (see
    :func:`load_shard_state`), merges the accumulator sidecars in shard
    order, and — when ``row_sink`` is given — concatenates the per-shard
    sink files into it. The returned :class:`SweepAccumulator` (and the
    sink file) are bitwise-identical to the serial ``jobs=1`` streamed
    sweep of the same campaign, whatever shard count, executor backend
    or per-shard crash/resume pattern produced the artifacts.
    """
    ordered = _validate_campaign(manifests)
    states = []
    unfinished: list[tuple[ShardManifest, str]] = []
    for manifest in ordered:
        state, problem = _read_sidecar(manifest)
        if problem is not None:
            unfinished.append((manifest, problem))
        else:
            states.append(state)
    if unfinished:
        lines = []
        for manifest, problem in unfinished:
            lines.append(
                f"  shard {manifest.shard_index} (tasks "
                f"[{manifest.task_start}, {manifest.task_stop})): {problem}"
                "\n    finish it with: python -m repro.experiments shard "
                f"run {manifest.manifest_path} --resume"
            )
        raise ShardError(
            f"campaign is incomplete: {len(unfinished)} of {len(ordered)} "
            "shard(s) unfinished:\n" + "\n".join(lines)
        )
    merged = merge_accumulators([s["aggregate"] for s in states])
    expected_tasks = ordered[0].n_tasks
    if merged.n_tasks != expected_tasks:  # pragma: no cover - defense
        raise ShardError(
            f"merged aggregate covers {merged.n_tasks} of "
            f"{expected_tasks} tasks"
        )
    if row_sink is not None:
        sinks = [m.row_sink_path for m in ordered]
        missing = [m.shard_index for m, s in zip(ordered, sinks) if s is None]
        if missing:
            raise ShardError(
                f"cannot assemble a row sink: shards {missing} were "
                "planned without row_sink_path"
            )
        concatenate_row_sinks(sinks, row_sink)
    return merged
