"""Deterministic shard merge: N shard artifacts -> one campaign result.

The merge layer is deliberately dumb: it never recomputes a row. Each
completed shard left an accumulator-state sidecar (its whole aggregate
as O(accumulator) JSON) and, optionally, a row-sink file in task order.
:func:`merge_shards` validates that the sidecars describe one complete
campaign — same campaign fingerprint, contiguous task coverage, every
shard fully folded — and then:

* combines the accumulator states in shard order through
  :meth:`~repro.parallel.stream.SweepAccumulator.merge`, which is
  **exactly** associative (integer-exact counts/extrema/histogram bins
  and integer-mantissa moment sums), so the merged aggregate equals the
  serial ``jobs=1`` fold bit for bit, for any shard count or backend;
* concatenates the per-shard row sinks in shard (= task) order into the
  campaign's final row-sink file, reproducing the byte stream a
  single-sink serial run writes.

A shard that crashed mid-run fails validation loudly (its sidecar
covers fewer tasks than its manifest claims) — re-run it with
``resume=True`` and merge again; the merge result is independent of how
many times any shard crashed and resumed.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Sequence

from repro.distrib.manifest import ShardError, ShardManifest
from repro.parallel.stream import SweepAccumulator


def load_shard_state(manifest: ShardManifest) -> dict:
    """Read + validate one shard's accumulator-state sidecar.

    Checks the sidecar exists, carries the shard's own fingerprint (so a
    stale artifact from a re-planned campaign cannot slip in) and covers
    the shard's full task range (an incomplete shard means a crashed or
    still-running host — merging it would silently drop results).
    """
    path = manifest.state_path
    try:
        record = json.loads(path.read_text())
    except FileNotFoundError:
        raise ShardError(
            f"shard {manifest.shard_index} has no state sidecar at {path}; "
            "run the shard (or resume it) before merging"
        ) from None
    except json.JSONDecodeError as exc:
        raise ShardError(
            f"shard {manifest.shard_index} state sidecar {path} is not "
            f"valid JSON: {exc}"
        )
    fingerprint = record.get("fingerprint")
    if fingerprint not in ("", manifest.fingerprint):
        raise ShardError(
            f"shard {manifest.shard_index} state sidecar {path} belongs to "
            f"a different shard/campaign (fingerprint {fingerprint!r}); "
            "refusing to merge"
        )
    state = record.get("state") or {}
    n_folded = int(state.get("n_folded", 0))
    if n_folded != manifest.n_shard_tasks:
        raise ShardError(
            f"shard {manifest.shard_index} is incomplete: folded "
            f"{n_folded} of {manifest.n_shard_tasks} tasks; re-run it "
            "with resume before merging"
        )
    return state


def merge_accumulators(
    states: "Sequence[SweepAccumulator | dict]",
) -> SweepAccumulator:
    """Fold per-part aggregates (objects or state dicts) left to right.

    Because :meth:`SweepAccumulator.merge` is exactly associative, the
    result is bitwise the sequential fold of the concatenated row
    streams — this is the algebraic core :func:`merge_shards` (and the
    partition property test) exercises.
    """
    merged = SweepAccumulator()
    for state in states:
        part = (
            state
            if isinstance(state, SweepAccumulator)
            else SweepAccumulator.from_state(state)
        )
        merged.merge(part)
    return merged


def _validate_campaign(manifests: Sequence[ShardManifest]) -> list[ShardManifest]:
    if not manifests:
        raise ShardError("cannot merge zero shard manifests")
    ordered = sorted(manifests, key=lambda m: m.shard_index)
    first = ordered[0]
    indices = [m.shard_index for m in ordered]
    if indices != list(range(first.n_shards)):
        raise ShardError(
            f"expected shard indices 0..{first.n_shards - 1}, got {indices}"
        )
    expected_start = 0
    for manifest in ordered:
        if manifest.campaign_fingerprint != first.campaign_fingerprint:
            raise ShardError(
                f"shard {manifest.shard_index} belongs to a different "
                f"campaign (fingerprint "
                f"{manifest.campaign_fingerprint!r} != "
                f"{first.campaign_fingerprint!r})"
            )
        if (manifest.n_shards, manifest.n_tasks) != (
            first.n_shards, first.n_tasks
        ):
            raise ShardError(
                f"shard {manifest.shard_index} disagrees on the campaign "
                f"shape ({manifest.n_shards} shards / {manifest.n_tasks} "
                f"tasks vs {first.n_shards} / {first.n_tasks})"
            )
        if manifest.task_start != expected_start:
            raise ShardError(
                f"shard ranges are not contiguous: shard "
                f"{manifest.shard_index} starts at {manifest.task_start}, "
                f"expected {expected_start}"
            )
        expected_start = manifest.task_stop
    if expected_start != first.n_tasks:
        raise ShardError(
            f"shard ranges cover {expected_start} of {first.n_tasks} tasks"
        )
    return ordered


def concatenate_row_sinks(
    sink_paths: "Sequence[str | Path]", out_path: "str | Path"
) -> Path:
    """Concatenate per-shard row-sink files into the final sink path.

    Shard sinks are written in task order within each shard and shards
    partition the task list contiguously, so plain concatenation (CSV:
    keeping only the first file's header line) reproduces byte-for-byte
    the file a single-sink serial run writes.
    """
    out_path = Path(out_path)
    is_csv = out_path.suffix.lower() == ".csv"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with out_path.open("wb") as out:
        for i, sink_path in enumerate(sink_paths):
            sink_path = Path(sink_path)
            if not sink_path.exists():
                raise ShardError(
                    f"shard row sink {sink_path} is missing; was the shard "
                    "run with its manifest's row_sink_path?"
                )
            with sink_path.open("rb") as src:
                if is_csv and i > 0:
                    src.readline()  # drop the repeated header
                shutil.copyfileobj(src, out)
    return out_path


def merge_shards(
    manifests: Sequence[ShardManifest],
    row_sink: "str | Path | None" = None,
) -> SweepAccumulator:
    """Combine completed shards into the campaign's aggregate.

    Validates campaign identity and completeness (see
    :func:`load_shard_state`), merges the accumulator sidecars in shard
    order, and — when ``row_sink`` is given — concatenates the per-shard
    sink files into it. The returned :class:`SweepAccumulator` (and the
    sink file) are bitwise-identical to the serial ``jobs=1`` streamed
    sweep of the same campaign, whatever shard count, executor backend
    or per-shard crash/resume pattern produced the artifacts.
    """
    ordered = _validate_campaign(manifests)
    states = [load_shard_state(m) for m in ordered]
    merged = merge_accumulators([s["aggregate"] for s in states])
    expected_tasks = ordered[0].n_tasks
    if merged.n_tasks != expected_tasks:  # pragma: no cover - defense
        raise ShardError(
            f"merged aggregate covers {merged.n_tasks} of "
            f"{expected_tasks} tasks"
        )
    if row_sink is not None:
        sinks = [m.row_sink_path for m in ordered]
        missing = [m.shard_index for m, s in zip(ordered, sinks) if s is None]
        if missing:
            raise ShardError(
                f"cannot assemble a row sink: shards {missing} were "
                "planned without row_sink_path"
            )
        concatenate_row_sinks(sinks, row_sink)
    return merged
