"""Shard manifests: the self-describing unit of multi-host campaigns.

A :class:`ShardManifest` is everything one host needs to run its slice
of a sweep campaign and nothing more: the full sweep definition (grid
settings, scenario, method/objective lists, replicate count and the
root :class:`numpy.random.SeedSequence` identity), the shard's
contiguous task-index range, and the on-disk paths its outputs land at
(per-shard checkpoint + accumulator-state sidecar, optional per-shard
row sink). Manifests are plain JSON files, so "dispatch a shard" is
"copy a file and run ``python -m repro.experiments shard run
<manifest.json>``" — which is exactly what the ``subprocess`` executor
backend does, standing in for a remote host.

Determinism
-----------
Sharding **never touches seed derivation**: the manifest carries the
campaign's root seed (entropy + spawn key + pool size), each shard
rebuilds the *full* ordered task list with the PR-1 stateless spawn
rule (``SeedSequence(root, spawn_key=(setting, replicate))``, see
:func:`repro.util.rng.child_seed_sequence`) and then slices its
``[task_start, task_stop)`` range. A task's seed — and therefore its
rows — is the same whether the campaign runs in one process, N pool
workers, or N hosts, for any shard count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.parallel.checkpoint import campaign_fingerprint
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import Scenario, Setting
    from repro.parallel.sweep import SweepTask

#: manifest schema version (bump on incompatible layout changes)
MANIFEST_VERSION = 1


class ShardError(ReproError):
    """A shard manifest, shard run, or shard merge is invalid."""


def plan_shards(n_tasks: int, n_shards: int) -> list[tuple[int, int]]:
    """Partition ``n_tasks`` into ``n_shards`` contiguous index ranges.

    Balanced: the first ``n_tasks % n_shards`` shards carry one extra
    task. More shards than tasks is legal — the surplus shards get empty
    ranges (they still run, producing empty-but-valid outputs, so a
    fixed fleet size never needs campaign-aware special-casing).

    >>> plan_shards(7, 3)
    [(0, 3), (3, 5), (5, 7)]
    >>> plan_shards(2, 4)
    [(0, 1), (1, 2), (2, 2), (2, 2)]
    """
    if n_tasks < 0:
        raise ShardError(f"n_tasks must be >= 0, got {n_tasks}")
    if n_shards < 1:
        raise ShardError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(n_tasks, n_shards)
    ranges = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _setting_to_dict(setting: "Setting") -> dict:
    return setting.as_dict()


def _setting_from_dict(data: dict) -> "Setting":
    from repro.experiments.config import Setting

    return Setting(
        k=int(data["K"]),
        connectivity=float(data["connectivity"]),
        heterogeneity=float(data["heterogeneity"]),
        mean_g=float(data["mean_g"]),
        mean_bw=float(data["mean_bw"]),
        mean_maxcon=float(data["mean_maxcon"]),
    )


def _scenario_to_dict(scenario: "Scenario") -> dict:
    return {
        "speed": scenario.speed,
        "apply_speed_heterogeneity": scenario.apply_speed_heterogeneity,
        "payoff_low": scenario.payoff_low,
        "payoff_high": scenario.payoff_high,
        "platforms_per_setting": scenario.platforms_per_setting,
    }


def _scenario_from_dict(data: dict) -> "Scenario":
    from repro.experiments.config import Scenario

    return Scenario(
        speed=float(data["speed"]),
        apply_speed_heterogeneity=bool(data["apply_speed_heterogeneity"]),
        payoff_low=float(data["payoff_low"]),
        payoff_high=float(data["payoff_high"]),
        platforms_per_setting=int(data["platforms_per_setting"]),
    )


def _seed_to_dict(root: np.random.SeedSequence) -> dict:
    entropy = root.entropy
    return {
        # JSON integers are arbitrary-precision in Python, so the (often
        # 128-bit) entropy round-trips exactly
        "entropy": list(entropy) if isinstance(entropy, (list, tuple)) else entropy,
        "entropy_is_list": isinstance(entropy, (list, tuple)),
        "spawn_key": list(root.spawn_key),
        "pool_size": root.pool_size,
    }


def _seed_from_dict(data: dict) -> np.random.SeedSequence:
    entropy = data["entropy"]
    if data.get("entropy_is_list"):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return np.random.SeedSequence(
        entropy=entropy,
        spawn_key=tuple(int(k) for k in data["spawn_key"]),
        pool_size=int(data["pool_size"]),
    )


@dataclass(frozen=True)
class ShardManifest:
    """One shard of one sweep campaign, ready to ship to a host.

    ``campaign_fingerprint`` is the PR-1 :func:`repro.parallel.sweep.
    sweep_fingerprint` of the whole campaign — identical across the
    campaign's manifests, so the merge layer can refuse to combine
    shards of different campaigns. ``fingerprint`` additionally pins the
    shard's own identity (index + task-range *start*), guarding each
    per-shard checkpoint against resuming into the wrong slice.
    ``task_stop`` is deliberately **not** part of the fingerprint:
    straggler re-planning (:func:`repro.distrib.supervise.steal_shard`)
    shrinks a slow shard's range in place, and the truncated shard must
    keep resuming from its own checkpoint — every record it already
    wrote still belongs to the shrunken range's prefix, so identity is
    ``(campaign, index, start)``, not the movable stop.
    """

    campaign: dict
    campaign_fingerprint: str
    n_tasks: int
    n_shards: int
    shard_index: int
    task_start: int
    task_stop: int
    checkpoint_path: str
    row_sink_path: "str | None" = None

    def __post_init__(self):
        if not 0 <= self.shard_index < self.n_shards:
            raise ShardError(
                f"shard_index {self.shard_index} out of range for "
                f"{self.n_shards} shards"
            )
        if not 0 <= self.task_start <= self.task_stop <= self.n_tasks:
            raise ShardError(
                f"task range [{self.task_start}, {self.task_stop}) invalid "
                f"for {self.n_tasks} tasks"
            )

    # ------------------------------------------------------------------
    @property
    def n_shard_tasks(self) -> int:
        return self.task_stop - self.task_start

    @property
    def fingerprint(self) -> str:
        """Checkpoint fingerprint of this shard (campaign + slice)."""
        return campaign_fingerprint(
            {
                "campaign": self.campaign_fingerprint,
                "shard_index": self.shard_index,
                "task_start": self.task_start,
            }
        )

    @property
    def state_path(self) -> Path:
        """The accumulator-state sidecar the shard run leaves behind
        (see :class:`repro.parallel.checkpoint.CampaignCheckpoint`)."""
        path = Path(self.checkpoint_path)
        return path.with_name(path.name + ".state")

    @property
    def heartbeat_path(self) -> Path:
        """Liveness/progress sidecar a running shard refreshes per task
        (read by the supervisor's straggler detection and the
        ``shard status`` CLI)."""
        return Path(self.checkpoint_path).with_suffix(".heartbeat")

    @property
    def shard_dir(self) -> Path:
        """The campaign directory every shard artifact lives in."""
        return Path(self.checkpoint_path).parent

    @property
    def manifest_path(self) -> Path:
        """This shard's canonical manifest file location."""
        return manifest_path_for(self.shard_dir, self.shard_index)

    # ------------------------------------------------------------------
    def rebuild_sweep(self) -> dict:
        """The campaign definition as live objects (settings, scenario,
        methods, objectives, n_platforms, root seed)."""
        campaign = self.campaign
        return {
            "settings": [_setting_from_dict(s) for s in campaign["settings"]],
            "scenario": _scenario_from_dict(campaign["scenario"]),
            "methods": tuple(campaign["methods"]),
            "objectives": tuple(campaign["objectives"]),
            "n_platforms": int(campaign["n_platforms"]),
            "root": _seed_from_dict(campaign["seed"]),
        }

    def shard_tasks(self) -> "list[SweepTask]":
        """This shard's slice of the campaign's ordered task list.

        The *full* list is rebuilt first (stateless seed spawning makes
        that pure arithmetic, no RNG draws), then sliced — so the tasks,
        their ids and their seeds are exactly those of the unsharded
        campaign.
        """
        from repro.parallel.sweep import build_sweep_tasks

        sweep = self.rebuild_sweep()
        tasks = build_sweep_tasks(
            sweep["settings"],
            sweep["scenario"],
            sweep["methods"],
            sweep["objectives"],
            sweep["n_platforms"],
            sweep["root"],
        )
        if len(tasks) != self.n_tasks:
            raise ShardError(
                f"manifest claims {self.n_tasks} campaign tasks but the "
                f"sweep definition expands to {len(tasks)}"
            )
        return tasks[self.task_start : self.task_stop]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "shard-manifest",
            "version": MANIFEST_VERSION,
            "campaign": self.campaign,
            "campaign_fingerprint": self.campaign_fingerprint,
            "n_tasks": self.n_tasks,
            "n_shards": self.n_shards,
            "shard_index": self.shard_index,
            "task_start": self.task_start,
            "task_stop": self.task_stop,
            "checkpoint_path": self.checkpoint_path,
            "row_sink_path": self.row_sink_path,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardManifest":
        if data.get("kind") != "shard-manifest":
            raise ShardError(
                f"not a shard manifest (kind={data.get('kind')!r})"
            )
        if data.get("version") != MANIFEST_VERSION:
            raise ShardError(
                f"unsupported shard manifest version {data.get('version')!r} "
                f"(expected {MANIFEST_VERSION})"
            )
        return cls(
            campaign=data["campaign"],
            campaign_fingerprint=str(data["campaign_fingerprint"]),
            n_tasks=int(data["n_tasks"]),
            n_shards=int(data["n_shards"]),
            shard_index=int(data["shard_index"]),
            task_start=int(data["task_start"]),
            task_stop=int(data["task_stop"]),
            checkpoint_path=str(data["checkpoint_path"]),
            row_sink_path=(
                None
                if data.get("row_sink_path") is None
                else str(data["row_sink_path"])
            ),
        )

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "ShardManifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise ShardError(f"shard manifest {path} does not exist") from None
        except json.JSONDecodeError as exc:
            raise ShardError(f"shard manifest {path} is not valid JSON: {exc}")
        return cls.from_dict(data)


def shard_artifact_name(shard_index: int, suffix: str) -> str:
    """Canonical shard-local file name (zero-padded for stable sorts)."""
    return f"shard-{shard_index:04d}{suffix}"


def build_shard_manifests(
    settings: "Sequence[Setting]",
    scenario: "Scenario",
    methods: Sequence[str],
    objectives: Sequence[str],
    n_platforms: int,
    root: np.random.SeedSequence,
    n_shards: int,
    shard_dir: "str | Path",
    row_sink: "str | Path | None" = None,
) -> list[ShardManifest]:
    """Plan a campaign into per-shard manifests under ``shard_dir``.

    One manifest per shard; checkpoint/sidecar/row-sink paths all live
    inside ``shard_dir``. ``row_sink`` is the campaign's *final* sink
    path — only its suffix matters here (each shard writes its own
    ``shard-NNNN.rows.<suffix>`` file; the merge layer concatenates them
    into the final path in task order).
    """
    from repro.parallel.sweep import build_sweep_tasks, sweep_fingerprint

    shard_dir = Path(shard_dir)
    tasks = build_sweep_tasks(
        settings, scenario, methods, objectives, n_platforms, root
    )
    fingerprint = sweep_fingerprint(
        settings, scenario, methods, objectives, n_platforms, root
    )
    campaign = {
        "settings": [_setting_to_dict(s) for s in settings],
        "scenario": _scenario_to_dict(scenario),
        "methods": list(methods),
        "objectives": list(objectives),
        "n_platforms": int(n_platforms),
        "seed": _seed_to_dict(root),
    }
    sink_suffix = None
    if row_sink is not None:
        suffix = Path(row_sink).suffix.lower()
        sink_suffix = ".rows.csv" if suffix == ".csv" else ".rows.jsonl"
    manifests = []
    for index, (start, stop) in enumerate(plan_shards(len(tasks), n_shards)):
        manifests.append(
            ShardManifest(
                campaign=campaign,
                campaign_fingerprint=fingerprint,
                n_tasks=len(tasks),
                n_shards=n_shards,
                shard_index=index,
                task_start=start,
                task_stop=stop,
                checkpoint_path=str(
                    shard_dir / shard_artifact_name(index, ".ckpt")
                ),
                row_sink_path=(
                    None
                    if sink_suffix is None
                    else str(shard_dir / shard_artifact_name(index, sink_suffix))
                ),
            )
        )
    return manifests


def manifest_path_for(shard_dir: "str | Path", shard_index: int) -> Path:
    """Where a shard's manifest file lives inside its campaign dir."""
    return Path(shard_dir) / shard_artifact_name(shard_index, ".manifest.json")


def write_manifests(
    manifests: Sequence[ShardManifest], shard_dir: "str | Path"
) -> list[Path]:
    """Persist every manifest to its canonical path; returns the paths."""
    return [
        manifest.save(manifest_path_for(shard_dir, manifest.shard_index))
        for manifest in manifests
    ]


def load_manifests(shard_dir: "str | Path") -> list[ShardManifest]:
    """Load every ``shard-*.manifest.json`` under ``shard_dir``."""
    shard_dir = Path(shard_dir)
    paths = sorted(shard_dir.glob("shard-*.manifest.json"))
    if not paths:
        raise ShardError(f"no shard manifests found under {shard_dir}")
    return [ShardManifest.load(p) for p in paths]
