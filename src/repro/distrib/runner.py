"""Single-shard execution: one manifest in, durable artifacts out.

:func:`run_shard` is the unit every executor backend (and the
``shard run`` CLI) drives: it rebuilds the shard's task slice from the
manifest, runs it through the PR-1 :class:`~repro.parallel.engine.
CampaignEngine` with the PR-4 streaming fold, and leaves three durable
artifacts next to the manifest:

* ``shard-NNNN.ckpt`` — the incremental per-task checkpoint (JSON
  lines), giving a killed shard exact resume;
* ``shard-NNNN.ckpt.state`` — the accumulator-state sidecar written by
  the fold's final snapshot: the shard's entire aggregate as
  O(accumulator) JSON, which is all the merge layer ever reads;
* ``shard-NNNN.rows.jsonl``/``.csv`` — the shard's raw rows in task
  order (only when the campaign asked for a row sink).

Every shard runs its tasks inline (``jobs=1`` semantics): the shard is
the unit of parallelism, and keeping the intra-shard path identical to
the serial reference keeps the determinism argument one-dimensional.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.distrib.manifest import ShardManifest, ShardError
from repro.parallel.checkpoint import CampaignCheckpoint
from repro.parallel.engine import CampaignEngine
from repro.parallel.stream import (
    StreamFold,
    SweepAccumulator,
    open_row_sink,
    snapshot_compatible,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path


def run_shard(
    manifest: "ShardManifest | str | Path",
    resume: bool = False,
    snapshot_every: int = 32,
) -> dict:
    """Execute one shard to completion; returns a JSON-able summary.

    ``resume=True`` picks up from the shard's own checkpoint (guarded by
    the shard fingerprint, so a manifest edit or a foreign checkpoint
    fails loudly); ``resume=False`` starts the shard fresh, truncating
    any stale artifacts. Either way the call is idempotent once the
    shard completed: the artifacts on disk describe the same task slice
    with the same seeds, bit for bit.
    """
    if not isinstance(manifest, ShardManifest):
        manifest = ShardManifest.load(manifest)
    from repro.experiments.persistence import row_from_dict, row_to_dict
    from repro.parallel.sweep import run_sweep_task

    tasks = manifest.shard_tasks()
    task_ids = [t.task_id for t in tasks]
    store = CampaignCheckpoint(
        manifest.checkpoint_path,
        fingerprint=manifest.fingerprint,
        resume=resume,
        encode=lambda rows: [row_to_dict(r) for r in rows],
        decode=lambda rows: [row_from_dict(r) for r in rows],
        meta={
            "kind_detail": "shard",
            "shard_index": manifest.shard_index,
            "n_shards": manifest.n_shards,
            "n_tasks": len(tasks),
        },
        ordered_task_ids=task_ids,
        # a snapshot from an older accumulator format is discarded with
        # a warning (record replay still gives exact resume)
        snapshot_validator=snapshot_compatible,
    )
    fold = StreamFold(
        SweepAccumulator(),
        n_tasks=len(tasks),
        sink=open_row_sink(manifest.row_sink_path),
        task_ids=task_ids,
        checkpoint=store,
        snapshot_every=snapshot_every,
    )
    try:
        if resume and store.saved_state is not None:
            fold.restore(store.saved_state)
        else:
            fold.start()
        engine = CampaignEngine(run_sweep_task, jobs=1)
        engine.run(tasks, task_ids=task_ids, checkpoint=store, consumer=fold)
        aggregate = fold.finalize()  # final snapshot -> the state sidecar
    finally:
        fold.sink.close()
        store.close()
    if not manifest.state_path.exists():  # pragma: no cover - IO defense
        raise ShardError(
            f"shard {manifest.shard_index} completed but left no state "
            f"sidecar at {manifest.state_path}"
        )
    return {
        "shard_index": manifest.shard_index,
        "n_shards": manifest.n_shards,
        "task_start": manifest.task_start,
        "task_stop": manifest.task_stop,
        "n_tasks": len(tasks),
        "n_rows": aggregate.n_rows,
        "checkpoint_path": str(manifest.checkpoint_path),
        "state_path": str(manifest.state_path),
        "row_sink_path": manifest.row_sink_path,
    }
