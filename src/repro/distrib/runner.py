"""Single-shard execution: one manifest in, durable artifacts out.

:func:`run_shard` is the unit every executor backend (and the
``shard run`` CLI) drives: it rebuilds the shard's task slice from the
manifest, runs it through the PR-1 :class:`~repro.parallel.engine.
CampaignEngine` with the PR-4 streaming fold, and leaves durable
artifacts next to the manifest:

* ``shard-NNNN.ckpt`` — the incremental per-task checkpoint (JSON
  lines), giving a killed shard exact resume;
* ``shard-NNNN.ckpt.state`` — the accumulator-state sidecar written by
  the fold's final snapshot: the shard's entire aggregate as
  O(accumulator) JSON, which is all the merge layer ever reads;
* ``shard-NNNN.heartbeat`` — a tiny liveness/progress record refreshed
  after every folded task, so a supervisor (or ``shard status``) can
  tell a working shard from a hung one without touching the checkpoint;
* ``shard-NNNN.rows.jsonl``/``.csv`` — the shard's raw rows in task
  order (only when the campaign asked for a row sink).

Every shard runs its tasks inline (``jobs=1`` semantics): the shard is
the unit of parallelism, and keeping the intra-shard path identical to
the serial reference keeps the determinism argument one-dimensional.

Fault injection: when a :class:`~repro.util.faults.FaultPlan` is in
force (explicit or ambient via ``REPRO_FAULT_PLAN``), task-scope
faults are applied by the engine and shard-scope faults (``kill``,
``stall``) by this module's progress hook — including torn-checkpoint
corruption and sidecar loss, the two artifact-level failure modes
resume must survive.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.distrib.manifest import ShardManifest, ShardError
from repro.parallel.checkpoint import CampaignCheckpoint
from repro.parallel.engine import CampaignEngine, RetryPolicy
from repro.parallel.stream import (
    StreamFold,
    SweepAccumulator,
    open_row_sink,
    snapshot_compatible,
)
from repro.util.faults import (
    FaultPlan,
    InjectedShardKill,
    corrupt_checkpoint_tail,
)


def write_heartbeat(
    path: "str | Path",
    tasks_done: int,
    n_tasks: int,
    metrics: "dict | None" = None,
) -> None:
    """Atomically refresh a shard's liveness/progress sidecar.

    ``metrics`` (optional) is a
    :meth:`repro.obs.metrics.MetricsRegistry.state_dict` snapshot — a
    live view of the shard's counters and latency histograms that the
    supervisor (and ``shard status --metrics``) can merge exactly across
    shards.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    payload = {
        "tasks_done": int(tasks_done),
        "n_tasks": int(n_tasks),
        "time": time.time(),
        "pid": os.getpid(),
    }
    if metrics is not None:
        payload["metrics"] = metrics
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def read_heartbeat(path: "str | Path") -> "dict | None":
    """Load a heartbeat sidecar; ``None`` when absent or torn."""
    try:
        data = json.loads(Path(path).read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    return data if isinstance(data, dict) else None


def _shard_attempt(manifest: ShardManifest) -> int:
    """1-based attempt counter for this shard, persisted next to its
    artifacts so injected shard faults can be attempt-scoped (``times``)
    across process boundaries. Only consulted under a fault plan."""
    path = Path(manifest.checkpoint_path).with_suffix(".attempts")
    try:
        prior = int(path.read_text())
    except (FileNotFoundError, ValueError, OSError):
        prior = 0
    attempt = prior + 1
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(str(attempt))
    except OSError:  # pragma: no cover - IO defense
        pass
    return attempt


def run_shard(
    manifest: "ShardManifest | str | Path",
    resume: bool = False,
    snapshot_every: int = 32,
    retry: "RetryPolicy | None" = None,
    fault_plan: "FaultPlan | None" = None,
) -> dict:
    """Execute one shard to completion; returns a JSON-able summary.

    ``resume=True`` picks up from the shard's own checkpoint (guarded by
    the shard fingerprint, so a manifest edit or a foreign checkpoint
    fails loudly); ``resume=False`` starts the shard fresh, truncating
    any stale artifacts. Either way the call is idempotent once the
    shard completed: the artifacts on disk describe the same task slice
    with the same seeds, bit for bit.

    ``retry`` switches the intra-shard engine to supervised mode
    (transient-error retry + quarantine, see
    :class:`~repro.parallel.engine.RetryPolicy`); ``fault_plan``
    overrides the ambient ``REPRO_FAULT_PLAN`` injection plan.
    """
    if not isinstance(manifest, ShardManifest):
        manifest = ShardManifest.load(manifest)
    from repro.experiments.persistence import row_from_dict, row_to_dict
    from repro.parallel.sweep import run_sweep_task

    if fault_plan is None:
        fault_plan = FaultPlan.from_env()

    tasks = manifest.shard_tasks()
    task_ids = [t.task_id for t in tasks]
    store = CampaignCheckpoint(
        manifest.checkpoint_path,
        fingerprint=manifest.fingerprint,
        resume=resume,
        encode=lambda rows: [row_to_dict(r) for r in rows],
        decode=lambda rows: [row_from_dict(r) for r in rows],
        meta={
            "kind_detail": "shard",
            "shard_index": manifest.shard_index,
            "n_shards": manifest.n_shards,
            "n_tasks": len(tasks),
        },
        ordered_task_ids=task_ids,
        # a snapshot from an older accumulator format is discarded with
        # a warning (record replay still gives exact resume)
        snapshot_validator=snapshot_compatible,
    )
    fold = StreamFold(
        SweepAccumulator(),
        n_tasks=len(tasks),
        sink=open_row_sink(manifest.row_sink_path),
        task_ids=task_ids,
        checkpoint=store,
        snapshot_every=snapshot_every,
    )

    # shard-scope fault rules for this attempt (kill / stall), resolved
    # once; the attempt counter is only persisted when a plan is active
    shard_faults = []
    if fault_plan is not None:
        attempt = _shard_attempt(manifest)
        shard_faults = fault_plan.shard_rules(manifest.shard_index, attempt)
    stalled: set[int] = set()
    heartbeat_path = manifest.heartbeat_path

    # Live shard metrics, snapshotted into every heartbeat so the
    # supervisor and `shard status --metrics` can merge them exactly
    # across shards (observability only — never part of result state).
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    folded_counter = registry.counter(
        "repro_shard_tasks_folded_total",
        help="Tasks folded into the shard accumulator.",
    )
    task_seconds = registry.histogram(
        "repro_shard_task_seconds",
        help="Wall time between successive folded tasks.",
        lo=0.0,
        hi=30.0,
        n_bins=64,
    )
    last_tick = [time.perf_counter()]

    def on_progress(tasks_done: int, n_tasks: int) -> None:
        now = time.perf_counter()
        folded_counter.inc()
        task_seconds.observe(now - last_tick[0])
        last_tick[0] = now
        write_heartbeat(
            heartbeat_path, tasks_done, n_tasks, metrics=registry.state_dict()
        )
        for slot, rule in enumerate(shard_faults):
            if tasks_done < rule.after_tasks:
                continue
            if rule.fault == "stall" and slot not in stalled:
                stalled.add(slot)
                if rule.seconds:
                    time.sleep(rule.seconds)
            elif rule.fault == "kill":
                if rule.drop_state:
                    manifest.state_path.unlink(missing_ok=True)
                if rule.corrupt_tail:
                    store.close()  # flush before tearing the tail
                    corrupt_checkpoint_tail(manifest.checkpoint_path)
                raise InjectedShardKill(
                    f"injected kill: shard {manifest.shard_index} after "
                    f"{tasks_done} tasks"
                )

    try:
        if resume and store.saved_state is not None:
            fold.restore(store.saved_state)
        else:
            fold.start()
        write_heartbeat(
            heartbeat_path, 0, len(tasks), metrics=registry.state_dict()
        )
        engine = CampaignEngine(
            run_sweep_task, jobs=1, retry_policy=retry, fault_plan=fault_plan
        )
        engine.run(
            tasks,
            task_ids=task_ids,
            checkpoint=store,
            consumer=fold,
            progress=on_progress,
        )
        aggregate = fold.finalize()  # final snapshot -> the state sidecar
        write_heartbeat(
            heartbeat_path, len(tasks), len(tasks),
            metrics=registry.state_dict(),
        )
    finally:
        fold.sink.close()
        store.close()
    if not manifest.state_path.exists():  # pragma: no cover - IO defense
        raise ShardError(
            f"shard {manifest.shard_index} completed but left no state "
            f"sidecar at {manifest.state_path}"
        )
    return {
        "shard_index": manifest.shard_index,
        "n_shards": manifest.n_shards,
        "task_start": manifest.task_start,
        "task_stop": manifest.task_stop,
        "n_tasks": len(tasks),
        "n_rows": aggregate.n_rows,
        "retries": engine.last_retries,
        "checkpoint_path": str(manifest.checkpoint_path),
        "state_path": str(manifest.state_path),
        "row_sink_path": manifest.row_sink_path,
    }
