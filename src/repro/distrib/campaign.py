"""Sharded-campaign orchestration: plan, dispatch, merge — one call.

:func:`run_sharded_sweep` is what :meth:`repro.api.Solver.sweep` runs
when ``SolverConfig(shards=N)`` asks for more than one shard: it plans
the campaign's task list into contiguous shard manifests, writes them
under the campaign's shard directory, hands them to the configured
executor backend, and merges the resulting artifacts into the final
:class:`~repro.parallel.stream.SweepAccumulator` (plus the final row
sink, when one was requested). A missing ``shard_dir`` falls back to a
temporary directory — fine for pure fan-out speed, while a persistent
``shard_dir`` adds exact per-shard crash/resume across invocations.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.distrib.executor import get_shard_executor
from repro.distrib.manifest import (
    ShardError,
    build_shard_manifests,
    write_manifests,
)
from repro.distrib.merge import merge_shards

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import Scenario, Setting
    from repro.parallel.stream import SweepAccumulator


def run_sharded_sweep(
    settings: "Sequence[Setting]",
    scenario: "Scenario",
    methods: Sequence[str],
    objectives: Sequence[str],
    n_platforms: int,
    root: np.random.SeedSequence,
    n_shards: int,
    backend: str = "process",
    shard_dir: "str | Path | None" = None,
    row_sink: "str | Path | None" = None,
    resume: bool = False,
    jobs: "int | None" = None,
    progress: "Callable[[int, int], None] | None" = None,
    retry=None,
    supervision=None,
) -> "SweepAccumulator":
    """Run one sweep campaign as ``n_shards`` shards and merge them.

    The aggregate (and the assembled ``row_sink`` file) are
    bitwise-identical to the serial ``jobs=1`` streamed sweep of the
    same definition: manifests pin the campaign's root seed, shards
    rebuild and slice the exact task list, and the merge algebra is
    exactly associative. ``resume=True`` re-enters a previous campaign
    in ``shard_dir``: completed shards are validated and merged as-is,
    interrupted ones continue from their own checkpoints.

    ``retry`` (a :class:`~repro.parallel.engine.RetryPolicy`) turns on
    supervised task execution *inside* every shard; ``supervision`` (a
    :class:`~repro.distrib.supervise.SupervisionOptions`) replaces the
    plain batch dispatch with the :class:`~repro.distrib.supervise.
    ShardSupervisor` — shard-level retry with backoff, quarantine
    classification, optional shard timeouts and straggler stealing.
    Neither changes a bit of the merged result; they change what
    happens when the infrastructure misbehaves. Stealing re-plans
    manifests mid-run, so the final merge re-reads the shard directory
    instead of trusting the initial plan.
    """
    if n_shards < 1:
        raise ShardError(f"n_shards must be >= 1, got {n_shards}")
    if resume and shard_dir is None:
        raise ShardError(
            "resuming a sharded campaign requires a persistent shard_dir"
        )
    executor = get_shard_executor(backend, jobs=jobs, retry=retry)
    temp_dir = None
    if shard_dir is None:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        shard_dir = temp_dir.name
    try:
        shard_dir = Path(shard_dir)
        shard_dir.mkdir(parents=True, exist_ok=True)
        manifests = build_shard_manifests(
            settings,
            scenario,
            methods,
            objectives,
            n_platforms,
            root,
            n_shards=n_shards,
            shard_dir=shard_dir,
            row_sink=row_sink,
        )
        paths = write_manifests(manifests, shard_dir)
        if supervision is not None:
            from repro.distrib.supervise import ShardSupervisor

            supervisor = ShardSupervisor(
                executor, options=supervision, jobs=jobs
            )
            supervisor.run(paths, resume=resume, progress=progress)
            # stealing may have re-planned the partition on disk
            from repro.distrib.manifest import load_manifests

            manifests = load_manifests(shard_dir)
        else:
            executor.run(paths, resume=resume, progress=progress)
        return merge_shards(manifests, row_sink=row_sink)
    finally:
        if temp_dir is not None:
            temp_dir.cleanup()
