"""Supervised shard execution: retry, timeout, quarantine, stealing.

:class:`ShardSupervisor` wraps any executor backend's per-shard
:meth:`~repro.distrib.executor.ShardExecutor.run_one` in the control
loop a production campaign needs:

* **bounded retry with backoff** — a shard that dies for an
  *infrastructural* reason (worker crash, killed interpreter, injected
  kill, shard timeout) is retried with ``resume=True`` up to the
  policy's ``max_attempts``, so completed work is never recomputed and
  a flaky host costs one resume, not one campaign;
* **error classification** — a shard that fails *deterministically*
  (its tasks raise; surfaced as a :class:`~repro.parallel.engine.
  QuarantineError` inline or the :data:`~repro.distrib.executor.
  QUARANTINE_EXIT` exit code from a subprocess shard) is quarantined:
  the supervisor finishes every other shard and then raises one
  structured :class:`~repro.parallel.engine.QuarantineError`, instead
  of crashing the fleet on the first bug;
* **straggler re-planning** — each running shard refreshes a heartbeat
  sidecar per folded task; when one goes stale past
  ``straggler_after`` seconds (hung host, injected stall), the
  supervisor preempts it and :func:`steal_shard` splits its manifest
  at the watermark: the finished prefix keeps the victim's artifacts
  (resume replays them for free), the unfinished suffix becomes a
  fresh-index :class:`~repro.distrib.manifest.ShardManifest` that any
  idle slot picks up.

Determinism under all of this is inherited, not re-argued: task seeds
are derived from task *indices* (stateless ``SeedSequence`` spawning),
re-executed tasks are pure functions of their payloads, and the merge
algebra is exactly associative — so any schedule of crashes, retries
and steals yields the same merged aggregate, bit for bit, as the
fault-free serial fold (gated by the fault-recovery property test and
``benchmarks/bench_fault_recovery.py``).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.distrib.executor import (
    QUARANTINE_EXIT,
    ShardCancelled,
    ShardCrashError,
    ShardExecutor,
    ShardExitError,
    get_shard_executor,
)
from repro.distrib.manifest import (
    ShardError,
    ShardManifest,
    load_manifests,
    manifest_path_for,
    shard_artifact_name,
)
from repro.distrib.merge import _read_sidecar
from repro.distrib.runner import read_heartbeat
from repro.parallel.engine import QuarantineError, RetryPolicy, TaskFailure
from repro.util.faults import InjectedShardKill, is_transient_exception

#: stderr marker a quarantined ``shard run`` CLI prints before exiting
#: with QUARANTINE_EXIT, so the parent can recover the structured report
QUARANTINE_REPORT_PREFIX = "QUARANTINE-REPORT: "


@dataclass(frozen=True)
class SupervisionOptions:
    """Shard-level supervision knobs (see :class:`ShardSupervisor`).

    Parameters
    ----------
    retry:
        Shard-level :class:`~repro.parallel.engine.RetryPolicy`:
        ``max_attempts`` total tries per shard, backoff between tries.
        (Task-level retry *inside* a shard is configured separately,
        via ``SolverConfig.retry`` / the executor's ``retry``.)
    shard_timeout:
        Wall-clock seconds a single shard attempt may run before being
        killed and charged one failed attempt (``None`` disables;
        needs a preempting backend).
    straggler_after:
        Heartbeat staleness, in seconds, after which a running shard is
        declared a straggler and its remaining range is stolen
        (``None`` disables stealing).
    min_steal_tasks:
        Only steal when at least this many tasks remain unfolded (a
        straggler one task from done is cheaper to wait out).
    poll_interval:
        Supervisor scheduling/heartbeat-scan granularity in seconds.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    shard_timeout: "float | None" = None
    straggler_after: "float | None" = None
    min_steal_tasks: int = 1
    poll_interval: float = 0.05

    def __post_init__(self):
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(
                f"supervision retry must be a RetryPolicy, got {self.retry!r}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.straggler_after is not None and self.straggler_after <= 0:
            raise ValueError(
                f"straggler_after must be > 0, got {self.straggler_after}"
            )
        if self.min_steal_tasks < 1:
            raise ValueError(
                f"min_steal_tasks must be >= 1, got {self.min_steal_tasks}"
            )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )

    def to_dict(self) -> dict:
        return {
            "retry": self.retry.to_dict(),
            "shard_timeout": self.shard_timeout,
            "straggler_after": self.straggler_after,
            "min_steal_tasks": self.min_steal_tasks,
            "poll_interval": self.poll_interval,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SupervisionOptions":
        known = {
            "retry", "shard_timeout", "straggler_after", "min_steal_tasks",
            "poll_interval",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SupervisionOptions field(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if isinstance(kwargs.get("retry"), dict):
            kwargs["retry"] = RetryPolicy.from_dict(kwargs["retry"])
        return cls(**kwargs)


@dataclass
class SupervisionReport:
    """What the supervisor did: per-shard outcomes, steals, retries."""

    shards: list[dict] = field(default_factory=list)
    steals: list[dict] = field(default_factory=list)
    shard_retries: int = 0

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "steals": self.steals,
            "shard_retries": self.shard_retries,
        }


# ----------------------------------------------------------------------
# status + stealing (also usable offline, without a supervisor)
# ----------------------------------------------------------------------

def shard_progress(manifest: ShardManifest) -> dict:
    """One shard's observable progress, from its on-disk sidecars.

    Never raises for unfinished/missing artifacts — this is the data
    behind ``shard status`` and the supervisor's straggler scan; a
    genuinely corrupt sidecar is reported in the ``problem`` field.
    """
    try:
        state, problem = _read_sidecar(manifest)
    except ShardError as exc:
        state, problem = None, str(exc)
    folded = int(state.get("n_folded", 0)) if state else 0
    heartbeat = read_heartbeat(manifest.heartbeat_path)
    heartbeat_age = (
        max(0.0, time.time() - float(heartbeat["time"]))
        if heartbeat and "time" in heartbeat
        else None
    )
    return {
        "shard_index": manifest.shard_index,
        "task_start": manifest.task_start,
        "task_stop": manifest.task_stop,
        "n_tasks": manifest.n_shard_tasks,
        "folded": folded,
        "complete": problem is None,
        "problem": problem,
        "heartbeat": heartbeat,
        "heartbeat_age": heartbeat_age,
        "manifest_path": str(manifest.manifest_path),
    }


def campaign_status(shard_dir: "str | Path") -> list[dict]:
    """Progress of every shard planned under ``shard_dir``."""
    return [shard_progress(m) for m in load_manifests(shard_dir)]


def steal_shard(
    shard_dir: "str | Path",
    shard_index: int,
    stale_after: "float | None" = None,
    force: bool = False,
) -> "tuple[ShardManifest, ShardManifest | None]":
    """Re-plan a shard's unfinished task range into a fresh manifest.

    Reads the victim's accumulator-state sidecar to find its watermark
    ``w`` (tasks durably folded), shrinks the victim's manifest in
    place to ``[start, start + w)`` — its checkpoint still matches,
    because shard identity excludes ``task_stop``, so a ``--resume``
    replays the prefix for free — and writes a *new* manifest with a
    fresh shard index covering ``[start + w, stop)``. Returns
    ``(shrunken_victim, new_manifest)``; the second element is ``None``
    when nothing remained to steal.

    Safety: stealing from a shard that is still *running* would race
    its artifact files. When ``stale_after`` is given, the victim's
    heartbeat must be at least that old (or absent); ``force=True``
    overrides — correct only when the caller already killed the victim
    (as the supervisor does).
    """
    shard_dir = Path(shard_dir)
    manifests = load_manifests(shard_dir)
    by_index = {m.shard_index: m for m in manifests}
    if shard_index not in by_index:
        raise ShardError(
            f"no shard {shard_index} under {shard_dir}; indices: "
            f"{sorted(by_index)}"
        )
    victim = by_index[shard_index]

    if not force and stale_after is not None:
        heartbeat = read_heartbeat(victim.heartbeat_path)
        if heartbeat and "time" in heartbeat:
            age = time.time() - float(heartbeat["time"])
            if age < stale_after:
                raise ShardError(
                    f"shard {shard_index} heartbeat is only {age:.1f}s old "
                    f"(< {stale_after}s): it may still be running. Kill it "
                    "first, or pass force to steal anyway"
                )

    try:
        state, _problem = _read_sidecar(victim)
    except ShardError:
        state = None  # corrupt sidecar: nothing durable — steal it all
    watermark = int(state.get("n_folded", 0)) if state else 0
    watermark = max(0, min(watermark, victim.n_shard_tasks))
    remaining = victim.n_shard_tasks - watermark

    part_a = replace(victim, task_stop=victim.task_start + watermark)
    part_a.save(manifest_path_for(shard_dir, victim.shard_index))
    if remaining <= 0:
        return part_a, None

    new_index = max(by_index) + 1
    sink_suffix = None
    if victim.row_sink_path is not None:
        sink_suffix = (
            ".rows.csv"
            if victim.row_sink_path.lower().endswith(".csv")
            else ".rows.jsonl"
        )
    part_b = ShardManifest(
        campaign=victim.campaign,
        campaign_fingerprint=victim.campaign_fingerprint,
        n_tasks=victim.n_tasks,
        n_shards=new_index + 1,
        shard_index=new_index,
        task_start=victim.task_start + watermark,
        task_stop=victim.task_stop,
        checkpoint_path=str(
            shard_dir / shard_artifact_name(new_index, ".ckpt")
        ),
        row_sink_path=(
            None
            if sink_suffix is None
            else str(shard_dir / shard_artifact_name(new_index, sink_suffix))
        ),
    )
    part_b.save(manifest_path_for(shard_dir, new_index))
    return part_a, part_b


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

def classify_shard_failure(exc: BaseException) -> str:
    """``"transient"`` (retry with resume) or ``"deterministic"``
    (quarantine; retrying cannot help)."""
    if isinstance(exc, ShardExitError):
        return (
            "deterministic" if exc.returncode == QUARANTINE_EXIT
            else "transient"
        )
    if isinstance(exc, QuarantineError):
        return "deterministic"
    if isinstance(exc, (ShardCrashError, InjectedShardKill)):
        return "transient"
    if is_transient_exception(exc):
        return "transient"
    return "deterministic"


def _quarantine_failures(unit_manifest: ShardManifest,
                         exc: BaseException) -> list[TaskFailure]:
    """Recover structured task failures from a quarantined shard."""
    if isinstance(exc, QuarantineError):
        return list(exc.failures)
    if isinstance(exc, ShardExitError):
        # the shard CLI printed the report as a marked JSON line
        for line in reversed(exc.stderr_tail.splitlines()):
            if line.startswith(QUARANTINE_REPORT_PREFIX):
                try:
                    records = json.loads(
                        line[len(QUARANTINE_REPORT_PREFIX):]
                    )
                    return [
                        TaskFailure(
                            task_id=str(r.get("task_id", "?")),
                            index=int(r.get("index", -1)),
                            error=str(r.get("error", "")),
                            traceback=str(r.get("traceback", "")),
                            attempts=int(r.get("attempts", 1)),
                        )
                        for r in records
                    ]
                except (json.JSONDecodeError, TypeError, ValueError):
                    break
    return [TaskFailure(
        task_id=f"shard-{unit_manifest.shard_index}",
        index=-1,
        error=repr(exc),
        traceback=str(exc),
        attempts=1,
    )]


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------

class _Unit:
    """One schedulable shard (possibly re-planned mid-campaign)."""

    def __init__(self, manifest: ShardManifest):
        self.manifest = manifest
        self.cancel = threading.Event()
        self.failures = 0
        self.status = "pending"
        self.error: "BaseException | None" = None
        self.summary: "dict | None" = None
        self.submitted_at = 0.0

    @property
    def path(self) -> str:
        return str(self.manifest.manifest_path)


class ShardSupervisor:
    """Drive a planned campaign's shards to completion, supervised.

    Parameters
    ----------
    executor:
        A backend name (resolved via :func:`get_shard_executor`) or a
        ready :class:`ShardExecutor` instance. Straggler stealing and
        shard timeouts require a preempting backend
        (``executor.can_preempt``); without one they are skipped.
    options:
        :class:`SupervisionOptions`; defaults are sensible for tests
        (fast polling, 3 attempts, no timeout, no stealing).
    jobs:
        Concurrent shard slots (default: the executor's own sizing).
    """

    def __init__(
        self,
        executor: "ShardExecutor | str" = "process",
        options: "SupervisionOptions | None" = None,
        jobs: "int | None" = None,
    ):
        if isinstance(executor, str):
            executor = get_shard_executor(executor, jobs=jobs)
        if not isinstance(executor, ShardExecutor):
            raise ShardError(
                f"executor must be a ShardExecutor or backend name, got "
                f"{executor!r}"
            )
        self.executor = executor
        self.options = options if options is not None else SupervisionOptions()
        self.jobs = jobs

    # ------------------------------------------------------------------
    def _drive_once(self, unit: _Unit, resume: bool) -> tuple:
        try:
            summary = self.executor.run_one(
                unit.path,
                resume=resume,
                timeout=self.options.shard_timeout,
                cancel=unit.cancel,
            )
        except ShardCancelled as exc:
            return ("cancelled", exc)
        except BaseException as exc:  # noqa: BLE001 - classified by caller
            return ("error", exc)
        return ("ok", summary)

    # ------------------------------------------------------------------
    def run(
        self,
        manifest_paths: "Sequence[str | Path]",
        resume: bool = False,
        progress: "Callable[[int, int], None] | None" = None,
    ) -> SupervisionReport:
        """Run every shard (re-planning as needed); returns the report.

        Raises :class:`ShardError` when a shard exhausts its transient
        retry budget, or :class:`~repro.parallel.engine.QuarantineError`
        when every shard either completed or quarantined deterministic
        task failures (all completable work *was* completed and is on
        disk — resume after fixing the bug).
        """
        opts = self.options
        units = [
            _Unit(ShardManifest.load(p)) for p in manifest_paths
        ]
        shard_dir = units[0].manifest.shard_dir if units else None
        report = SupervisionReport()
        width = self.jobs if self.jobs is not None else (
            self.executor._jobs_for(len(units))
        )
        width = max(1, width)
        can_steal = (
            opts.straggler_after is not None and self.executor.can_preempt
        )

        pool = ThreadPoolExecutor(max_workers=width)
        futures: dict = {}

        def submit(unit: _Unit, resume_flag: bool) -> None:
            unit.cancel = threading.Event()
            unit.status = "running"
            unit.submitted_at = time.time()
            futures[pool.submit(self._drive_once, unit, resume_flag)] = unit

        def done_units() -> int:
            return sum(
                1 for u in units if u.status in ("done", "quarantined")
            )

        try:
            for unit in units:
                submit(unit, resume)
            while futures:
                ready, _ = futures_wait(
                    futures,
                    timeout=opts.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                for future in ready:
                    unit = futures.pop(future)
                    kind, payload = future.result()
                    if kind == "ok":
                        unit.status = "done"
                        unit.summary = payload
                        if progress is not None:
                            progress(done_units(), len(units))
                        continue
                    if kind == "cancelled":
                        # the straggler scan preempted it: split its
                        # manifest at the durable watermark and schedule
                        # both halves
                        part_a, part_b = steal_shard(
                            shard_dir,
                            unit.manifest.shard_index,
                            force=True,
                        )
                        report.steals.append({
                            "victim": unit.manifest.shard_index,
                            "watermark": part_a.n_shard_tasks,
                            "stolen": (
                                part_b.n_shard_tasks if part_b else 0
                            ),
                            "new_shard": (
                                part_b.shard_index if part_b else None
                            ),
                        })
                        unit.manifest = part_a
                        submit(unit, True)  # replays its prefix, finishes
                        if part_b is not None:
                            new_unit = _Unit(part_b)
                            units.append(new_unit)
                            submit(new_unit, False)
                        continue
                    exc = payload
                    if classify_shard_failure(exc) == "deterministic":
                        unit.status = "quarantined"
                        unit.error = exc
                        if progress is not None:
                            progress(done_units(), len(units))
                        continue
                    unit.failures += 1
                    if unit.failures >= opts.retry.max_attempts:
                        unit.status = "failed"
                        unit.error = exc
                        continue
                    report.shard_retries += 1
                    delay = opts.retry.delay(unit.failures)
                    if delay > 0:
                        time.sleep(delay)
                    submit(unit, True)  # resume: completed work is durable
                if can_steal:
                    now = time.time()
                    for unit in units:
                        if unit.status != "running" or unit.cancel.is_set():
                            continue
                        heartbeat = read_heartbeat(
                            unit.manifest.heartbeat_path
                        )
                        last = (
                            float(heartbeat["time"])
                            if heartbeat and "time" in heartbeat
                            else unit.submitted_at
                        )
                        if now - last <= opts.straggler_after:
                            continue
                        folded = (
                            int(heartbeat.get("tasks_done", 0))
                            if heartbeat else 0
                        )
                        remaining = unit.manifest.n_shard_tasks - folded
                        if remaining >= opts.min_steal_tasks:
                            unit.cancel.set()
        finally:
            for unit in units:  # abort: preempt whatever still runs
                unit.cancel.set()
            pool.shutdown(wait=True, cancel_futures=True)

        for unit in units:
            report.shards.append({
                "shard_index": unit.manifest.shard_index,
                "task_start": unit.manifest.task_start,
                "task_stop": unit.manifest.task_stop,
                "status": unit.status,
                "failures": unit.failures,
                "error": repr(unit.error) if unit.error else None,
            })

        failed = [u for u in units if u.status == "failed"]
        if failed:
            worst = failed[0]
            raise ShardError(
                f"supervised campaign failed: shard "
                f"{worst.manifest.shard_index} still failing after "
                f"{worst.failures} attempt(s); last error: {worst.error!r}"
            ) from worst.error
        quarantined = [u for u in units if u.status == "quarantined"]
        if quarantined:
            all_failures: list[TaskFailure] = []
            for unit in quarantined:
                all_failures.extend(
                    _quarantine_failures(unit.manifest, unit.error)
                )
            raise QuarantineError(all_failures)
        return report
