"""Sharded multi-host campaign orchestration.

The scale-out layer above :mod:`repro.parallel`: where PR 1 fanned one
campaign over a local process pool, this package partitions a campaign
into self-describing **shard manifests**, dispatches them through a
pluggable **executor backend** (``inline`` in-process reference,
``process`` local pool, ``subprocess`` one-interpreter-per-shard — the
stand-in for real remote hosts), and **merges** the per-shard artifacts
(accumulator-state sidecars + row sinks) into the campaign result.

The determinism contract stacks on the earlier layers and stays
end-to-end bitwise: manifests carry the campaign's root
``SeedSequence`` so sharding never changes a task's seed; every shard
is the ``jobs=1`` serial reference semantics over its contiguous task
slice; and the accumulator algebra merges by exact integer arithmetic
— so the merged aggregate tables (and the concatenated row sink) are
**bitwise-identical** to the serial sweep for any shard count, backend,
or per-shard crash/resume pattern (gated by
``benchmarks/bench_shard_merge.py`` and the partition property suite in
``tests/test_distrib_merge.py``).

Entry points: ``SolverConfig(shards=N, shard_backend=..., stream=True)``
through :meth:`repro.api.Solver.sweep`; the CLI ``--shards/--shard-dir``
flags on the figure/headline subcommands; and the host-side CLI
``python -m repro.experiments shard run|merge``.
"""

from repro.distrib.campaign import run_sharded_sweep
from repro.distrib.executor import (
    QUARANTINE_EXIT,
    SHARD_BACKENDS,
    InlineShardExecutor,
    ProcessShardExecutor,
    ShardCancelled,
    ShardCrashError,
    ShardExecutor,
    ShardExitError,
    ShardTimeoutError,
    SubprocessShardExecutor,
    available_shard_backends,
    get_shard_executor,
    register_shard_backend,
)
from repro.distrib.manifest import (
    ShardError,
    ShardManifest,
    build_shard_manifests,
    load_manifests,
    manifest_path_for,
    plan_shards,
    write_manifests,
)
from repro.distrib.merge import (
    concatenate_row_sinks,
    load_shard_state,
    merge_accumulators,
    merge_shards,
)
from repro.distrib.runner import read_heartbeat, run_shard, write_heartbeat
from repro.distrib.supervise import (
    ShardSupervisor,
    SupervisionOptions,
    SupervisionReport,
    campaign_status,
    classify_shard_failure,
    shard_progress,
    steal_shard,
)

__all__ = [
    # planning
    "ShardManifest",
    "ShardError",
    "plan_shards",
    "build_shard_manifests",
    "write_manifests",
    "load_manifests",
    "manifest_path_for",
    # execution
    "ShardExecutor",
    "InlineShardExecutor",
    "ProcessShardExecutor",
    "SubprocessShardExecutor",
    "SHARD_BACKENDS",
    "available_shard_backends",
    "get_shard_executor",
    "register_shard_backend",
    "run_shard",
    "run_sharded_sweep",
    # merging
    "merge_shards",
    "merge_accumulators",
    "load_shard_state",
    "concatenate_row_sinks",
    # supervision
    "ShardSupervisor",
    "SupervisionOptions",
    "SupervisionReport",
    "campaign_status",
    "shard_progress",
    "steal_shard",
    "classify_shard_failure",
    "write_heartbeat",
    "read_heartbeat",
    "QUARANTINE_EXIT",
    "ShardCrashError",
    "ShardTimeoutError",
    "ShardCancelled",
    "ShardExitError",
]
