"""Pluggable shard executor backends: how shards reach their hosts.

Every backend consumes the same inputs — the on-disk manifest files of
one planned campaign — and produces the same outputs — each shard's
durable artifacts (checkpoint, accumulator-state sidecar, optional row
sink), via :func:`repro.distrib.runner.run_shard`. Because shards are
pure functions of their manifests, the backend choice is an execution
detail, never a semantic one:

* ``inline`` — every shard runs sequentially in the calling process.
  The reference backend: zero machinery, and what the other two are
  equivalence-tested against.
* ``process`` — shards fan out over a local
  :class:`~concurrent.futures.ProcessPoolExecutor` through the PR-1
  :class:`~repro.parallel.engine.CampaignEngine` (inheriting its
  worker-crash recovery: a shard whose worker process dies is retried
  on a rebuilt pool).
* ``subprocess`` — each shard runs ``python -m repro.experiments shard
  run <manifest.json>`` in its *own interpreter*, standing in for a
  remote host: the only coupling is the manifest file in and the
  artifact files out, which is exactly the contract a real multi-host
  dispatcher (SSH, SLURM, k8s jobs) would have.

Besides the batch :meth:`ShardExecutor.run`, every backend exposes
:meth:`ShardExecutor.run_one` — run a single shard with optional
wall-clock ``timeout`` and cooperative ``cancel`` — which is what the
supervisor (:mod:`repro.distrib.supervise`) schedules, retries, and
preempts. Backends that can actually kill a running shard advertise
``can_preempt = True`` (only ``subprocess`` and ``process`` here: an
inline shard shares the caller's thread and cannot be stopped).

New backends register with :func:`register_shard_backend`; resolve by
name with :func:`get_shard_executor`.
"""

from __future__ import annotations

import difflib
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.distrib.manifest import ShardError, ShardManifest
from repro.distrib.runner import run_shard
from repro.parallel.engine import RetryPolicy
from repro.util.faults import InjectedShardKill

#: built-in backend names, in reference-first order
SHARD_BACKENDS = ("inline", "process", "subprocess")

#: exit code of a ``shard run`` CLI whose campaign finished but
#: quarantined deterministic task failures: the supervisor must not
#: retry such a shard (re-running cannot help), unlike any other
#: nonzero exit (crash/kill — transient, retry with resume)
QUARANTINE_EXIT = 3


class ShardCrashError(ShardError):
    """A shard died for an *infrastructural* reason (process killed,
    worker crash, injected kill): transient — retrying with resume is
    the correct response."""


class ShardTimeoutError(ShardCrashError):
    """A shard exceeded its wall-clock budget and was killed."""


class ShardCancelled(ShardCrashError):
    """A shard was deliberately preempted (straggler steal) — control
    flow for the supervisor, never a campaign failure by itself."""


class ShardExitError(ShardError):
    """A subprocess shard exited nonzero.

    Carries the structured context a remote-host failure needs to be
    debuggable from the parent: the manifest path, the exit code, and
    the tail of the child's stderr (worker traceback included).
    Whether it is transient is the *supervisor's* call: exit code
    :data:`QUARANTINE_EXIT` marks quarantined deterministic task
    errors, anything else a crash.
    """

    def __init__(self, manifest_path: str, returncode: int, stderr_tail: str):
        self.manifest_path = str(manifest_path)
        self.returncode = int(returncode)
        self.stderr_tail = stderr_tail
        super().__init__(
            f"shard (manifest {manifest_path}) exited with code "
            f"{returncode}:\n{stderr_tail}"
        )

    def __reduce__(self):
        return (
            ShardExitError,
            (self.manifest_path, self.returncode, self.stderr_tail),
        )


def _default_jobs(n_shards: int) -> int:
    """Concurrent shards for the parallel backends: one per shard up to
    the core count, but at least 2 so the pool path is actually a pool
    (a 1-wide "pool" would silently degrade to the inline semantics the
    backends are tested against)."""
    cores = os.cpu_count() or 1
    return max(2, min(n_shards, cores))


class ShardExecutor:
    """Base interface: run planned shards from their manifest files.

    Parameters
    ----------
    jobs:
        Concurrent shards for parallel backends (``None`` = auto, see
        :func:`_default_jobs`; ignored by ``inline``).
    retry:
        Optional :class:`~repro.parallel.engine.RetryPolicy` applied
        *inside* each shard's engine (transient task retry +
        quarantine); shard-level retry is the supervisor's job.
    """

    name = "abstract"
    #: whether ``run_one`` honors ``timeout``/``cancel`` by killing the
    #: running shard (required for straggler stealing)
    can_preempt = False

    def __init__(self, jobs: "int | None" = None,
                 retry: "RetryPolicy | None" = None):
        if jobs is not None and jobs < 1:
            raise ShardError(f"executor jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.retry = retry

    def run(
        self,
        manifest_paths: "Sequence[str | Path]",
        resume: bool = False,
        progress: "Callable[[int, int], None] | None" = None,
    ) -> list[dict]:
        """Run every shard to completion; summaries in shard order.

        ``progress`` is called with ``(shards_done, shards_total)`` as
        shards finish. Any shard failure aborts the campaign with
        :class:`ShardError` (completed shards keep their artifacts, so a
        re-run with ``resume=True`` only repeats the unfinished work).
        """
        raise NotImplementedError  # pragma: no cover - interface

    def run_one(
        self,
        manifest_path: "str | Path",
        resume: bool = False,
        timeout: "float | None" = None,
        cancel=None,
    ) -> dict:
        """Run a single shard; the supervisor's scheduling unit.

        ``timeout`` bounds the shard's wall time and ``cancel`` (an
        object with ``is_set()``, e.g. :class:`threading.Event`)
        requests preemption — both only honored by backends with
        ``can_preempt``; the base implementation runs to completion
        regardless.
        """
        return self.run([manifest_path], resume=resume)[0]

    def _jobs_for(self, n_shards: int) -> int:
        return self.jobs if self.jobs is not None else _default_jobs(n_shards)


class InlineShardExecutor(ShardExecutor):
    """Reference backend: shards run sequentially, in-process."""

    name = "inline"

    def run(self, manifest_paths, resume=False, progress=None):
        summaries = []
        for done, path in enumerate(manifest_paths, start=1):
            summaries.append(run_shard(path, resume=resume, retry=self.retry))
            if progress is not None:
                progress(done, len(manifest_paths))
        return summaries


def _run_shard_task(payload: tuple) -> dict:
    """Module-level (picklable) pool worker: one shard per task."""
    manifest_path, resume, retry = payload
    return run_shard(manifest_path, resume=resume, retry=retry)


class ProcessShardExecutor(ShardExecutor):
    """Local fan-out: shards are campaign-engine tasks on a process pool."""

    name = "process"
    can_preempt = True

    def run(self, manifest_paths, resume=False, progress=None):
        from repro.parallel.engine import CampaignEngine

        paths = [str(p) for p in manifest_paths]
        engine = CampaignEngine(
            _run_shard_task,
            jobs=self._jobs_for(len(paths)),
            chunk_size=1,  # a shard is already a coarse unit of work
        )
        return engine.run(
            [(p, resume, self.retry) for p in paths],
            progress=progress,
        )

    def run_one(self, manifest_path, resume=False, timeout=None, cancel=None):
        """One shard on its own single-worker pool: real process
        isolation (an injected worker crash cannot take the supervisor
        down) plus preemption by killing the pool's worker."""
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        path = str(manifest_path)
        pool = ProcessPoolExecutor(max_workers=1)

        def _kill_worker() -> None:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.kill()

        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            future = pool.submit(_run_shard_task, (path, resume, self.retry))
            while True:
                if cancel is not None and cancel.is_set():
                    _kill_worker()
                    raise ShardCancelled(f"shard run {path} cancelled")
                if deadline is not None and time.monotonic() > deadline:
                    _kill_worker()
                    raise ShardTimeoutError(
                        f"shard {path} exceeded the {timeout}s shard "
                        "timeout and was killed"
                    )
                try:
                    return future.result(timeout=0.05)
                except TimeoutError:
                    continue
                except InjectedShardKill as exc:
                    raise ShardCrashError(
                        f"shard {path} died mid-run: {exc}"
                    ) from exc
                except BrokenProcessPool:
                    raise ShardCrashError(
                        f"shard worker process died running {path}"
                    ) from None
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


class SubprocessShardExecutor(ShardExecutor):
    """Each shard in its own interpreter via the ``shard run`` CLI.

    The stand-in for true multi-host dispatch: the parent and the shard
    share nothing but the manifest file and the artifact files, so
    swapping ``subprocess.Popen`` for an SSH/SLURM/k8s submission is the
    whole port. Up to ``jobs`` shard interpreters run concurrently.
    """

    name = "subprocess"
    can_preempt = True

    #: stderr bytes echoed into the ShardError of a failed shard
    _STDERR_TAIL = 4000

    def _command(self, manifest_path: str, resume: bool) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro.experiments",
            "shard",
            "run",
            manifest_path,
        ]
        if resume:
            cmd.append("--resume")
        if self.retry is not None:
            cmd += ["--retry", json.dumps(self.retry.to_dict())]
        return cmd

    def _environment(self) -> dict:
        """Child env whose ``PYTHONPATH`` can import this very package
        (the parent may run from a source tree that is not installed)."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = os.environ.copy()
        parts = [src_dir] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        return env

    @staticmethod
    def _summary_from_artifacts(path: str) -> dict:
        # the artifacts on disk are the ground truth; the summary is
        # rebuilt from the manifest for symmetry with the in-process
        # backends
        manifest = ShardManifest.load(path)
        return {
            "shard_index": manifest.shard_index,
            "n_shards": manifest.n_shards,
            "task_start": manifest.task_start,
            "task_stop": manifest.task_stop,
            "n_tasks": manifest.n_shard_tasks,
            "checkpoint_path": manifest.checkpoint_path,
            "state_path": str(manifest.state_path),
            "row_sink_path": manifest.row_sink_path,
        }

    def run(self, manifest_paths, resume=False, progress=None):
        import tempfile

        paths = [str(p) for p in manifest_paths]
        jobs = self._jobs_for(len(paths))
        env = self._environment()
        pending = list(enumerate(paths))
        active: dict = {}
        done = 0
        summaries: list = [None] * len(paths)
        failures: list[str] = []
        try:
            while pending or active:
                if failures and not active:
                    break  # nothing left to drain; report the failure
                while pending and len(active) < jobs and not failures:
                    index, path = pending.pop(0)
                    # stderr goes to an unlinked temp file, not a pipe:
                    # a chatty shard (thousands of warnings) would fill
                    # a pipe's buffer and deadlock against a parent
                    # that only reads after exit
                    stderr_spool = tempfile.TemporaryFile()
                    proc = subprocess.Popen(
                        self._command(path, resume),
                        stdout=subprocess.DEVNULL,
                        stderr=stderr_spool,
                        env=env,
                    )
                    active[proc] = (index, path, stderr_spool)
                finished = [p for p in active if p.poll() is not None]
                if not finished:
                    time.sleep(0.02)
                    continue
                for proc in finished:
                    index, path, stderr_spool = active.pop(proc)
                    stderr_spool.seek(0)
                    stderr = stderr_spool.read().decode(
                        "utf-8", errors="replace"
                    )
                    stderr_spool.close()
                    if proc.returncode != 0:
                        failures.append(ShardExitError(
                            path,
                            proc.returncode,
                            stderr[-self._STDERR_TAIL:],
                        ))
                        continue
                    summaries[index] = self._summary_from_artifacts(path)
                    done += 1
                    if progress is not None:
                        progress(done, len(paths))
        finally:
            for proc in active:  # abort: don't leave orphan interpreters
                proc.kill()
            for proc, (_, _, stderr_spool) in active.items():
                proc.wait()
                stderr_spool.close()
        if failures:
            if len(failures) == 1:
                raise failures[0]
            raise ShardError(
                "subprocess shard backend failed:\n"
                + "\n".join(str(f) for f in failures)
            )
        return summaries

    def run_one(self, manifest_path, resume=False, timeout=None, cancel=None):
        import tempfile

        path = str(manifest_path)
        stderr_spool = tempfile.TemporaryFile()
        proc = subprocess.Popen(
            self._command(path, resume),
            stdout=subprocess.DEVNULL,
            stderr=stderr_spool,
            env=self._environment(),
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while proc.poll() is None:
                if cancel is not None and cancel.is_set():
                    proc.kill()
                    proc.wait()
                    raise ShardCancelled(
                        f"shard run {path} cancelled (preempted)"
                    )
                if deadline is not None and time.monotonic() > deadline:
                    proc.kill()
                    proc.wait()
                    raise ShardTimeoutError(
                        f"shard {path} exceeded the {timeout}s shard "
                        "timeout and was killed"
                    )
                time.sleep(0.02)
            if proc.returncode != 0:
                stderr_spool.seek(0)
                stderr = stderr_spool.read().decode("utf-8", errors="replace")
                raise ShardExitError(
                    path, proc.returncode, stderr[-self._STDERR_TAIL:]
                )
            return self._summary_from_artifacts(path)
        finally:
            if proc.poll() is None:  # pragma: no cover - abort defense
                proc.kill()
                proc.wait()
            stderr_spool.close()


_BACKENDS: dict[str, type] = {
    "inline": InlineShardExecutor,
    "process": ProcessShardExecutor,
    "subprocess": SubprocessShardExecutor,
}


def register_shard_backend(
    name: str, executor_cls: type, replace: bool = False
) -> None:
    """Register a custom executor backend (e.g. an SSH dispatcher).

    Duplicate names are refused unless ``replace=True``: silently
    shadowing a built-in (or another extension) would reroute every
    campaign that names the backend.
    """
    if not issubclass(executor_cls, ShardExecutor):
        raise ShardError(
            f"{executor_cls!r} is not a ShardExecutor subclass"
        )
    name = str(name)
    if not replace and name in _BACKENDS:
        raise ShardError(
            f"shard backend {name!r} is already registered "
            f"(to {_BACKENDS[name].__name__}); pass replace=True to override"
        )
    _BACKENDS[name] = executor_cls


def available_shard_backends() -> list[str]:
    """Registered backend names (built-ins first, then extensions)."""
    return list(_BACKENDS)


def get_shard_executor(
    name: str,
    jobs: "int | None" = None,
    retry: "RetryPolicy | None" = None,
) -> ShardExecutor:
    """Resolve a backend by name; unknown names list the valid ones
    (with a did-you-mean for near misses)."""
    try:
        executor_cls = _BACKENDS[name]
    except KeyError:
        close = difflib.get_close_matches(str(name), list(_BACKENDS), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ShardError(
            f"unknown shard backend {name!r}{hint}; available: "
            f"{', '.join(_BACKENDS)}"
        ) from None
    kwargs: dict = {"jobs": jobs}
    if retry is not None:
        # only forwarded when set: third-party executors registered
        # before the retry parameter existed keep working
        kwargs["retry"] = retry
    return executor_cls(**kwargs)
