"""Pluggable shard executor backends: how shards reach their hosts.

Every backend consumes the same inputs — the on-disk manifest files of
one planned campaign — and produces the same outputs — each shard's
durable artifacts (checkpoint, accumulator-state sidecar, optional row
sink), via :func:`repro.distrib.runner.run_shard`. Because shards are
pure functions of their manifests, the backend choice is an execution
detail, never a semantic one:

* ``inline`` — every shard runs sequentially in the calling process.
  The reference backend: zero machinery, and what the other two are
  equivalence-tested against.
* ``process`` — shards fan out over a local
  :class:`~concurrent.futures.ProcessPoolExecutor` through the PR-1
  :class:`~repro.parallel.engine.CampaignEngine` (inheriting its
  worker-crash recovery: a shard whose worker process dies is retried
  on a rebuilt pool).
* ``subprocess`` — each shard runs ``python -m repro.experiments shard
  run <manifest.json>`` in its *own interpreter*, standing in for a
  remote host: the only coupling is the manifest file in and the
  artifact files out, which is exactly the contract a real multi-host
  dispatcher (SSH, SLURM, k8s jobs) would have.

New backends register with :func:`register_shard_backend`; resolve by
name with :func:`get_shard_executor`.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.distrib.manifest import ShardError
from repro.distrib.runner import run_shard

#: built-in backend names, in reference-first order
SHARD_BACKENDS = ("inline", "process", "subprocess")


def _default_jobs(n_shards: int) -> int:
    """Concurrent shards for the parallel backends: one per shard up to
    the core count, but at least 2 so the pool path is actually a pool
    (a 1-wide "pool" would silently degrade to the inline semantics the
    backends are tested against)."""
    cores = os.cpu_count() or 1
    return max(2, min(n_shards, cores))


class ShardExecutor:
    """Base interface: run planned shards from their manifest files.

    Parameters
    ----------
    jobs:
        Concurrent shards for parallel backends (``None`` = auto, see
        :func:`_default_jobs`; ignored by ``inline``).
    """

    name = "abstract"

    def __init__(self, jobs: "int | None" = None):
        if jobs is not None and jobs < 1:
            raise ShardError(f"executor jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(
        self,
        manifest_paths: "Sequence[str | Path]",
        resume: bool = False,
        progress: "Callable[[int, int], None] | None" = None,
    ) -> list[dict]:
        """Run every shard to completion; summaries in shard order.

        ``progress`` is called with ``(shards_done, shards_total)`` as
        shards finish. Any shard failure aborts the campaign with
        :class:`ShardError` (completed shards keep their artifacts, so a
        re-run with ``resume=True`` only repeats the unfinished work).
        """
        raise NotImplementedError  # pragma: no cover - interface

    def _jobs_for(self, n_shards: int) -> int:
        return self.jobs if self.jobs is not None else _default_jobs(n_shards)


class InlineShardExecutor(ShardExecutor):
    """Reference backend: shards run sequentially, in-process."""

    name = "inline"

    def run(self, manifest_paths, resume=False, progress=None):
        summaries = []
        for done, path in enumerate(manifest_paths, start=1):
            summaries.append(run_shard(path, resume=resume))
            if progress is not None:
                progress(done, len(manifest_paths))
        return summaries


def _run_shard_task(payload: tuple) -> dict:
    """Module-level (picklable) pool worker: one shard per task."""
    manifest_path, resume = payload
    return run_shard(manifest_path, resume=resume)


class ProcessShardExecutor(ShardExecutor):
    """Local fan-out: shards are campaign-engine tasks on a process pool."""

    name = "process"

    def run(self, manifest_paths, resume=False, progress=None):
        from repro.parallel.engine import CampaignEngine

        paths = [str(p) for p in manifest_paths]
        engine = CampaignEngine(
            _run_shard_task,
            jobs=self._jobs_for(len(paths)),
            chunk_size=1,  # a shard is already a coarse unit of work
        )
        return engine.run(
            [(p, resume) for p in paths],
            progress=progress,
        )


class SubprocessShardExecutor(ShardExecutor):
    """Each shard in its own interpreter via the ``shard run`` CLI.

    The stand-in for true multi-host dispatch: the parent and the shard
    share nothing but the manifest file and the artifact files, so
    swapping ``subprocess.Popen`` for an SSH/SLURM/k8s submission is the
    whole port. Up to ``jobs`` shard interpreters run concurrently.
    """

    name = "subprocess"

    #: stderr bytes echoed into the ShardError of a failed shard
    _STDERR_TAIL = 4000

    def _command(self, manifest_path: str, resume: bool) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro.experiments",
            "shard",
            "run",
            manifest_path,
        ]
        if resume:
            cmd.append("--resume")
        return cmd

    def _environment(self) -> dict:
        """Child env whose ``PYTHONPATH`` can import this very package
        (the parent may run from a source tree that is not installed)."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = os.environ.copy()
        parts = [src_dir] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        return env

    def run(self, manifest_paths, resume=False, progress=None):
        import tempfile

        paths = [str(p) for p in manifest_paths]
        jobs = self._jobs_for(len(paths))
        env = self._environment()
        pending = list(enumerate(paths))
        active: dict = {}
        done = 0
        summaries: list = [None] * len(paths)
        failures: list[str] = []
        try:
            while pending or active:
                if failures and not active:
                    break  # nothing left to drain; report the failure
                while pending and len(active) < jobs and not failures:
                    index, path = pending.pop(0)
                    # stderr goes to an unlinked temp file, not a pipe:
                    # a chatty shard (thousands of warnings) would fill
                    # a pipe's buffer and deadlock against a parent
                    # that only reads after exit
                    stderr_spool = tempfile.TemporaryFile()
                    proc = subprocess.Popen(
                        self._command(path, resume),
                        stdout=subprocess.DEVNULL,
                        stderr=stderr_spool,
                        env=env,
                    )
                    active[proc] = (index, path, stderr_spool)
                finished = [p for p in active if p.poll() is not None]
                if not finished:
                    time.sleep(0.02)
                    continue
                for proc in finished:
                    index, path, stderr_spool = active.pop(proc)
                    stderr_spool.seek(0)
                    stderr = stderr_spool.read().decode(
                        "utf-8", errors="replace"
                    )
                    stderr_spool.close()
                    if proc.returncode != 0:
                        failures.append(
                            f"shard {index} (manifest {path}) exited with "
                            f"code {proc.returncode}:\n"
                            f"{stderr[-self._STDERR_TAIL:]}"
                        )
                        continue
                    # the artifacts on disk are the ground truth; the
                    # summary is rebuilt from the manifest for symmetry
                    # with the in-process backends
                    from repro.distrib.manifest import ShardManifest

                    manifest = ShardManifest.load(path)
                    summaries[index] = {
                        "shard_index": manifest.shard_index,
                        "n_shards": manifest.n_shards,
                        "task_start": manifest.task_start,
                        "task_stop": manifest.task_stop,
                        "n_tasks": manifest.n_shard_tasks,
                        "checkpoint_path": manifest.checkpoint_path,
                        "state_path": str(manifest.state_path),
                        "row_sink_path": manifest.row_sink_path,
                    }
                    done += 1
                    if progress is not None:
                        progress(done, len(paths))
        finally:
            for proc in active:  # abort: don't leave orphan interpreters
                proc.kill()
            for proc, (_, _, stderr_spool) in active.items():
                proc.wait()
                stderr_spool.close()
        if failures:
            raise ShardError(
                "subprocess shard backend failed:\n" + "\n".join(failures)
            )
        return summaries


_BACKENDS: dict[str, type] = {
    "inline": InlineShardExecutor,
    "process": ProcessShardExecutor,
    "subprocess": SubprocessShardExecutor,
}


def register_shard_backend(name: str, executor_cls: type) -> None:
    """Register a custom executor backend (e.g. an SSH dispatcher)."""
    if not issubclass(executor_cls, ShardExecutor):
        raise ShardError(
            f"{executor_cls!r} is not a ShardExecutor subclass"
        )
    _BACKENDS[str(name)] = executor_cls


def available_shard_backends() -> list[str]:
    """Registered backend names (built-ins first, then extensions)."""
    return list(_BACKENDS)


def get_shard_executor(name: str, jobs: "int | None" = None) -> ShardExecutor:
    """Resolve a backend by name; unknown names list the valid ones."""
    try:
        executor_cls = _BACKENDS[name]
    except KeyError:
        raise ShardError(
            f"unknown shard backend {name!r}; available: "
            f"{', '.join(_BACKENDS)}"
        ) from None
    return executor_cls(jobs=jobs)
