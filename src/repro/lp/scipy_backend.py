"""HiGHS backend for the rational relaxation (scipy.optimize.linprog).

This is the production solver; the paper used the ``lp_solve`` Simplex
package, for which :mod:`repro.lp.simplex` is the in-repo stand-in.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.builder import LPInstance
from repro.lp.solution import LPSolution
from repro.util.errors import InfeasibleError, SolverError, UnboundedError

_STATUS_OK = 0
_STATUS_ITERATION_LIMIT = 1
_STATUS_INFEASIBLE = 2
_STATUS_UNBOUNDED = 3


def solve_lp_scipy(instance: LPInstance) -> LPSolution:
    """Solve ``maximize obj @ x s.t. A_ub x <= b_ub, lb <= x <= ub``.

    Raises
    ------
    InfeasibleError / UnboundedError / SolverError
        Mapped from the HiGHS status codes.
    """
    result = linprog(
        c=-instance.obj,  # linprog minimises
        A_ub=instance.A_ub,
        b_ub=instance.b_ub,
        bounds=instance.bounds_list(),
        method="highs",
    )
    if result.status == _STATUS_INFEASIBLE:
        raise InfeasibleError(f"LP infeasible: {result.message}")
    if result.status == _STATUS_UNBOUNDED:
        raise UnboundedError(f"LP unbounded: {result.message}")
    if result.status != _STATUS_OK or result.x is None:
        raise SolverError(
            f"LP solver failed (status {result.status}): {result.message}"
        )
    x = np.asarray(result.x, dtype=float)
    return LPSolution(x=x, value=float(-result.fun), index=instance.index)
