"""Exact solver for the *mixed* program (7) via scipy.optimize.milp.

The paper states "solving the mixed LP problem for the optimal solution
takes exponential time; consequently we cannot use it in practice and
cannot compare our heuristics to the optimal" (Section 6). Twenty years
of MILP progress later, HiGHS solves the small-K instances in
milliseconds, so this backend lets the test-suite and the E8 benchmark
measure true optimality gaps that the paper could only bound from above
with the rational relaxation.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.lp.builder import LPInstance
from repro.lp.solution import LPSolution
from repro.util.errors import InfeasibleError, SolverError

_MILP_SUCCESS = 0
_MILP_ITERATION_OR_TIME = 1
_MILP_INFEASIBLE = 2
_MILP_UNBOUNDED = 3


def solve_milp_scipy(
    instance: LPInstance, time_limit: "float | None" = None
) -> LPSolution:
    """Solve the instance with the beta block constrained to integers.

    Parameters
    ----------
    time_limit:
        Optional wall-clock cap in seconds; hitting it raises
        :class:`SolverError` (we never return sub-optimal answers silently
        from the *exact* backend).
    """
    options: dict = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c=-instance.obj,
        constraints=[LinearConstraint(instance.A_ub, ub=instance.b_ub)],
        bounds=Bounds(lb=instance.lb, ub=instance.ub),
        integrality=instance.index.integrality(),
        options=options,
    )
    if result.status == _MILP_INFEASIBLE:
        raise InfeasibleError(f"MILP infeasible: {result.message}")
    if result.status != _MILP_SUCCESS or result.x is None:
        raise SolverError(
            f"MILP solver failed (status {result.status}): {result.message}"
        )
    x = np.asarray(result.x, dtype=float)
    # snap the integer block exactly (HiGHS returns e.g. 0.9999999998)
    n_alpha, n_beta = instance.index.n_alpha, instance.index.n_beta
    x[n_alpha : n_alpha + n_beta] = np.round(x[n_alpha : n_alpha + n_beta])
    return LPSolution(x=x, value=float(-result.fun), index=instance.index)
