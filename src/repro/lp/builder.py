"""Sparse matrix assembly of program (7).

``build_lp`` turns a :class:`~repro.core.problem.SteadyStateProblem`
into an :class:`LPInstance` in the canonical form

    maximize  obj @ x
    s.t.      A_ub @ x <= b_ub,     lb <= x <= ub

with rows for Equations (7b) compute capacity, (7c) local links,
(7d) backbone connection counts, (7e) route bandwidth, and — for the
MAXMIN objective — the linearisation rows ``t - pi_k * sum_l alpha[k,l]
<= 0``. The matrix is built in COO triplets and converted to CSR once,
so assembly stays O(non-zeros) even for large ``K``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.objectives import Objective, get_objective
from repro.core.problem import SteadyStateProblem
from repro.lp.indexing import VariableIndex, shared_variable_index


@dataclass
class LPInstance:
    """Program (7) in matrix form (maximisation sense).

    Attributes
    ----------
    obj:
        Objective coefficients; the LP maximises ``obj @ x``.
    A_ub, b_ub:
        Inequality system ``A_ub @ x <= b_ub`` (CSR sparse matrix).
    lb, ub:
        Variable box bounds (``ub`` may contain ``np.inf``).
    index:
        The :class:`~repro.lp.indexing.VariableIndex` mapping flat
        positions back to ``alpha``/``beta`` entries.
    row_labels:
        One short label per row of ``A_ub`` (diagnostics and tests).
    """

    obj: np.ndarray
    A_ub: sp.csr_matrix
    b_ub: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    index: VariableIndex
    row_labels: list = field(default_factory=list)
    _bounds_cache: "list | None" = field(
        default=None, repr=False, compare=False
    )
    _row_map: "dict | None" = field(default=None, repr=False, compare=False)

    @property
    def n_vars(self) -> int:
        return self.obj.shape[0]

    @property
    def n_rows(self) -> int:
        return self.A_ub.shape[0]

    def bounds_list(self) -> list:
        """Bounds in the ``[(lo, hi), ...]`` form ``linprog`` expects.

        The list is cached on the instance (it used to be rebuilt — an
        O(n) Python loop — on every solve of the K^2 re-solve loops).
        In-place mutation of ``lb``/``ub`` must be followed by
        :meth:`invalidate_bounds`.
        """
        if self._bounds_cache is None:
            self._bounds_cache = [
                (float(lo), None if np.isinf(hi) else float(hi))
                for lo, hi in zip(self.lb, self.ub)
            ]
        return self._bounds_cache

    def invalidate_bounds(self) -> None:
        """Drop the :meth:`bounds_list` cache after mutating lb/ub."""
        self._bounds_cache = None

    def row_id(self, label: str) -> int:
        """Row index of the constraint labelled ``label`` (KeyError if absent)."""
        if self._row_map is None:
            self._row_map = {lab: i for i, lab in enumerate(self.row_labels)}
        return self._row_map[label]

    def has_row(self, label: str) -> bool:
        """True when a constraint row labelled ``label`` exists."""
        if self._row_map is None:
            self._row_map = {lab: i for i, lab in enumerate(self.row_labels)}
        return label in self._row_map

    def with_bounds(self, lb: np.ndarray, ub: np.ndarray) -> "LPInstance":
        """Copy sharing matrices but with different box bounds (B&B, LPRR)."""
        return LPInstance(
            obj=self.obj,
            A_ub=self.A_ub,
            b_ub=self.b_ub,
            lb=np.asarray(lb, dtype=float),
            ub=np.asarray(ub, dtype=float),
            index=self.index,
            row_labels=self.row_labels,
        )

    def fresh_copy(self) -> "LPInstance":
        """Independent-data copy sharing the immutable structure.

        ``obj``/``b_ub``/``lb``/``ub`` are copied because callers (the
        session-backed heuristics) mutate them in place; ``A_ub``,
        ``index`` and ``row_labels`` are shared — nothing in the library
        writes to them after assembly.
        """
        return LPInstance(
            obj=self.obj.copy(),
            A_ub=self.A_ub,
            b_ub=self.b_ub.copy(),
            lb=self.lb.copy(),
            ub=self.ub.copy(),
            index=self.index,
            row_labels=self.row_labels,
            _row_map=self._row_map,
        )


class _COOBuilder:
    """Accumulate (row, col, value) triplets for one CSR conversion."""

    def __init__(self):
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []
        self.rhs: list[float] = []
        self.labels: list[str] = []
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def new_row(self, rhs: float, label: str) -> int:
        self.rhs.append(float(rhs))
        self.labels.append(label)
        return len(self.rhs) - 1

    def set(self, row: int, col: int, value: float) -> None:
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(float(value))

    def set_many(self, rows, cols, vals) -> None:
        """Batch variant of :meth:`set` backed by NumPy arrays.

        ``vals`` may be a scalar (broadcast over all entries). One call
        appends a whole block of triplets without a Python-level loop.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        if rows.shape != cols.shape:
            raise ValueError(
                f"rows/cols length mismatch: {rows.shape} vs {cols.shape}"
            )
        vals = np.broadcast_to(
            np.asarray(vals, dtype=float), rows.shape
        ).copy()
        if rows.size:
            self._chunks.append((rows, cols, vals))

    def to_csr(self, n_vars: int) -> tuple[sp.csr_matrix, np.ndarray]:
        rows = [np.asarray(self.rows, dtype=np.int64)]
        cols = [np.asarray(self.cols, dtype=np.int64)]
        vals = [np.asarray(self.vals, dtype=float)]
        for r, c, v in self._chunks:
            rows.append(r)
            cols.append(c)
            vals.append(v)
        matrix = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(len(self.rhs), n_vars),
        ).tocsr()
        return matrix, np.asarray(self.rhs, dtype=float)


class LPBuildCache:
    """Cross-call cache of assembled program-(7) instances.

    Templates are keyed by ``(platform fingerprint, objective, payoffs)``
    — everything the assembled matrices depend on — so repeated solves of
    the same (or an equal-but-distinct) problem skip the whole COO
    assembly. :meth:`fetch` returns a :meth:`LPInstance.fresh_copy`, so
    callers may mutate bounds/RHS freely while the pristine template
    survives; results are therefore bitwise-identical with and without
    the cache. The cache also memoises the densified ``A_ub`` that every
    :class:`~repro.lp.session.LPSession` needs (keyed by the CSR object
    all copies of a template share), so repeated sessions skip the
    ``toarray()`` as well.

    Install with :func:`use_build_cache`; :class:`repro.api.Solver` owns
    one per instance — it is the facade's cross-call warm state. The
    counters feed ``benchmarks/bench_api_reuse.py``: ``cold_builds``
    counts actual assemblies, ``build_hits`` the assemblies avoided.

    Thread safety: every lookup/insert/counter mutation holds an
    internal re-entrant lock, so one cache may back concurrent solves
    from many threads (the :mod:`repro.service` request path hammers a
    pooled :class:`repro.api.Solver` this way). The lock guards only the
    cache's own state — the returned template *copies* are private to
    the caller, and the shared dense matrix is read-only by contract —
    so solves themselves still run concurrently.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = int(max_entries)
        self._templates: "dict[tuple, LPInstance]" = {}
        self._dense: "dict[int, tuple]" = {}
        self._bases: "dict[int, tuple]" = {}
        self._lock = threading.RLock()
        self.build_hits = 0
        self.cold_builds = 0
        self.dense_hits = 0
        self.dense_builds = 0
        self.basis_hits = 0
        self.basis_stores = 0

    # ------------------------------------------------------------------
    def key_for(
        self,
        problem: SteadyStateProblem,
        obj_fn: Objective,
        base_throughputs: "np.ndarray | None",
    ) -> "tuple | None":
        """Cache key for a build request, or ``None`` when uncacheable.

        Residual re-solves (non-zero ``base_throughputs``) and custom
        objective instances are built fresh every time: the former are
        one-shot programs, the latter could shadow a registered name
        with different coefficients.
        """
        if base_throughputs is not None and np.any(base_throughputs):
            return None
        if get_objective(obj_fn.name) is not obj_fn:
            return None
        from repro.platform.serialization import platform_fingerprint

        try:
            fingerprint = platform_fingerprint(problem.platform)
        except Exception:  # unserialisable platform stand-in
            return None
        return (fingerprint, obj_fn.name, problem.payoffs.tobytes())

    def fetch(self, key: tuple) -> "LPInstance | None":
        with self._lock:
            template = self._templates.get(key)
            if template is None:
                return None
            self.build_hits += 1
            return template.fresh_copy()

    def store(self, key: "tuple | None", instance: LPInstance) -> None:
        with self._lock:
            self.cold_builds += 1
            if key is None:
                return
            self._templates[key] = instance.fresh_copy()
            while len(self._templates) > self.max_entries:
                oldest = next(iter(self._templates))
                del self._templates[oldest]

    # ------------------------------------------------------------------
    def dense_matrix(self, instance: LPInstance) -> np.ndarray:
        """Shared dense ``A_ub`` for all copies of one template.

        Keyed by the identity of the CSR matrix (which ``fresh_copy``
        and ``with_bounds`` share); the entry keeps a strong reference
        to the CSR so the id cannot be recycled while the cache lives.
        Consumers only read the array (``simplex_solve`` copies into its
        own tableau), so sharing is safe.
        """
        with self._lock:
            key = id(instance.A_ub)
            entry = self._dense.get(key)
            if entry is None or entry[0] is not instance.A_ub:
                self.dense_builds += 1
                entry = (
                    instance.A_ub,
                    np.asarray(instance.A_ub.toarray(), dtype=float),
                )
                self._dense[key] = entry
                while len(self._dense) > self.max_entries:
                    oldest = next(iter(self._dense))
                    del self._dense[oldest]
            else:
                self.dense_hits += 1
            return entry[1]

    # ------------------------------------------------------------------
    def stored_basis(self, instance: LPInstance):
        """Last shared optimal-basis token for ``instance``'s template.

        Keyed — like :meth:`dense_matrix` — by the identity of the CSR
        matrix all copies of a template share, so only solves of the
        *same* assembled program (same platform, objective and payoffs)
        ever exchange bases. Opt-in: only sessions constructed with
        ``share_bases=True`` read or write this store, because a seeded
        basis makes results depend on what the cache solved before
        (degenerate LPs admit multiple optimal vertices).
        """
        with self._lock:
            entry = self._bases.get(id(instance.A_ub))
            if entry is None or entry[0] is not instance.A_ub:
                return None
            self.basis_hits += 1
            return entry[1]

    def store_basis(self, instance: LPInstance, basis) -> None:
        """Publish ``instance``'s latest optimal basis for later sessions."""
        with self._lock:
            self._bases[id(instance.A_ub)] = (instance.A_ub, basis)
            self.basis_stores += 1
            while len(self._bases) > self.max_entries:
                oldest = next(iter(self._bases))
                del self._bases[oldest]

    def stats(self) -> dict:
        with self._lock:
            return {
                "cold_builds": self.cold_builds,
                "build_hits": self.build_hits,
                "dense_builds": self.dense_builds,
                "dense_hits": self.dense_hits,
                "basis_hits": self.basis_hits,
                "basis_stores": self.basis_stores,
                "templates": len(self._templates),
            }


_ACTIVE_BUILD_CACHE: "ContextVar[LPBuildCache | None]" = ContextVar(
    "repro_lp_build_cache", default=None
)


def active_build_cache() -> "LPBuildCache | None":
    """The :class:`LPBuildCache` installed for the current context."""
    return _ACTIVE_BUILD_CACHE.get()


@contextmanager
def use_build_cache(cache: LPBuildCache):
    """Install ``cache`` for :func:`build_lp` / ``LPSession`` in the block.

    Nesting is outer-wins: if a cache is already active, the block keeps
    it (and yields it), so batched drivers — ``Solver.solve_many`` over
    per-instance ``solve`` calls — compose into one shared cache instead
    of shadowing each other.
    """
    current = _ACTIVE_BUILD_CACHE.get()
    if current is not None:
        yield current
        return
    token = _ACTIVE_BUILD_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_BUILD_CACHE.reset(token)


def build_lp(
    problem: SteadyStateProblem,
    objective: "str | Objective | None" = None,
    base_throughputs: "np.ndarray | None" = None,
) -> LPInstance:
    """Assemble the rational relaxation of program (7).

    Parameters
    ----------
    problem:
        Platform + applications; the objective defaults to
        ``problem.objective`` but can be overridden.
    base_throughputs:
        Per-application throughput already secured outside this LP
        (iterated heuristics solve on *residual* capacity). Under MAXMIN
        the linearisation rows become ``t - pi_k * sum_l alpha[k, l] <=
        pi_k * base_k`` so ``t`` bounds the combined value; under SUM the
        base is a constant and changes nothing.
    """
    from repro.obs.trace import current_tracer

    tracer = current_tracer()
    if not tracer.enabled:
        return _build_lp(problem, objective, base_throughputs)
    cache = active_build_cache()
    hits_before = cache.stats()["build_hits"] if cache is not None else 0
    with tracer.span("lp_build") as span:
        instance = _build_lp(problem, objective, base_throughputs)
        span.set(
            cache_hit=(
                cache is not None
                and cache.stats()["build_hits"] > hits_before
            ),
            n_vars=int(instance.obj.shape[0]),
            n_rows=int(instance.b_ub.shape[0]),
        )
    return instance


def _build_lp(
    problem: SteadyStateProblem,
    objective: "str | Objective | None" = None,
    base_throughputs: "np.ndarray | None" = None,
) -> LPInstance:
    platform = problem.platform
    obj_fn = get_objective(objective) if objective is not None else problem.objective
    payoffs = problem.payoffs
    K = platform.n_clusters
    if base_throughputs is None:
        base_throughputs = np.zeros(K)
    else:
        base_throughputs = np.asarray(base_throughputs, dtype=float)
        if base_throughputs.shape != (K,):
            raise ValueError(
                f"base_throughputs must have shape ({K},), got "
                f"{base_throughputs.shape}"
            )

    cache = active_build_cache()
    cache_key = None
    if cache is not None:
        cache_key = cache.key_for(problem, obj_fn, base_throughputs)
        if cache_key is not None:
            cached = cache.fetch(cache_key)
            if cached is not None:
                return cached

    index = shared_variable_index(platform, with_t=(obj_fn.name == "maxmin"))
    n = index.n_vars
    builder = _COOBuilder()

    # (7b) compute capacity: sum_l alpha[l, k] <= s_k
    speeds = platform.speeds
    compute_rows = [builder.new_row(speeds[k], f"compute[{k}]") for k in range(K)]
    # (7c) local link: sum_{l != k} alpha[k, l] + sum_{j != k} alpha[j, k] <= g_k
    g = platform.local_capacities
    local_rows = [builder.new_row(g[k], f"local[{k}]") for k in range(K)]

    # alpha[k, l] occupies flat position i of alpha_pairs; the (7b)/(7c)
    # coefficient blocks go in as three fancy-indexed batches.
    alpha_pair_arr = np.asarray(index.alpha_pairs, dtype=np.int64).reshape(-1, 2)
    alpha_cols = np.arange(index.n_alpha, dtype=np.int64)
    compute_row_of = np.asarray(compute_rows, dtype=np.int64)
    local_row_of = np.asarray(local_rows, dtype=np.int64)
    builder.set_many(compute_row_of[alpha_pair_arr[:, 1]], alpha_cols, 1.0)
    remote = alpha_pair_arr[:, 0] != alpha_pair_arr[:, 1]
    builder.set_many(local_row_of[alpha_pair_arr[remote, 0]], alpha_cols[remote], 1.0)
    builder.set_many(local_row_of[alpha_pair_arr[remote, 1]], alpha_cols[remote], 1.0)

    # (7d) connection counts per backbone link
    for name in sorted(platform.links):
        link = platform.links[name]
        pairs = [p for p in platform.routes_through(name) if index.has_beta(*p)]
        if not pairs:
            continue
        row = builder.new_row(link.max_connect, f"connect[{name}]")
        for (k, l) in pairs:
            builder.set(row, index.beta(k, l), 1.0)

    # (7e) route bandwidth: alpha[k, l] - beta[k, l] * bw_route <= 0
    for (k, l) in index.beta_pairs:
        bw = platform.route_bandwidth(k, l)
        row = builder.new_row(0.0, f"bandwidth[{k},{l}]")
        builder.set(row, index.alpha(k, l), 1.0)
        builder.set(row, index.beta(k, l), -bw)

    # MAXMIN linearisation: t - pi_k * alpha_k <= pi_k * base_k for
    # participating apps (base_k = 0 in the plain formulation).
    if index.with_t:
        for k in range(K):
            if payoffs[k] <= 0:
                continue
            row = builder.new_row(payoffs[k] * base_throughputs[k], f"maxmin[{k}]")
            builder.set(row, index.t_index, 1.0)
            mine = alpha_cols[alpha_pair_arr[:, 0] == k]
            builder.set_many(np.full(mine.size, row, dtype=np.int64), mine, -payoffs[k])

    A_ub, b_ub = builder.to_csr(n)

    # objective (maximisation sense)
    obj = np.zeros(n, dtype=float)
    if obj_fn.name == "sum":
        obj[alpha_cols] = payoffs[alpha_pair_arr[:, 0]]
    else:
        obj[index.t_index] = 1.0

    # box bounds: alpha >= 0 free above; beta in [0, route connection cap]
    lb = np.zeros(n, dtype=float)
    ub = np.full(n, np.inf, dtype=float)
    for (k, l) in index.beta_pairs:
        ub[index.beta(k, l)] = float(platform.route(k, l).connection_cap)
    if index.with_t and not np.any(payoffs > 0):
        # No participating application: the MAXMIN value is 0 by
        # convention and t has no linearisation row to bound it.
        ub[index.t_index] = 0.0

    instance = LPInstance(
        obj=obj,
        A_ub=A_ub,
        b_ub=b_ub,
        lb=lb,
        ub=ub,
        index=index,
        row_labels=builder.labels,
    )
    if cache is not None:
        cache.store(cache_key, instance)
    return instance
