"""LP substrate: program (7) in matrix form plus solver backends.

* :mod:`repro.lp.indexing` / :mod:`repro.lp.builder` assemble the
  steady-state LP (rational relaxation of program (7)) as sparse
  matrices;
* :mod:`repro.lp.scipy_backend` solves it with HiGHS
  (``scipy.optimize.linprog``);
* :mod:`repro.lp.simplex` is a from-scratch dense two-phase simplex —
  the stand-in for the paper's ``lp_solve`` package — cross-checked
  against HiGHS in the test suite;
* :mod:`repro.lp.milp_backend` and :mod:`repro.lp.branch_and_bound`
  solve the *mixed* program exactly (HiGHS MILP and our own LP-based
  branch-and-bound), something the paper could not afford in 2004;
* :mod:`repro.lp.session` is the warm-started re-solve layer for the
  K^2 heuristic hot paths: one :class:`~repro.lp.session.LPSession` per
  instance, in-place bound/RHS mutation, fixed-variable presolve, and
  optimal-basis reuse across consecutive solves.
"""

from repro.lp.indexing import VariableIndex
from repro.lp.builder import LPInstance, build_lp
from repro.lp.solution import LPSolution
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.milp_backend import solve_milp_scipy
from repro.lp.session import (
    Basis,
    LPSession,
    SessionStats,
    prefer_session,
    resolve_lp_backend,
)
from repro.lp.simplex import SimplexResult, simplex_solve
from repro.lp.branch_and_bound import BranchAndBoundResult, solve_branch_and_bound

__all__ = [
    "VariableIndex",
    "LPInstance",
    "build_lp",
    "LPSolution",
    "solve_lp_scipy",
    "solve_milp_scipy",
    "Basis",
    "LPSession",
    "SessionStats",
    "prefer_session",
    "resolve_lp_backend",
    "SimplexResult",
    "simplex_solve",
    "BranchAndBoundResult",
    "solve_branch_and_bound",
]
