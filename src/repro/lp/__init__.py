"""LP substrate: program (7) in matrix form plus solver backends.

* :mod:`repro.lp.indexing` / :mod:`repro.lp.builder` assemble the
  steady-state LP (rational relaxation of program (7)) as sparse
  matrices;
* :mod:`repro.lp.scipy_backend` solves it with HiGHS
  (``scipy.optimize.linprog``);
* :mod:`repro.lp.simplex` is a from-scratch dense two-phase *tableau*
  simplex — the stand-in for the paper's ``lp_solve`` package — kept as
  the arithmetic reference engine, cross-checked against HiGHS;
* :mod:`repro.lp.revised` over :mod:`repro.lp.basis_lu` is the
  bounded-variable *revised* simplex: LU-factorized basis with eta
  updates + periodic refactorization, a dual-simplex re-solve mode for
  carried bases, and canonical-vertex selection so warm and cold solves
  of the same program report the same optimal vertex — the default
  session engine;
* :mod:`repro.lp.milp_backend` and :mod:`repro.lp.branch_and_bound`
  solve the *mixed* program exactly (HiGHS MILP and our own LP-based
  branch-and-bound), something the paper could not afford in 2004;
* :mod:`repro.lp.session` is the warm-started re-solve layer for the
  K^2 heuristic hot paths: one :class:`~repro.lp.session.LPSession` per
  instance, in-place bound/RHS mutation, and optimal-basis (plus LU)
  reuse across consecutive solves, on either engine.
"""

from repro.lp.indexing import VariableIndex
from repro.lp.builder import LPInstance, build_lp
from repro.lp.solution import LPSolution
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.milp_backend import solve_milp_scipy
from repro.lp.session import (
    LP_ENGINES,
    Basis,
    LPSession,
    SessionStats,
    prefer_session,
    resolve_lp_backend,
)
from repro.lp.basis_lu import LUBasis, SingularBasisError
from repro.lp.revised import RevisedResult, revised_solve
from repro.lp.simplex import SimplexResult, simplex_solve
from repro.lp.branch_and_bound import BranchAndBoundResult, solve_branch_and_bound

__all__ = [
    "VariableIndex",
    "LPInstance",
    "build_lp",
    "LPSolution",
    "solve_lp_scipy",
    "solve_milp_scipy",
    "LP_ENGINES",
    "Basis",
    "LPSession",
    "SessionStats",
    "prefer_session",
    "resolve_lp_backend",
    "LUBasis",
    "SingularBasisError",
    "RevisedResult",
    "revised_solve",
    "SimplexResult",
    "simplex_solve",
    "BranchAndBoundResult",
    "solve_branch_and_bound",
]
