"""Variable layout of program (7).

The LP vector ``x`` is laid out as::

    [ alpha variables | beta variables | t (MAXMIN only) ]

* one ``alpha`` variable per *allowed* ordered pair: the local pair
  ``(k, k)`` for every cluster, plus every routed remote pair;
* one ``beta`` variable per routed remote pair whose route traverses at
  least one backbone link (pairs sharing a router need no connection
  bookkeeping: only the local links constrain them);
* the auxiliary ``t`` variable linearises the MAXMIN objective.

Pairs without a route get no variable at all, which both shrinks the LP
and encodes constraint "no traffic between disconnected clusters"
structurally.
"""

from __future__ import annotations

import numpy as np

from repro.platform.topology import Platform


class VariableIndex:
    """Bidirectional mapping between (kind, pair) and flat LP indices."""

    def __init__(self, platform: Platform, with_t: bool):
        K = platform.n_clusters
        alpha_pairs: list[tuple[int, int]] = [(k, k) for k in range(K)]
        beta_pairs: list[tuple[int, int]] = []
        for (k, l) in platform.routed_pairs():
            alpha_pairs.append((k, l))
            if len(platform.route(k, l)) > 0:
                beta_pairs.append((k, l))
        alpha_pairs.sort()

        self.platform = platform
        self.n_clusters = K
        self.alpha_pairs: tuple[tuple[int, int], ...] = tuple(alpha_pairs)
        self.beta_pairs: tuple[tuple[int, int], ...] = tuple(beta_pairs)
        self.n_alpha = len(alpha_pairs)
        self.n_beta = len(beta_pairs)
        self.with_t = with_t

        self._alpha_of = {pair: i for i, pair in enumerate(alpha_pairs)}
        self._beta_of = {
            pair: self.n_alpha + i for i, pair in enumerate(beta_pairs)
        }

    # ------------------------------------------------------------------
    @property
    def n_vars(self) -> int:
        return self.n_alpha + self.n_beta + (1 if self.with_t else 0)

    @property
    def t_index(self) -> int:
        """Flat index of the MAXMIN auxiliary variable ``t``."""
        if not self.with_t:
            raise ValueError("this LP has no t variable (SUM objective)")
        return self.n_alpha + self.n_beta

    def alpha(self, k: int, l: int) -> int:
        """Flat index of ``alpha[k, l]``; KeyError for disallowed pairs."""
        return self._alpha_of[(k, l)]

    def beta(self, k: int, l: int) -> int:
        """Flat index of ``beta[k, l]``; KeyError when the pair has none."""
        return self._beta_of[(k, l)]

    def has_alpha(self, k: int, l: int) -> bool:
        return (k, l) in self._alpha_of

    def has_beta(self, k: int, l: int) -> bool:
        return (k, l) in self._beta_of

    # ------------------------------------------------------------------
    def alpha_matrix(self, x: np.ndarray) -> np.ndarray:
        """Scatter the alpha block of ``x`` into a dense (K, K) matrix."""
        out = np.zeros((self.n_clusters, self.n_clusters), dtype=float)
        for i, (k, l) in enumerate(self.alpha_pairs):
            out[k, l] = x[i]
        return out

    def beta_matrix(self, x: np.ndarray) -> np.ndarray:
        """Scatter the beta block of ``x`` into a dense (K, K) float matrix."""
        out = np.zeros((self.n_clusters, self.n_clusters), dtype=float)
        for i, (k, l) in enumerate(self.beta_pairs):
            out[k, l] = x[self.n_alpha + i]
        return out

    def integrality(self) -> np.ndarray:
        """Integrality flags for :func:`scipy.optimize.milp` (1 = integer)."""
        flags = np.zeros(self.n_vars, dtype=np.int8)
        flags[self.n_alpha : self.n_alpha + self.n_beta] = 1
        return flags

    def __repr__(self) -> str:
        return (
            f"VariableIndex(K={self.n_clusters}, alpha={self.n_alpha}, "
            f"beta={self.n_beta}, t={self.with_t})"
        )


def shared_variable_index(platform: Platform, with_t: bool) -> VariableIndex:
    """A memoised :class:`VariableIndex` for ``platform``.

    The index depends only on the platform topology (and whether the LP
    carries the MAXMIN ``t`` variable), and is immutable once built, so
    every LP assembled for the same platform object — the upper bound,
    each heuristic's relaxation, every residual re-solve of the iterated
    heuristics, and each instance of a :func:`repro.parallel.solve_many`
    batch that shares the platform — can reuse one instance. Building it
    is O(K^2) dict work, a measurable slice of small-K assembly time.

    The memo lives on the platform instance itself (not in a module
    cache), so it is garbage-collected with its platform — sweeping
    thousands of platforms leaks nothing.
    """
    try:
        per_platform = platform.__dict__.setdefault("_index_memo", {})
    except AttributeError:  # platform stand-in without a __dict__
        return VariableIndex(platform, with_t)
    key = bool(with_t)
    index = per_platform.get(key)
    if index is None:
        index = per_platform[key] = VariableIndex(platform, key)
    return index
