"""Bounded-variable revised simplex over an LU-factorized basis.

This is the warm-start engine the K^2 heuristic hot paths run on
(:class:`repro.lp.session.LPSession` with ``engine="revised"``, the
default). Where :mod:`repro.lp.simplex` rewrites a dense O(m·n) tableau
on every pivot and turns every finite upper bound into an extra row,
this solver works on the original data:

* problem form: ``maximize c @ x  s.t.  A @ x <= b,  lb <= x <= ub``
  with finite lower bounds and optional finite upper bounds, handled
  *natively* — a nonbasic variable rests at its lower or upper bound
  and a pivot that only drives the entering variable to its opposite
  bound is a bound flip (no basis change at all);
* each iteration prices with one BTRAN and one FTRAN against the
  LU-factorized basis (:class:`repro.lp.basis_lu.LUBasis`), so a pivot
  costs O(m^2 + m·n) flops instead of a full tableau rewrite, and the
  factorization is carried across pivots by product-form eta updates
  with periodic refactorization;
* **primal** iterations (Dantzig pricing, Bland's rule engaged after a
  degenerate stall) solve from a primal-feasible basis; **dual**
  iterations re-solve from a dual-feasible one — the warm-start case
  after bound/RHS edits (branch-and-bound children, iterated-LPRG
  tightening) where the carried optimal basis stays dual-feasible but
  goes primal-infeasible, so no phase-1 restart is needed;
* cold starts use the all-slack basis directly when it is feasible
  (true for every fresh program-(7) instance: ``b >= A @ lb``) and
  otherwise run a dual-simplex phase 1 with zero costs (every basis is
  dual-feasible for the zero objective, so the dual method drives out
  primal infeasibility without artificial variables), then the primal.

Warm starts accept the ``basis``/``at_upper`` arrays of a previous
:class:`RevisedResult` on a nearby LP; the solver picks primal or dual
iterations automatically from the carried basis's status and falls back
to the cold path when the basis is singular or unusable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.lp.basis_lu import LUBasis, SingularBasisError
from repro.util.errors import SolverError

#: reduced-cost / pivot-eligibility tolerance
_OPT_TOL = 1e-9
#: primal feasibility tolerance (relative to bound magnitude)
_FEAS_TOL = 1e-9
#: dual feasibility slack when classifying a carried basis
_DUAL_TOL = 1e-7
#: consecutive degenerate pivots before Bland's rule takes over
_DEGEN_LIMIT = 25
#: a nonbasic reduced cost decisively nonzero for face-pinning purposes
#: (well above pricing noise ~1e-12, well below real reduced costs)
_PIN_TOL = 1e-7
#: carried-basis staleness cutoff: when more than this fraction of the
#: basic variables sit outside their bounds after a warm load, the edits
#: since the basis was taken amount to a wholesale program rewrite (the
#: iterated-LPRG residual pattern) and a cold start beats the long dual
#: repair; small violation counts (B&B bound flips, single-row RHS
#: tightenings) still take the dual-repair path
_STALE_BASIS_FRACTION = 0.25

#: vstat codes
_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2


@dataclass
class RevisedResult:
    """Outcome of :func:`revised_solve`.

    ``status`` is one of ``"optimal"``, ``"infeasible"``, ``"unbounded"``,
    ``"iteration_limit"`` or ``"singular"``; ``x`` and ``value`` are
    meaningful only when optimal.

    ``basis`` holds the m basic columns (``[0, n)`` structural,
    ``[n, n + m)`` slacks) and ``at_upper`` flags the nonbasic columns
    resting at their upper bound — feed both back as
    ``initial_basis``/``initial_at_upper`` to warm-start a re-solve of a
    nearby LP. ``warm_started`` records whether the carried basis was
    usable; ``dual_steps`` counts dual-simplex iterations (> 0 means the
    carried basis was repaired dual-feasibly, no phase-1 restart).
    """

    status: str
    x: "np.ndarray | None" = None
    value: float = float("nan")
    iterations: int = 0
    basis: "np.ndarray | None" = None
    at_upper: "np.ndarray | None" = None
    warm_started: bool = False
    dual_steps: int = 0
    refactorizations: int = 0
    #: live factorization of the final basis (optimal runs only). Hand
    #: it back as ``initial_lu`` together with ``basis`` to make the
    #: next warm start skip its load-time refactorization entirely.
    lu: "LUBasis | None" = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


class _Program:
    """Shared state of one :func:`revised_solve` call."""

    def __init__(self, c, A, b, lb, ub, max_iter):
        self.c = c
        self.A = A
        self.b = b
        self.m, self.n = A.shape
        n_cols = self.n + self.m
        self.lb = np.concatenate([lb, np.zeros(self.m)])
        self.ub = np.concatenate([ub, np.full(self.m, np.inf)])
        self.c_ext = np.concatenate([c, np.zeros(self.m)])
        self.fixed = self.lb == self.ub
        self.max_iter = max_iter
        self.iterations = 0
        self.dual_steps = 0
        self.lu: "LUBasis | None" = None
        self.vstat = np.full(n_cols, _AT_LOWER, dtype=np.int8)
        # scale-aware feasibility slack: program-(7) capacities span
        # orders of magnitude, so feasibility is judged relative to the
        # data, not against an absolute epsilon
        self.feas_tol = _FEAS_TOL * max(
            1.0,
            float(np.max(np.abs(b))) if b.size else 0.0,
            float(np.max(np.abs(lb))) if lb.size else 0.0,
            float(np.max(ub[np.isfinite(ub)], initial=0.0)),
        )

    # -- linear algebra helpers ---------------------------------------
    def load_basis(self, basis: np.ndarray) -> bool:
        """Factorize ``basis``; False when singular."""
        try:
            self.lu = LUBasis(self.A, basis)
        except SingularBasisError:
            self.lu = None
            return False
        self.vstat[self.vstat == _BASIC] = _AT_LOWER
        self.vstat[basis] = _BASIC
        return True

    def adopt_basis(self, lu: LUBasis) -> None:
        """Take over a still-valid factorization from a previous solve."""
        if lu.updates_since_refactor:  # pragma: no cover - defensive
            lu.refactorize()
        self.lu = lu
        self.vstat[self.vstat == _BASIC] = _AT_LOWER
        self.vstat[lu.basis] = _BASIC

    def nonbasic_values(self) -> np.ndarray:
        """Values of all columns with basics zeroed (rhs contribution)."""
        xn = np.where(self.vstat == _AT_UPPER, self.ub, self.lb)
        xn[self.vstat == _BASIC] = 0.0
        return xn

    def basic_solution(self) -> tuple[np.ndarray, np.ndarray]:
        """``(x_B, x_full)`` for the current basis and nonbasic rests."""
        xn = self.nonbasic_values()
        rhs = self.b - self.A @ xn[: self.n] - xn[self.n :]
        xb = self.lu.ftran(rhs)
        x = xn
        x[self.lu.basis] = xb
        return xb, x

    def reduced_costs(self, c_ext: np.ndarray) -> np.ndarray:
        """``d = c_ext - y A_ext`` with ``y = B^{-T} c_B`` (basics ~ 0)."""
        y = self.lu.btran(c_ext[self.lu.basis])
        d = np.empty(self.n + self.m)
        d[: self.n] = c_ext[: self.n] - y @ self.A
        d[self.n :] = c_ext[self.n :] - y
        return d

    def pivot_row_values(self, r: int) -> np.ndarray:
        """Row ``r`` of ``B^{-1} [A | I]`` (the dual pricing row)."""
        e = np.zeros(self.m)
        e[r] = 1.0
        rho = self.lu.btran(e)
        alpha = np.empty(self.n + self.m)
        alpha[: self.n] = rho @ self.A
        alpha[self.n :] = rho
        return alpha


def _primal_loop(
    p: _Program,
    c_ext: "np.ndarray | None" = None,
    frozen: "np.ndarray | None" = None,
) -> str:
    """Primal simplex from a primal-feasible basis. Returns a status.

    ``c_ext`` defaults to the program's own objective; the vertex
    canonicalization pass re-enters with a secondary objective and a
    wider ``frozen`` mask (columns pinned to their current bound).
    """
    if c_ext is None:
        c_ext = p.c_ext
    if frozen is None:
        frozen = p.fixed
    lu = p.lu
    degen_streak = 0
    while p.iterations < p.max_iter:
        xb, _ = p.basic_solution()
        d = p.reduced_costs(c_ext)
        improving = ~frozen & (
            ((p.vstat == _AT_LOWER) & (d > _OPT_TOL))
            | ((p.vstat == _AT_UPPER) & (d < -_OPT_TOL))
        )
        cand = np.nonzero(improving)[0]
        if cand.size == 0:
            return "optimal"
        if degen_streak > _DEGEN_LIMIT:
            q = int(cand[0])  # Bland: smallest improving index
        else:
            q = int(cand[np.argmax(np.abs(d[cand]))])  # Dantzig
        s = 1.0 if p.vstat[q] == _AT_LOWER else -1.0
        w = lu.ftran(lu.column(q))
        delta = -s * w  # change of x_B per unit step of the entering var

        lb_b = p.lb[lu.basis]
        ub_b = p.ub[lu.basis]
        t = np.full(p.m, np.inf)
        dec = delta < -_OPT_TOL
        if np.any(dec):
            t[dec] = np.maximum(xb[dec] - lb_b[dec], 0.0) / -delta[dec]
        inc = (delta > _OPT_TOL) & np.isfinite(ub_b)
        if np.any(inc):
            t[inc] = np.maximum(ub_b[inc] - xb[inc], 0.0) / delta[inc]
        t_basic = float(np.min(t)) if p.m else np.inf
        t_flip = p.ub[q] - p.lb[q]

        if t_flip <= t_basic:
            if not np.isfinite(t_flip):
                return "unbounded"
            # bound flip: the entering variable crosses its whole range
            # before any basic variable hits a bound — no basis change
            p.vstat[q] = _AT_UPPER if p.vstat[q] == _AT_LOWER else _AT_LOWER
            p.iterations += 1
            degen_streak = degen_streak + 1 if t_flip <= p.feas_tol else 0
            continue
        if not np.isfinite(t_basic):
            return "unbounded"

        # relative tie set (the Bland fix of the tableau solver, here by
        # construction): a large-magnitude minimum still collects its ties
        tie_tol = _OPT_TOL * max(1.0, abs(t_basic))
        tied = np.nonzero(t <= t_basic + tie_tol)[0]
        if degen_streak > _DEGEN_LIMIT:
            r = int(tied[np.argmin(lu.basis[tied])])  # Bland: smallest basic
        else:
            r = int(tied[np.argmax(np.abs(delta[tied]))])  # largest pivot
        leaving = int(lu.basis[r])
        p.vstat[leaving] = _AT_LOWER if delta[r] < 0 else _AT_UPPER
        p.vstat[q] = _BASIC
        try:
            lu.replace_column(r, q, w)
        except SingularBasisError:
            return "singular"
        p.iterations += 1
        degen_streak = degen_streak + 1 if t_basic <= p.feas_tol else 0
    return "iteration_limit"


def _canonicalize(p: _Program, weights: np.ndarray) -> str:
    """Move to a trajectory-independent vertex of the optimal face.

    A warm-started simplex run stops at whichever optimal vertex its
    carried basis leads to, so on a degenerate face warm and cold solves
    of the same LP can report different (equally optimal) solutions —
    which would break the warm==cold reproducibility contract the
    heuristics' rounding decisions rely on. This pass makes the reported
    vertex canonical: every nonbasic column whose reduced cost is
    decisively nonzero is frozen at its current bound (on the optimal
    face those columns cannot move), then a fixed *generic* secondary
    objective — ``weights``, keyed by original column index so reduced
    and full formulations of the same program agree — is maximised over
    the face with ordinary primal iterations. A generic objective has a
    unique maximiser on the face, so the final vertex no longer depends
    on how the solve got there.

    ``weights`` covers the structural columns; slacks get weight zero.
    Returns the primal-loop status (``"optimal"`` when the face search
    converged).
    """
    d = p.reduced_costs(p.c_ext)
    pin = (p.vstat != _BASIC) & (np.abs(d) > _PIN_TOL)
    eps = np.zeros(p.n + p.m)
    eps[: p.n] = weights
    return _primal_loop(p, c_ext=eps, frozen=p.fixed | pin)


def _eject_fixed_basics(p: _Program) -> str:
    """Drive fixed (``lb == ub``) variables out of a carried basis.

    A warm basis can contain a column whose bounds were pinned together
    since it was taken (every beta LPRR fixes, every leaf bound in
    branch-and-bound). Such a column must end up *nonbasic* — a fixed
    nonbasic column is reported bit-exactly at its pinned value, while a
    basic one would come back through an FTRAN with roundoff, breaking
    the warm==cold bitwise contract (cold starts never let a fixed
    column enter). Each ejection is a forced dual pivot on the fixed
    column's row: the entering column is chosen by the dual ratio test,
    so a dual-feasible carried basis stays dual-feasible and the
    follow-up classification still takes the cheap repair path.

    Returns ``"ok"`` when no fixed basic columns remain; any other
    outcome means the caller should discard the basis and start cold.
    """
    lu = p.lu
    for _ in range(p.m):
        basic_fixed = np.nonzero(p.fixed[lu.basis])[0]
        if basic_fixed.size == 0:
            return "ok"
        r = int(basic_fixed[0])
        j = int(lu.basis[r])
        xb, _ = p.basic_solution()
        delta_r = xb[r] - p.lb[j]
        alpha = p.pivot_row_values(r)
        nonbasic = (p.vstat != _BASIC) & ~p.fixed
        if delta_r < 0:
            eligible = nonbasic & (
                ((p.vstat == _AT_LOWER) & (alpha < -_OPT_TOL))
                | ((p.vstat == _AT_UPPER) & (alpha > _OPT_TOL))
            )
        else:
            eligible = nonbasic & (
                ((p.vstat == _AT_LOWER) & (alpha > _OPT_TOL))
                | ((p.vstat == _AT_UPPER) & (alpha < -_OPT_TOL))
            )
        cand = np.nonzero(eligible)[0]
        if cand.size:
            d = p.reduced_costs(p.c_ext)
            ratios = np.abs(d[cand]) / np.abs(alpha[cand])
            best = float(np.min(ratios))
            tied = cand[ratios <= best + _OPT_TOL * max(1.0, best)]
            q = int(tied[np.argmax(np.abs(alpha[tied]))])
        else:
            # no dual-feasibility-preserving direction: take any usable
            # pivot (classification below may then fall back to cold)
            cand = np.nonzero(nonbasic & (np.abs(alpha) > _PIN_TOL))[0]
            if cand.size == 0:
                return "stuck"
            q = int(cand[np.argmax(np.abs(alpha[cand]))])
        w = lu.ftran(lu.column(q))
        if abs(w[r]) <= _OPT_TOL:
            lu.refactorize()
            w = lu.ftran(lu.column(q))
            if abs(w[r]) <= _OPT_TOL:
                return "stuck"
        p.vstat[j] = _AT_LOWER if delta_r <= 0 else _AT_UPPER
        p.vstat[q] = _BASIC
        try:
            lu.replace_column(r, q, w)
        except SingularBasisError:
            return "singular"
        p.iterations += 1
        p.dual_steps += 1
    return "stuck"  # pragma: no cover - m ejections always suffice


def _dual_loop(p: _Program, c_ext: np.ndarray) -> str:
    """Dual simplex from a dual-feasible basis (for ``c_ext``).

    Repairs primal infeasibility — the state a carried optimal basis is
    left in after bound/RHS edits — without touching dual feasibility.
    With ``c_ext = 0`` every basis is dual-feasible, which makes this
    same loop the phase-1 of a cold start from an infeasible slack
    basis. Returns ``"feasible"`` when primal feasibility is restored.
    """
    lu = p.lu
    degen_streak = 0
    while p.iterations < p.max_iter:
        xb, _ = p.basic_solution()
        lb_b = p.lb[lu.basis]
        ub_b = p.ub[lu.basis]
        below = lb_b - xb
        above = xb - ub_b
        above[~np.isfinite(ub_b)] = -np.inf
        viol = np.maximum(below, above)
        bad = np.nonzero(viol > p.feas_tol)[0]
        if bad.size == 0:
            return "feasible"
        if degen_streak > _DEGEN_LIMIT:
            r = int(bad[np.argmin(lu.basis[bad])])  # Bland on the dual
        else:
            r = int(bad[np.argmax(viol[bad])])  # most violated row
        delta_r = xb[r] - (lb_b[r] if below[r] >= above[r] else ub_b[r])

        alpha = p.pivot_row_values(r)
        d = p.reduced_costs(c_ext)
        nonbasic = p.vstat != _BASIC
        if delta_r < 0:  # basic var below lb: leaves at its lower bound
            eligible = nonbasic & ~p.fixed & (
                ((p.vstat == _AT_LOWER) & (alpha < -_OPT_TOL))
                | ((p.vstat == _AT_UPPER) & (alpha > _OPT_TOL))
            )
        else:  # above ub: leaves at its upper bound
            eligible = nonbasic & ~p.fixed & (
                ((p.vstat == _AT_LOWER) & (alpha > _OPT_TOL))
                | ((p.vstat == _AT_UPPER) & (alpha < -_OPT_TOL))
            )
        cand = np.nonzero(eligible)[0]
        if cand.size == 0:
            return "infeasible"
        # dual ratio test: the entering column minimising |d_j / alpha_j|
        # keeps every other reduced cost on its feasible side
        ratios = np.abs(d[cand]) / np.abs(alpha[cand])
        best = float(np.min(ratios))
        tie_tol = _OPT_TOL * max(1.0, best)
        tied = cand[ratios <= best + tie_tol]
        if degen_streak > _DEGEN_LIMIT:
            q = int(tied[0])  # Bland: smallest entering index
        else:
            q = int(tied[np.argmax(np.abs(alpha[tied]))])  # largest pivot
        w = lu.ftran(lu.column(q))
        if abs(w[r]) <= _OPT_TOL:
            # FTRAN disagrees with the BTRAN row: factorization has
            # drifted — refactorize and re-price this row
            lu.refactorize()
            p.iterations += 1
            continue
        leaving = int(lu.basis[r])
        p.vstat[leaving] = _AT_LOWER if delta_r < 0 else _AT_UPPER
        p.vstat[q] = _BASIC
        try:
            lu.replace_column(r, q, w)
        except SingularBasisError:
            return "singular"
        p.iterations += 1
        p.dual_steps += 1
        degen_streak = degen_streak + 1 if best <= _OPT_TOL else 0
    return "iteration_limit"


def _finish(
    p: _Program,
    status: str,
    warm: bool,
    canon: "np.ndarray | None" = None,
) -> RevisedResult:
    """Package a terminal status (extracting x on the optimal path)."""
    if status == "optimal" and canon is not None and p.m:
        # Any non-optimal outcome of the face search means the basis is
        # no longer trustworthy; report "numerical" so callers rescue
        # through HiGHS instead of surfacing a wrong status.
        if _canonicalize(p, canon) != "optimal":
            status = "numerical"
    if status == "optimal" and p.lu is not None and p.lu.updates_since_refactor:
        # Recompute the final point from a fresh factorization of the
        # final basis: the reported floats then depend only on
        # (data, basis, bound statuses), not on the eta history of the
        # path that found them.
        try:
            p.lu.refactorize()
        except SingularBasisError:  # pragma: no cover - defensive
            status = "numerical"
    refactor = p.lu.n_refactor if p.lu is not None else 0
    if status != "optimal":
        return RevisedResult(
            status=status,
            iterations=p.iterations,
            dual_steps=p.dual_steps,
            warm_started=warm,
            refactorizations=refactor,
        )
    xb, x = p.basic_solution()
    lb_b = p.lb[p.lu.basis]
    ub_b = p.ub[p.lu.basis]
    worst = 0.0
    if p.m:
        worst = float(
            max(np.max(lb_b - xb, initial=0.0), np.max(xb - np.where(np.isfinite(ub_b), ub_b, np.inf), initial=0.0))
        )
    if worst > 1e3 * p.feas_tol:
        # the factorization drifted past the feasibility band: a caller
        # (LPSession) treats this like an iteration-limited run and
        # rescues through HiGHS
        return RevisedResult(
            status="numerical",
            iterations=p.iterations,
            dual_steps=p.dual_steps,
            warm_started=warm,
            refactorizations=refactor,
        )
    x_struct = x[: p.n]
    return RevisedResult(
        status="optimal",
        x=x_struct,
        value=float(p.c @ x_struct),
        iterations=p.iterations,
        basis=p.lu.basis.copy(),
        at_upper=(p.vstat == _AT_UPPER).copy(),
        warm_started=warm,
        dual_steps=p.dual_steps,
        refactorizations=refactor,
        lu=p.lu,
    )


def _primal_feasible(p: _Program) -> bool:
    return _count_primal_violations(p) == 0


def _count_primal_violations(p: _Program) -> int:
    """How many basic variables sit outside their bounds."""
    xb, _ = p.basic_solution()
    lb_b = p.lb[p.lu.basis]
    ub_b = p.ub[p.lu.basis]
    viol = lb_b - xb > p.feas_tol
    finite = np.isfinite(ub_b)
    viol |= finite & (xb - ub_b > p.feas_tol)
    return int(np.count_nonzero(viol))


def _dual_feasible(p: _Program) -> bool:
    d = p.reduced_costs(p.c_ext)
    free = ~p.fixed
    at_lo = free & (p.vstat == _AT_LOWER)
    at_up = free & (p.vstat == _AT_UPPER)
    return not (
        np.any(d[at_lo] > _DUAL_TOL) or np.any(d[at_up] < -_DUAL_TOL)
    )


def revised_solve(
    c: Sequence[float],
    A_ub: "np.ndarray | Sequence[Sequence[float]]",
    b_ub: Sequence[float],
    bounds: "Sequence[tuple[float, float]] | tuple[np.ndarray, np.ndarray] | None" = None,
    max_iter: int = 100_000,
    initial_basis: "np.ndarray | None" = None,
    initial_at_upper: "np.ndarray | None" = None,
    initial_lu: "LUBasis | None" = None,
    canon_weights: "np.ndarray | None" = None,
) -> RevisedResult:
    """Maximise ``c @ x`` subject to ``A_ub @ x <= b_ub`` and box bounds.

    Parameters
    ----------
    bounds:
        Per-variable ``(lb, ub)``; ``None`` means ``(0, inf)`` for all.
        A pair of ndarrays ``(lb, ub)`` is accepted directly. Lower
        bounds must be finite; finite upper bounds are handled natively
        (no extra rows).
    initial_basis, initial_at_upper:
        ``basis``/``at_upper`` of a previous :class:`RevisedResult` on a
        nearby LP. Columns whose bounds have been pinned together since
        the basis was taken are first ejected with forced dual pivots
        (:func:`_eject_fixed_basics`); a carried basis that is still
        primal-feasible then resumes with primal iterations; one left
        dual-feasible-but-primal-infeasible by bound/RHS edits is
        repaired with dual iterations (no phase-1 restart); anything
        else falls back to a cold start.
    initial_lu:
        The ``lu`` of the previous :class:`RevisedResult`. When it still
        factorizes exactly ``initial_basis`` over the same ``A_ub``
        array, the load-time refactorization is skipped — a zero-pivot
        warm re-solve then costs only FTRAN/BTRAN passes. Ignored when
        it does not match (the basis is factorized from scratch).
    canon_weights:
        Per-structural-column weights for the optimal-vertex
        canonicalization pass (see :func:`_canonicalize`). ``None``
        (the default) skips the pass: the solver then stops at whatever
        optimal vertex its trajectory reaches. :class:`~repro.lp.
        session.LPSession` always supplies weights so warm and cold
        solves of the same program report the same vertex.
    """
    c = np.asarray(c, dtype=float)
    A = np.asarray(A_ub, dtype=float)
    if A.ndim != 2:
        raise SolverError(f"A_ub must be 2-D, got shape {A.shape}")
    b = np.asarray(b_ub, dtype=float)
    n = c.shape[0]
    if A.shape[1] != n or A.shape[0] != b.shape[0]:
        raise SolverError(
            f"inconsistent shapes: c{c.shape}, A{A.shape}, b{b.shape}"
        )

    if bounds is None:
        lb = np.zeros(n)
        ub = np.full(n, np.inf)
    elif (
        isinstance(bounds, tuple)
        and len(bounds) == 2
        and isinstance(bounds[0], np.ndarray)
    ):
        lb = np.asarray(bounds[0], dtype=float)
        ub = np.asarray(bounds[1], dtype=float)
    else:
        lb = np.array([bo[0] for bo in bounds], dtype=float)
        ub = np.array(
            [np.inf if bo[1] is None else bo[1] for bo in bounds], dtype=float
        )
    if np.any(~np.isfinite(lb)):
        raise SolverError("revised_solve requires finite lower bounds")
    if np.any(ub < lb - _OPT_TOL):
        return RevisedResult(status="infeasible")

    p = _Program(c, A, b, lb, ub, max_iter)
    m = p.m

    # -- warm start: classify the carried basis ------------------------
    if initial_basis is not None and m > 0:
        basis = np.asarray(initial_basis, dtype=int).ravel()
        usable = (
            basis.shape == (m,)
            and np.unique(basis).size == m
            and (basis.min() >= 0 and basis.max() < n + m)
        )
        loaded = False
        if usable:
            if initial_lu is not None and initial_lu.matches(A, basis):
                p.adopt_basis(initial_lu)
                loaded = True
            else:
                loaded = p.load_basis(basis)
        if loaded:
            if initial_at_upper is not None:
                up = np.asarray(initial_at_upper, dtype=bool).ravel()
                if up.shape == (n + m,):
                    sel = up & (p.vstat != _BASIC) & np.isfinite(p.ub)
                    p.vstat[sel] = _AT_UPPER
            if np.any(p.fixed[p.lu.basis]):
                loaded = _eject_fixed_basics(p) == "ok"
        if loaded:
            violations = _count_primal_violations(p)
            if violations == 0:
                status = _primal_loop(p)
                return _finish(p, status, warm=True, canon=canon_weights)
            if violations <= max(
                1, int(_STALE_BASIS_FRACTION * m)
            ) and _dual_feasible(p):
                status = _dual_loop(p, p.c_ext)
                if status == "feasible":
                    status = _primal_loop(p)
                return _finish(p, status, warm=True, canon=canon_weights)
        # carried basis is unusable / singular / stale (violations point
        # to a wholesale rewrite) / not dual-feasible: cold start
        p.lu = None
        p.vstat[:] = _AT_LOWER

    # -- cold start: all-slack basis at the lower-bound vertex ---------
    p.vstat[:] = _AT_LOWER
    if not p.load_basis(np.arange(n, n + m, dtype=int)):  # pragma: no cover
        return RevisedResult(status="singular")
    if not _primal_feasible(p):
        # phase 1: dual simplex under zero costs (every basis is
        # dual-feasible for c = 0) drives out primal infeasibility
        # without artificial variables
        status = _dual_loop(p, np.zeros(n + m))
        if status != "feasible":
            return _finish(p, "infeasible" if status == "infeasible" else status, warm=False)
    status = _primal_loop(p)
    return _finish(p, status, warm=False, canon=canon_weights)
