"""Warm-started LP re-solve sessions for the K^2 heuristic hot path.

The paper's cost/quality spectrum (Figure 7) is dominated by LP-solve
count: LPRR pays ~K(K-1) solves per instance, iterated LPRG one solve
per round, branch-and-bound one per node — and consecutive LPs in all
three differ only in box bounds and right-hand sides. An
:class:`LPSession` owns one :class:`~repro.lp.builder.LPInstance` and
exploits exactly that structure:

* **in-place mutation** — ``solve(lb=..., ub=..., b_ub=...)`` writes the
  new data into the owned instance (no ``with_bounds`` copy, no
  ``build_lp`` re-assembly);
* **presolve** — variables fixed by ``lb == ub`` (every beta an LPRR
  iteration pins, permanently) are eliminated from the program, their
  contribution folded into the RHS, and rows that became empty or can
  never bind within the remaining box (e.g. connection-count rows once
  all their betas are fixed) are dropped;
* **warm start** — the optimal basis of the previous solve is carried
  across calls (through the presolve's changing variable/row sets, via
  original-coordinate keys) and seeds
  :func:`repro.lp.simplex.simplex_solve`, which skips phase 1 whenever
  the carried basis is still primal-feasible.

``LPSession(instance, warm_start=False)`` is the escape hatch /
reference: every solve then runs the *full* program cold (no presolve,
no basis reuse) through the same bundled simplex, so warm-vs-cold output
can be compared bitwise. HiGHS (:func:`repro.lp.scipy_backend.
solve_lp_scipy`) stays the independent cross-check — the test-suite
verifies session objective values against fresh cold HiGHS solves — and
serves as the in-session fallback if the dense simplex ever hits its
iteration limit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.lp.builder import LPInstance
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.simplex import simplex_solve
from repro.lp.solution import LPSolution
from repro.util.errors import InfeasibleError, UnboundedError

#: slack when deciding a fully-eliminated row is violated by fixed values
_ROW_FEAS_TOL = 1e-7
#: slack when a row's maximum activity proves it can never bind
_REDUNDANT_TOL = 1e-9

#: sentinel distinguishing "use the session's carried basis" from an
#: explicit None (= force a cold start for this call)
_AUTO = object()

#: largest ``n_vars + n_rows`` for which the dense-tableau session beats
#: a cold HiGHS call per solve (measured on the reference LPRR sweep:
#: ~1.8x faster at K=6, break-even near K=8, slower beyond)
AUTO_SIZE_LIMIT = 200


def prefer_session(instance: LPInstance) -> bool:
    """Should the ``lp_backend="auto"`` policy re-solve via a session?

    The warm-started dense simplex wins while the tableau stays small;
    past :data:`AUTO_SIZE_LIMIT` the O(m*n)-per-pivot dense updates lose
    to a cold HiGHS call and the heuristics fall back to the legacy
    rebuild-per-solve path.
    """
    return instance.n_vars + instance.n_rows <= AUTO_SIZE_LIMIT


def resolve_lp_backend(instance: LPInstance, lp_backend: str) -> str:
    """Validate an ``lp_backend`` knob and resolve ``"auto"`` for ``instance``.

    Returns ``"session"`` or ``"scipy"``; raises ``ValueError`` on
    anything else. Shared by every session-consuming heuristic so the
    auto policy lives in exactly one place.
    """
    if lp_backend not in ("auto", "session", "scipy"):
        raise ValueError(
            f"lp_backend must be 'auto', 'session' or 'scipy', got {lp_backend!r}"
        )
    if lp_backend == "auto":
        return "session" if prefer_session(instance) else "scipy"
    return lp_backend


@dataclass
class SessionStats:
    """Counters accumulated across the lifetime of one :class:`LPSession`.

    ``iterations`` is the total simplex pivot count — the currency of
    the warm-start benchmark. ``n_warm`` counts solves whose carried
    basis was accepted (phase 1 skipped); ``n_fallback`` counts HiGHS
    rescues after an iteration-limited simplex run.
    """

    n_solves: int = 0
    n_warm: int = 0
    n_cold: int = 0
    n_fallback: int = 0
    iterations: int = 0
    vars_eliminated: int = 0
    rows_dropped: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class Basis:
    """Opaque optimal-basis token, keyed in original-instance coordinates.

    Each key is ``('x', var)`` (structural variable), ``('r', row)``
    (slack of an ``A_ub`` row) or ``('u', var)`` (slack of the implicit
    upper-bound row of ``var``), so the token survives presolve reducing
    the program to different variable/row subsets between solves.
    """

    __slots__ = ("keys",)

    def __init__(self, keys):
        self.keys = tuple(keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Basis({len(self.keys)} basic columns)"


class LPSession:
    """Persistent re-solve layer over one :class:`LPInstance`.

    The session *owns* the instance: ``solve`` mutates its ``lb``,
    ``ub`` and ``b_ub`` arrays in place. Callers that need the original
    bounds afterwards should pass a ``with_bounds`` copy.

    Parameters
    ----------
    instance:
        The program-(7) instance to re-solve.
    warm_start:
        ``False`` turns the session into the cold reference: every call
        solves the full program from scratch (identical arithmetic to
        the warm path's ``cold=True`` calls, enabling bitwise checks).
    max_iter:
        Pivot budget per simplex call; exhausting it triggers one cold
        HiGHS fallback solve instead of failing.
    dense_A:
        Pre-densified ``A_ub`` to share across sessions (read-only).
        When omitted and an :func:`~repro.lp.builder.use_build_cache`
        cache is active — i.e. inside a :class:`repro.api.Solver` — the
        cache's shared dense matrix is used; otherwise the instance is
        densified privately, as before.
    """

    def __init__(
        self,
        instance: LPInstance,
        warm_start: bool = True,
        max_iter: int = 100_000,
        dense_A: "np.ndarray | None" = None,
    ):
        self.instance = instance
        self.warm_start = bool(warm_start)
        self.max_iter = int(max_iter)
        self.stats = SessionStats()
        if dense_A is None:
            from repro.lp.builder import active_build_cache

            cache = active_build_cache()
            if cache is not None:
                dense_A = cache.dense_matrix(instance)
            else:
                dense_A = np.asarray(instance.A_ub.toarray(), dtype=float)
        self._A = dense_A
        self._basis: "Basis | None" = None

    # ------------------------------------------------------------------
    @property
    def last_basis(self) -> "Basis | None":
        """Basis token of the most recent successful solve (or None)."""
        return self._basis

    def fix_variable(self, var: int, value: float) -> None:
        """Pin ``x[var] = value`` for all subsequent solves."""
        inst = self.instance
        inst.lb[var] = inst.ub[var] = float(value)
        inst.invalidate_bounds()

    # ------------------------------------------------------------------
    def solve(
        self,
        lb: "np.ndarray | None" = None,
        ub: "np.ndarray | None" = None,
        b_ub: "np.ndarray | None" = None,
        warm_basis=_AUTO,
        cold: bool = False,
    ) -> LPSolution:
        """Re-solve the owned instance after an in-place data update.

        Parameters
        ----------
        lb, ub, b_ub:
            Optional replacement arrays, copied into the instance in
            place (omitted blocks keep their current values).
        warm_basis:
            Basis token to warm-start from; defaults to the previous
            solve's basis. Pass an explicit token to re-solve from a
            different parent (branch-and-bound), or ``None`` to start
            cold once while keeping the session warm.
        cold:
            Force this call through the full-program cold-reference
            path (used for final solves that must be bitwise-comparable
            against a ``warm_start=False`` session).

        Raises
        ------
        InfeasibleError / UnboundedError
            Mirroring :func:`repro.lp.scipy_backend.solve_lp_scipy`.
        """
        inst = self.instance
        if lb is not None:
            np.copyto(inst.lb, lb)
        if ub is not None:
            np.copyto(inst.ub, ub)
        if lb is not None or ub is not None:
            inst.invalidate_bounds()
        if b_ub is not None:
            np.copyto(inst.b_ub, b_ub)

        self.stats.n_solves += 1
        if cold or not self.warm_start:
            return self._solve_cold_reference()
        basis = self._basis if warm_basis is _AUTO else warm_basis
        return self._solve_reduced(basis)

    # ------------------------------------------------------------------
    def _solve_cold_reference(self) -> LPSolution:
        """Full program, no presolve, no basis: the bitwise reference."""
        inst = self.instance
        self._basis = None
        res = simplex_solve(
            inst.obj,
            self._A,
            inst.b_ub,
            (inst.lb, inst.ub),
            max_iter=self.max_iter,
        )
        self.stats.iterations += res.iterations
        self.stats.n_cold += 1
        if res.status == "infeasible":
            raise InfeasibleError("LP infeasible (cold simplex)")
        if res.status == "unbounded":
            raise UnboundedError("LP unbounded (cold simplex)")
        if res.status != "optimal" or res.x is None:
            return self._fallback_scipy()
        return LPSolution(
            x=np.asarray(res.x, dtype=float),
            value=float(res.value),
            index=inst.index,
        )

    def _fallback_scipy(self) -> LPSolution:
        """Cold HiGHS rescue after a numerically stuck simplex run."""
        self.stats.n_fallback += 1
        self._basis = None
        return solve_lp_scipy(self.instance)

    # ------------------------------------------------------------------
    def _solve_reduced(self, warm_basis: "Basis | None") -> LPSolution:
        inst = self.instance
        lb, ub, b, obj = inst.lb, inst.ub, inst.b_ub, inst.obj
        n = obj.shape[0]

        fixed = lb == ub
        fix = np.nonzero(fixed)[0]
        act = np.nonzero(~fixed)[0]
        A = self._A
        if fix.size:
            b_eff = b - A[:, fix] @ lb[fix]
        else:
            b_eff = b.astype(float, copy=True)

        A_act = A[:, act]
        keep = self._presolve_rows(A_act, b_eff, lb[act], ub[act])
        keep_rows = np.nonzero(keep)[0]
        self.stats.vars_eliminated += int(fix.size)
        self.stats.rows_dropped += int(b.shape[0] - keep_rows.size)

        offset = float(obj[fix] @ lb[fix]) if fix.size else 0.0
        if act.size == 0:
            # Everything pinned: row feasibility was already verified.
            x = lb.astype(float, copy=True)
            self._basis = None
            return LPSolution(x=x, value=float(obj @ x), index=inst.index)

        lb_red = lb[act]
        ub_red = ub[act]
        finite_mask = np.isfinite(ub_red)
        ub_vars = act[finite_mask]  # simplex appends ub rows in this order
        m_struct = int(keep_rows.size)
        n_red = int(act.size)

        init = None
        if warm_basis is not None:
            init = self._map_basis(warm_basis, act, keep_rows, ub_vars)

        res = simplex_solve(
            obj[act],
            A_act[keep_rows],
            b_eff[keep_rows],
            (lb_red, ub_red),
            max_iter=self.max_iter,
            initial_basis=init,
        )
        self.stats.iterations += res.iterations
        if res.warm_started:
            self.stats.n_warm += 1
        else:
            self.stats.n_cold += 1
        if res.status == "infeasible":
            self._basis = None
            raise InfeasibleError("LP infeasible (presolved simplex)")
        if res.status == "unbounded":
            self._basis = None
            raise UnboundedError("LP unbounded (presolved simplex)")
        if res.status != "optimal" or res.x is None:
            return self._fallback_scipy()

        self._basis = self._basis_of(res.basis, act, keep_rows, ub_vars, n_red, m_struct)
        x = np.empty(n, dtype=float)
        x[act] = res.x
        x[fix] = lb[fix]
        return LPSolution(
            x=x, value=float(res.value + offset), index=inst.index
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _presolve_rows(
        A_act: np.ndarray,
        b_eff: np.ndarray,
        lb_act: np.ndarray,
        ub_act: np.ndarray,
    ) -> np.ndarray:
        """Boolean keep-mask over rows; raises on fixed-value violation.

        Drops rows with no remaining variables and rows whose maximum
        activity over the current box (``sum_{a>0} a*ub + sum_{a<0}
        a*lb``) already satisfies the RHS — connection-count rows become
        such trivially-slack rows as LPRR pins their betas.
        """
        nz = A_act != 0.0
        empty = ~nz.any(axis=1)
        if np.any(b_eff[empty] < -_ROW_FEAS_TOL):
            raise InfeasibleError(
                "fixed variables violate an eliminated constraint row"
            )
        pos = np.where(A_act > 0.0, A_act, 0.0)
        neg = np.where(A_act < 0.0, A_act, 0.0)
        finite = np.isfinite(ub_act)
        max_act = pos[:, finite] @ ub_act[finite] + neg @ lb_act
        open_above = (pos[:, ~finite] > 0.0).any(axis=1)
        redundant = ~open_above & (max_act <= b_eff + _REDUNDANT_TOL)
        return ~(redundant | empty)

    @staticmethod
    def _map_basis(
        basis: Basis,
        act: np.ndarray,
        keep_rows: np.ndarray,
        ub_vars: np.ndarray,
    ) -> "np.ndarray | None":
        """Project a carried basis onto the current reduced program.

        Keys whose variable/row vanished (fixed out, row dropped) are
        discarded; the basis is topped back up to full rank with unused
        slack columns. Feasibility of the result is *not* checked here —
        the simplex validates it and falls back to phase 1 if needed.
        """
        n_red = int(act.size)
        m_red = int(keep_rows.size + ub_vars.size)
        col_of_var = {int(v): i for i, v in enumerate(act)}
        slack_of_row = {int(r): n_red + i for i, r in enumerate(keep_rows)}
        slack_of_ub = {
            int(v): n_red + keep_rows.size + i for i, v in enumerate(ub_vars)
        }
        cols: list[int] = []
        used: set[int] = set()
        for kind, ident in basis.keys:
            if kind == "x":
                c = col_of_var.get(ident)
            elif kind == "r":
                c = slack_of_row.get(ident)
            else:  # "u"
                c = slack_of_ub.get(ident)
            if c is not None and c not in used:
                used.add(c)
                cols.append(c)
        for s in range(m_red):
            if len(cols) == m_red:
                break
            c = n_red + s
            if c not in used:
                used.add(c)
                cols.append(c)
        if len(cols) != m_red:
            return None
        return np.asarray(cols, dtype=int)

    @staticmethod
    def _basis_of(
        basis: "np.ndarray | None",
        act: np.ndarray,
        keep_rows: np.ndarray,
        ub_vars: np.ndarray,
        n_red: int,
        m_struct: int,
    ) -> "Basis | None":
        """Translate a reduced-coordinate basis into original keys."""
        if basis is None:
            return None
        keys = []
        for i, col in enumerate(basis):
            col = int(col)
            if col < n_red:
                keys.append(("x", int(act[col])))
            elif col < n_red + m_struct + ub_vars.size:
                s = col - n_red
                if s < m_struct:
                    keys.append(("r", int(keep_rows[s])))
                else:
                    keys.append(("u", int(ub_vars[s - m_struct])))
            else:
                # A degenerate artificial survived phase 1 in row i;
                # carry that row's own slack instead.
                if i < m_struct:
                    keys.append(("r", int(keep_rows[i])))
                else:
                    keys.append(("u", int(ub_vars[i - m_struct])))
        return Basis(keys)
