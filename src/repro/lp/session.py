"""Warm-started LP re-solve sessions for the K^2 heuristic hot path.

The paper's cost/quality spectrum (Figure 7) is dominated by LP-solve
count: LPRR pays ~K(K-1) solves per instance, iterated LPRG one solve
per round, branch-and-bound one per node — and consecutive LPs in all
three differ only in box bounds and right-hand sides. An
:class:`LPSession` owns one :class:`~repro.lp.builder.LPInstance` and
exploits exactly that structure:

* **in-place mutation** — ``solve(lb=..., ub=..., b_ub=...)`` writes the
  new data into the owned instance (no ``with_bounds`` copy, no
  ``build_lp`` re-assembly);
* **warm start** — the optimal basis of the previous solve is carried
  across calls (via original-coordinate keys, so tokens survive
  engine-specific reformulation) and seeds the simplex engine, which
  skips phase 1 whenever the carried basis is still usable.

Two engines share this machinery (``engine=`` knob):

* ``"revised"`` (default) — the bounded-variable revised simplex over
  an LU-factorized basis (:mod:`repro.lp.revised`): upper bounds are
  handled natively (no extra rows), each pivot costs one FTRAN/BTRAN
  pair against the factorization instead of a dense tableau rewrite,
  and a carried basis that bound/RHS edits left dual-feasible but
  primal-infeasible (branch-and-bound children, iterated-LPRG
  tightening) is repaired by *dual* simplex steps — no phase-1
  restart. It always solves the **full** program: fixed variables are
  frozen out of pricing rather than eliminated, so the carried basis
  (and its live LU factorization, kept across solves) maps one-to-one
  every time instead of going singular against a shrinking column
  set. There is no instance-size cliff: the session path stays
  preferable at every K (:func:`prefer_session`).
* ``"tableau"`` — the legacy dense two-phase tableau
  (:mod:`repro.lp.simplex`), kept as an arithmetic reference. Its warm
  path **presolves**: variables fixed by ``lb == ub`` are eliminated
  (their contribution folded into the RHS) and rows that can never
  bind within the remaining box are dropped, because a narrower
  tableau is the only way to keep O(m·n) pivot rewrites competitive.
  The old :data:`AUTO_SIZE_LIMIT` policy applies to it, since past
  ~200 columns+rows the tableau loses to a cold HiGHS call anyway.

``LPSession(instance, warm_start=False)`` is the escape hatch /
reference: every solve then runs the *full* program cold (no presolve,
no basis reuse) through the same engine, so warm-vs-cold output can be
compared bitwise. HiGHS (:func:`repro.lp.scipy_backend.solve_lp_scipy`)
stays the independent cross-check — the test-suite verifies session
objective values against fresh cold HiGHS solves — and serves as the
in-session fallback if the simplex ever hits its iteration limit or
goes numerically bad.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.lp.builder import LPInstance
from repro.lp.revised import revised_solve
from repro.obs.trace import current_tracer
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.simplex import simplex_solve
from repro.lp.solution import LPSolution
from repro.util.errors import InfeasibleError, UnboundedError

#: slack when deciding a fully-eliminated row is violated by fixed values
_ROW_FEAS_TOL = 1e-7
#: slack when a row's maximum activity proves it can never bind
_REDUNDANT_TOL = 1e-9

#: sentinel distinguishing "use the session's carried basis" from an
#: explicit None (= force a cold start for this call)
_AUTO = object()

#: golden-ratio conjugate: ``frac(j * _PHI)`` is an equidistributed,
#: deterministic pseudo-random stream over column indices — generic
#: enough that no two vertices of an optimal face tie on the secondary
#: objective it seeds
_PHI = 0.6180339887498949


def _canon_weights(
    ub: np.ndarray, orig_cols: np.ndarray, all_columns: bool = False
) -> np.ndarray:
    """Secondary-objective weights for the revised engine's vertex
    canonicalization (:func:`repro.lp.revised._canonicalize`).

    Keyed by *original* column index so the full cold program and every
    presolve-reduced program canonicalize their shared optimal face to
    the same point — that is what makes warm and cold session solves
    report identical solutions on degenerate LPs. By default columns
    with infinite upper bound get weight zero (an optimal face can be
    unbounded along them, and the heuristics' rounding decisions only
    consume the finite-bounded betas anyway); ``all_columns`` weights
    every structural column — only sound when the caller knows the
    optimal face is bounded along all of them, as program-(7) faces are
    (the compute rows cap the alphas, the maxmin rows cap ``t``).
    """
    w = 1.0 + (orig_cols * _PHI) % 1.0
    if not all_columns:
        w = np.where(np.isfinite(ub), w, 0.0)
    return w

#: the simplex engines an :class:`LPSession` can run on
LP_ENGINES = ("revised", "tableau")

#: largest ``n_vars + n_rows`` for which the dense-**tableau** session
#: beats a cold HiGHS call per solve (measured on the reference LPRR
#: sweep: ~1.8x faster at K=6, break-even near K=8, slower beyond).
#: Only consulted for ``engine="tableau"`` — the revised engine has no
#: size cliff.
AUTO_SIZE_LIMIT = 200


def _check_engine(engine: str) -> None:
    if engine not in LP_ENGINES:
        raise ValueError(
            f"engine must be one of {LP_ENGINES}, got {engine!r}"
        )


def prefer_session(instance: LPInstance, engine: str = "revised") -> bool:
    """Should the ``lp_backend="auto"`` policy re-solve via a session?

    With the revised engine (the default): always. Warm re-solves cost
    a handful of FTRAN/BTRAN pivots against an LU-factorized basis, so
    the session wins at every instance size — the old dense-tableau
    size cliff is retired. With ``engine="tableau"`` the legacy
    :data:`AUTO_SIZE_LIMIT` policy still applies: past it, O(m*n)
    per-pivot tableau rewrites lose to a cold HiGHS call.
    """
    _check_engine(engine)
    if engine == "tableau":
        return instance.n_vars + instance.n_rows <= AUTO_SIZE_LIMIT
    return True


def resolve_lp_backend(
    instance: LPInstance, lp_backend: str, engine: str = "revised"
) -> str:
    """Validate an ``lp_backend`` knob and resolve ``"auto"`` for ``instance``.

    Returns ``"session"`` or ``"scipy"``; raises ``ValueError`` on
    anything else. Shared by every session-consuming heuristic so the
    auto policy lives in exactly one place; ``engine`` feeds the
    :func:`prefer_session` decision (the tableau engine keeps its size
    cliff, the revised engine does not).
    """
    if lp_backend not in ("auto", "session", "scipy"):
        raise ValueError(
            f"lp_backend must be 'auto', 'session' or 'scipy', got {lp_backend!r}"
        )
    if lp_backend == "auto":
        return "session" if prefer_session(instance, engine) else "scipy"
    _check_engine(engine)
    return lp_backend


@dataclass
class SessionStats:
    """Counters accumulated across the lifetime of one :class:`LPSession`.

    ``iterations`` is the total simplex pivot count — the currency of
    the warm-start benchmark. ``n_warm`` counts solves whose carried
    basis was accepted (phase 1 skipped); ``dual_steps`` the subset of
    pivots taken by the revised engine's dual simplex (carried-basis
    repairs after bound/RHS edits); ``n_fallback`` counts HiGHS rescues
    after an iteration-limited or numerically stuck simplex run.
    ``vars_eliminated``/``rows_dropped`` count the tableau path's
    presolve work (always zero with the revised engine, which freezes
    fixed variables instead of eliminating them).
    """

    n_solves: int = 0
    n_warm: int = 0
    n_cold: int = 0
    n_fallback: int = 0
    iterations: int = 0
    dual_steps: int = 0
    vars_eliminated: int = 0
    rows_dropped: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class Basis:
    """Opaque optimal-basis token, keyed in original-instance coordinates.

    Each key is ``('x', var)`` (structural variable), ``('r', row)``
    (slack of an ``A_ub`` row) or — tableau engine only — ``('u', var)``
    (slack of the explicit upper-bound row of ``var``), so the token
    survives presolve reducing the program to different variable/row
    subsets between solves.

    The revised engine needs one more bit per nonbasic variable: whether
    it rests at its lower or its upper bound. ``at_upper`` carries the
    original indices of the at-upper variables; the tableau engine
    ignores it (its nonbasic columns are always at value zero in shifted
    coordinates), so tokens are forward-compatible across engines.
    """

    __slots__ = ("keys", "at_upper")

    def __init__(self, keys, at_upper=()):
        self.keys = tuple(keys)
        self.at_upper = tuple(at_upper)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Basis({len(self.keys)} basic columns, "
            f"{len(self.at_upper)} at upper)"
        )


class LPSession:
    """Persistent re-solve layer over one :class:`LPInstance`.

    The session *owns* the instance: ``solve`` mutates its ``lb``,
    ``ub`` and ``b_ub`` arrays in place. Callers that need the original
    bounds afterwards should pass a ``with_bounds`` copy.

    Parameters
    ----------
    instance:
        The program-(7) instance to re-solve.
    warm_start:
        ``False`` turns the session into the cold reference: every call
        solves the full program from scratch (identical arithmetic to
        the warm path's ``cold=True`` calls, enabling bitwise checks).
    max_iter:
        Pivot budget per simplex call; exhausting it triggers one cold
        HiGHS fallback solve instead of failing.
    dense_A:
        Pre-densified ``A_ub`` to share across sessions (read-only).
        When omitted and an :func:`~repro.lp.builder.use_build_cache`
        cache is active — i.e. inside a :class:`repro.api.Solver` — the
        cache's shared dense matrix is used; otherwise the instance is
        densified privately, as before.
    engine:
        ``"revised"`` (default) or ``"tableau"`` — see the module
        docstring. One session uses one engine for its whole lifetime.
    share_bases:
        Opt in to the active build cache's cross-session basis store:
        the first solve seeds from the last optimal basis any previous
        sharing session published for the *same template* (same
        platform/objective/payoffs), and each optimal solve publishes
        back. Off by default because a seeded basis makes results
        depend on batch history (degenerate LPs admit multiple optimal
        vertices); a no-op outside an active cache.
    canon:
        Which structural columns the vertex-canonicalization pass
        weights. ``"betas"`` (default) weights only finite-bounded
        columns — always safe. ``"all"`` also weights infinite-ub
        columns (alphas, ``t``) so degenerate faces with free alpha
        directions — e.g. a failed node leaving surplus capacity
        elsewhere — still canonicalize to a unique vertex; only sound
        when every optimal face is bounded along every column, which
        holds for program (7). The online re-scheduler's warm/oracle
        bitwise contract relies on it.
    """

    def __init__(
        self,
        instance: LPInstance,
        warm_start: bool = True,
        max_iter: int = 100_000,
        dense_A: "np.ndarray | None" = None,
        engine: str = "revised",
        share_bases: bool = False,
        canon: str = "betas",
    ):
        _check_engine(engine)
        if canon not in ("betas", "all"):
            raise ValueError(
                f'canon must be "betas" or "all", got {canon!r}'
            )
        self.instance = instance
        self.warm_start = bool(warm_start)
        self.max_iter = int(max_iter)
        self.engine = engine
        self.canon = canon
        self.stats = SessionStats()
        from repro.lp.builder import active_build_cache

        cache = active_build_cache()
        if dense_A is None:
            if cache is not None:
                dense_A = cache.dense_matrix(instance)
            else:
                dense_A = np.asarray(instance.A_ub.toarray(), dtype=float)
        self._A = dense_A
        #: original bounds of currently pinned variables, snapshotted at
        #: *first* fix time so fail -> fail -> recover sequences restore
        #: the true pre-pin box (first-pin-wins)
        self._pinned_bounds: dict[int, tuple[float, float]] = {}
        self._basis: "Basis | None" = None
        #: live LU factorization of the last optimal basis (revised
        #: engine): when the next solve carries the same basis, its
        #: load-time refactorization is skipped entirely
        self._lu = None
        self._basis_store = cache if share_bases else None
        if self._basis_store is not None:
            self._basis = self._basis_store.stored_basis(instance)

    # ------------------------------------------------------------------
    @property
    def last_basis(self) -> "Basis | None":
        """Basis token of the most recent successful solve (or None)."""
        return self._basis

    def fix_variable(self, var: int, value: float) -> None:
        """Pin ``x[var] = value`` for all subsequent solves.

        The variable's current ``(lb, ub)`` box is snapshotted on the
        *first* pin so :meth:`release_variable` can restore it; re-pinning
        an already-pinned variable moves the pin but keeps the original
        snapshot (first-pin-wins).
        """
        var = int(var)
        inst = self.instance
        self._pinned_bounds.setdefault(
            var, (float(inst.lb[var]), float(inst.ub[var]))
        )
        inst.lb[var] = inst.ub[var] = float(value)
        inst.invalidate_bounds()

    def release_variable(self, var: int) -> None:
        """Undo :meth:`fix_variable`: restore the pre-pin ``(lb, ub)`` box.

        Raises ``ValueError`` if ``var`` is not currently pinned by this
        session — releasing twice (or releasing a variable fixed by raw
        array writes) is a bookkeeping bug worth surfacing, not a no-op.
        """
        var = int(var)
        try:
            lo, hi = self._pinned_bounds.pop(var)
        except KeyError:
            raise ValueError(
                f"variable {var} was not pinned via fix_variable; "
                "nothing to release"
            ) from None
        inst = self.instance
        inst.lb[var] = lo
        inst.ub[var] = hi
        inst.invalidate_bounds()

    @property
    def pinned_variables(self) -> tuple:
        """Indices currently pinned via :meth:`fix_variable` (sorted)."""
        return tuple(sorted(self._pinned_bounds))

    # ------------------------------------------------------------------
    def set_rhs(self, rows, values) -> None:
        """Sparse in-place RHS update: ``b_ub[rows] = values``.

        The incremental-mutation primitive for online re-scheduling —
        a drift event touches one or two rows, so rewriting the whole
        ``b_ub`` array (the ``solve(b_ub=...)`` path) both obscures the
        edit and costs O(m) per event. ``values`` broadcasts.
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=int))
        self.instance.b_ub[rows] = values

    def set_bounds(self, cols, lb=None, ub=None) -> None:
        """Sparse in-place bound update on a handful of variables.

        Writes ``lb[cols]``/``ub[cols]`` (either may be omitted) and
        invalidates the instance's cached bounds list. ``lb``/``ub``
        broadcast across ``cols``.
        """
        if lb is None and ub is None:
            return
        cols = np.atleast_1d(np.asarray(cols, dtype=int))
        inst = self.instance
        if lb is not None:
            inst.lb[cols] = lb
        if ub is not None:
            inst.ub[cols] = ub
        inst.invalidate_bounds()

    # ------------------------------------------------------------------
    def solve(
        self,
        lb: "np.ndarray | None" = None,
        ub: "np.ndarray | None" = None,
        b_ub: "np.ndarray | None" = None,
        warm_basis=_AUTO,
        cold: bool = False,
    ) -> LPSolution:
        """Re-solve the owned instance after an in-place data update.

        Parameters
        ----------
        lb, ub, b_ub:
            Optional replacement arrays, copied into the instance in
            place (omitted blocks keep their current values).
        warm_basis:
            Basis token to warm-start from; defaults to the previous
            solve's basis. Pass an explicit token to re-solve from a
            different parent (branch-and-bound), or ``None`` to start
            cold once while keeping the session warm.
        cold:
            Force this call through the full-program cold-reference
            path (used for final solves that must be bitwise-comparable
            against a ``warm_start=False`` session).

        Raises
        ------
        InfeasibleError / UnboundedError
            Mirroring :func:`repro.lp.scipy_backend.solve_lp_scipy`.
        """
        inst = self.instance
        if lb is not None:
            np.copyto(inst.lb, lb)
        if ub is not None:
            np.copyto(inst.ub, ub)
        if lb is not None or ub is not None:
            inst.invalidate_bounds()
        if b_ub is not None:
            np.copyto(inst.b_ub, b_ub)

        self.stats.n_solves += 1
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                "session_resolve", engine=self.engine
            ) as span:
                iterations_before = self.stats.iterations
                if cold or not self.warm_start:
                    span.set(warm=False)
                    solution = self._solve_cold_reference()
                else:
                    basis = self._basis if warm_basis is _AUTO else warm_basis
                    span.set(warm=basis is not None)
                    if self.engine == "revised":
                        solution = self._solve_revised(basis)
                    else:
                        solution = self._solve_reduced(basis)
                span.set(
                    iterations=self.stats.iterations - iterations_before,
                    n_solves=self.stats.n_solves,
                )
            return solution
        if cold or not self.warm_start:
            return self._solve_cold_reference()
        basis = self._basis if warm_basis is _AUTO else warm_basis
        if self.engine == "revised":
            return self._solve_revised(basis)
        return self._solve_reduced(basis)

    # ------------------------------------------------------------------
    def _solve_cold_reference(self) -> LPSolution:
        """Full program, no presolve, no basis: the bitwise reference."""
        inst = self.instance
        self._basis = None
        self._lu = None
        if self.engine == "revised":
            n = inst.obj.shape[0]
            res = revised_solve(
                inst.obj,
                self._A,
                inst.b_ub,
                (inst.lb, inst.ub),
                max_iter=self.max_iter,
                canon_weights=_canon_weights(
                    inst.ub, np.arange(n), self.canon == "all"
                ),
            )
            self.stats.dual_steps += res.dual_steps
        else:
            res = simplex_solve(
                inst.obj,
                self._A,
                inst.b_ub,
                (inst.lb, inst.ub),
                max_iter=self.max_iter,
            )
        self.stats.iterations += res.iterations
        self.stats.n_cold += 1
        if res.status == "infeasible":
            raise InfeasibleError("LP infeasible (cold simplex)")
        if res.status == "unbounded":
            raise UnboundedError("LP unbounded (cold simplex)")
        if res.status != "optimal" or res.x is None:
            return self._fallback_scipy()
        return LPSolution(
            x=np.asarray(res.x, dtype=float),
            value=float(res.value),
            index=inst.index,
        )

    def _fallback_scipy(self) -> LPSolution:
        """Cold HiGHS rescue after a numerically stuck simplex run."""
        self.stats.n_fallback += 1
        self._basis = None
        self._lu = None
        return solve_lp_scipy(self.instance)

    # ------------------------------------------------------------------
    def _solve_revised(self, warm_basis: "Basis | None") -> LPSolution:
        """Warm path of the revised engine: the *full* program, always.

        Unlike the tableau path, no presolve reduction happens here —
        the bounded revised simplex handles fixed variables natively
        (they are frozen out of pricing; a carried basic one is ejected
        by a forced dual pivot), so the program's shape never changes
        between solves. That is what makes the carried basis map
        one-to-one every time (a reduced program's shrinking column set
        regularly turned the carried basis singular) and lets the LU
        factorization itself persist across solves.
        """
        inst = self.instance
        n = inst.obj.shape[0]
        m = inst.b_ub.shape[0]
        init = init_up = None
        if warm_basis is not None:
            init, init_up = self._basis_arrays_revised(warm_basis, n, m)
        res = revised_solve(
            inst.obj,
            self._A,
            inst.b_ub,
            (inst.lb, inst.ub),
            max_iter=self.max_iter,
            initial_basis=init,
            initial_at_upper=init_up,
            initial_lu=self._lu if init is not None else None,
            canon_weights=_canon_weights(
                inst.ub, np.arange(n), self.canon == "all"
            ),
        )
        self.stats.iterations += res.iterations
        self.stats.dual_steps += res.dual_steps
        if res.warm_started:
            self.stats.n_warm += 1
        else:
            self.stats.n_cold += 1
        if res.status == "infeasible":
            self._basis = None
            self._lu = None
            raise InfeasibleError("LP infeasible (revised simplex)")
        if res.status == "unbounded":
            self._basis = None
            self._lu = None
            raise UnboundedError("LP unbounded (revised simplex)")
        if res.status != "optimal" or res.x is None:
            return self._fallback_scipy()
        self._basis = self._basis_of_revised(res, n)
        self._lu = res.lu
        if self._basis_store is not None:
            self._basis_store.store_basis(inst, self._basis)
        return LPSolution(
            x=np.asarray(res.x, dtype=float),
            value=float(res.value),
            index=inst.index,
        )

    # ------------------------------------------------------------------
    def _solve_reduced(self, warm_basis: "Basis | None") -> LPSolution:
        """Warm path of the tableau engine: presolve, then the reduced LP.

        Variables fixed by ``lb == ub`` are eliminated (their
        contribution folded into the RHS), redundant rows dropped, and
        the carried basis projected onto the surviving columns before
        the dense tableau runs.
        """
        inst = self.instance
        lb, ub, b, obj = inst.lb, inst.ub, inst.b_ub, inst.obj
        n = obj.shape[0]

        fixed = lb == ub
        fix = np.nonzero(fixed)[0]
        act = np.nonzero(~fixed)[0]
        A = self._A
        if fix.size:
            b_eff = b - A[:, fix] @ lb[fix]
        else:
            b_eff = b.astype(float, copy=True)

        A_act = A[:, act]
        keep = self._presolve_rows(A_act, b_eff, lb[act], ub[act])
        keep_rows = np.nonzero(keep)[0]
        self.stats.vars_eliminated += int(fix.size)
        self.stats.rows_dropped += int(b.shape[0] - keep_rows.size)

        offset = float(obj[fix] @ lb[fix]) if fix.size else 0.0
        if act.size == 0:
            # Everything pinned: row feasibility was already verified.
            x = lb.astype(float, copy=True)
            self._basis = None
            return LPSolution(x=x, value=float(obj @ x), index=inst.index)

        lb_red = lb[act]
        ub_red = ub[act]
        finite_mask = np.isfinite(ub_red)
        ub_vars = act[finite_mask]  # simplex appends ub rows in this order
        m_struct = int(keep_rows.size)
        n_red = int(act.size)

        init = None
        if warm_basis is not None:
            init = self._map_basis(warm_basis, act, keep_rows, ub_vars)
        res = simplex_solve(
            obj[act],
            A_act[keep_rows],
            b_eff[keep_rows],
            (lb_red, ub_red),
            max_iter=self.max_iter,
            initial_basis=init,
        )
        self.stats.iterations += res.iterations
        if res.warm_started:
            self.stats.n_warm += 1
        else:
            self.stats.n_cold += 1
        if res.status == "infeasible":
            self._basis = None
            raise InfeasibleError("LP infeasible (presolved simplex)")
        if res.status == "unbounded":
            self._basis = None
            raise UnboundedError("LP unbounded (presolved simplex)")
        if res.status != "optimal" or res.x is None:
            return self._fallback_scipy()

        self._basis = self._basis_of(
            res.basis, act, keep_rows, ub_vars, n_red, m_struct
        )
        if self._basis_store is not None and self._basis is not None:
            self._basis_store.store_basis(inst, self._basis)
        x = np.empty(n, dtype=float)
        x[act] = res.x
        x[fix] = lb[fix]
        return LPSolution(
            x=x, value=float(res.value + offset), index=inst.index
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _presolve_rows(
        A_act: np.ndarray,
        b_eff: np.ndarray,
        lb_act: np.ndarray,
        ub_act: np.ndarray,
    ) -> np.ndarray:
        """Boolean keep-mask over rows; raises on fixed-value violation.

        Drops rows with no remaining variables and rows whose maximum
        activity over the current box (``sum_{a>0} a*ub + sum_{a<0}
        a*lb``) already satisfies the RHS — connection-count rows become
        such trivially-slack rows as LPRR pins their betas.
        """
        nz = A_act != 0.0
        empty = ~nz.any(axis=1)
        if np.any(b_eff[empty] < -_ROW_FEAS_TOL):
            raise InfeasibleError(
                "fixed variables violate an eliminated constraint row"
            )
        pos = np.where(A_act > 0.0, A_act, 0.0)
        neg = np.where(A_act < 0.0, A_act, 0.0)
        finite = np.isfinite(ub_act)
        max_act = pos[:, finite] @ ub_act[finite] + neg @ lb_act
        open_above = (pos[:, ~finite] > 0.0).any(axis=1)
        redundant = ~open_above & (max_act <= b_eff + _REDUNDANT_TOL)
        return ~(redundant | empty)

    @staticmethod
    def _map_basis(
        basis: Basis,
        act: np.ndarray,
        keep_rows: np.ndarray,
        ub_vars: np.ndarray,
    ) -> "np.ndarray | None":
        """Project a carried basis onto the current reduced program.

        Keys whose variable/row vanished (fixed out, row dropped) are
        discarded; the basis is topped back up to full rank with unused
        slack columns. Feasibility of the result is *not* checked here —
        the simplex validates it and falls back to phase 1 if needed.
        """
        n_red = int(act.size)
        m_red = int(keep_rows.size + ub_vars.size)
        col_of_var = {int(v): i for i, v in enumerate(act)}
        slack_of_row = {int(r): n_red + i for i, r in enumerate(keep_rows)}
        slack_of_ub = {
            int(v): n_red + keep_rows.size + i for i, v in enumerate(ub_vars)
        }
        cols: list[int] = []
        used: set[int] = set()
        for kind, ident in basis.keys:
            if kind == "x":
                c = col_of_var.get(ident)
            elif kind == "r":
                c = slack_of_row.get(ident)
            else:  # "u"
                c = slack_of_ub.get(ident)
            if c is not None and c not in used:
                used.add(c)
                cols.append(c)
        for s in range(m_red):
            if len(cols) == m_red:
                break
            c = n_red + s
            if c not in used:
                used.add(c)
                cols.append(c)
        if len(cols) != m_red:
            return None
        return np.asarray(cols, dtype=int)

    @staticmethod
    def _basis_arrays_revised(
        basis: Basis, n: int, m: int
    ) -> "tuple[np.ndarray | None, np.ndarray | None]":
        """Decode a basis token for the full-program revised engine.

        The revised path never reduces the program, so the mapping is
        one-to-one: ``('x', var)`` is column ``var``, ``('r', row)`` is
        slack column ``n + row``. A token from the tableau engine (with
        ``('u', ...)`` keys, or a different basis size because of its
        explicit upper-bound rows) decodes to ``(None, None)`` — one
        cold start, after which the session carries revised tokens.
        """
        cols: list[int] = []
        for kind, ident in basis.keys:
            if kind == "x":
                cols.append(int(ident))
            elif kind == "r":
                cols.append(n + int(ident))
            else:  # 'u': tableau-engine ub-row slack, meaningless here
                return None, None
        if len(cols) != m or len(set(cols)) != m:
            return None, None
        basic = set(cols)
        at_upper = np.zeros(n + m, dtype=bool)
        for var in basis.at_upper:
            v = int(var)
            if v not in basic:
                at_upper[v] = True
        return np.asarray(cols, dtype=int), at_upper

    @staticmethod
    def _basis_of_revised(res, n: int) -> Basis:
        """Translate a revised-engine result into an original-key token."""
        keys = [
            ("x", int(col)) if col < n else ("r", int(col - n))
            for col in res.basis
        ]
        up = [int(j) for j in np.nonzero(res.at_upper[:n])[0]]
        return Basis(keys, up)

    @staticmethod
    def _basis_of(
        basis: "np.ndarray | None",
        act: np.ndarray,
        keep_rows: np.ndarray,
        ub_vars: np.ndarray,
        n_red: int,
        m_struct: int,
    ) -> "Basis | None":
        """Translate a reduced-coordinate basis into original keys."""
        if basis is None:
            return None
        keys = []
        for i, col in enumerate(basis):
            col = int(col)
            if col < n_red:
                keys.append(("x", int(act[col])))
            elif col < n_red + m_struct + ub_vars.size:
                s = col - n_red
                if s < m_struct:
                    keys.append(("r", int(keep_rows[s])))
                else:
                    keys.append(("u", int(ub_vars[s - m_struct])))
            else:
                # A degenerate artificial survived phase 1 in row i;
                # carry that row's own slack instead.
                if i < m_struct:
                    keys.append(("r", int(keep_rows[i])))
                else:
                    keys.append(("u", int(ub_vars[i - m_struct])))
        return Basis(keys)
