"""LP-based branch-and-bound for the mixed program (7).

Our own exact solver for the integer ``beta`` block, built on the
rational relaxation: branch on the most fractional beta, tighten its box
bounds (floor on one child, ceil on the other), prune by bound against
the incumbent. It exists for two reasons: (i) it closes the loop on the
paper's NP-hardness discussion with a transparent reference
implementation, and (ii) it cross-checks :mod:`repro.lp.milp_backend`
(HiGHS) in the test-suite. Use HiGHS for anything beyond small ``K``.

With ``warm_start=True`` (the default) every node re-solves through one
:class:`~repro.lp.session.LPSession`: the child LP differs from its
parent only in one beta's box bounds, so each child solve is seeded with
its *parent's* optimal basis (carried per node through the best-first
heap) and usually needs a handful of pivots instead of a full cold
two-phase run. ``warm_start=False`` keeps the original rebuild+HiGHS
path as the reference.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.lp.builder import LPInstance
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.session import LPSession, prefer_session
from repro.lp.solution import LPSolution
from repro.util.errors import InfeasibleError, SolverError

#: betas within this distance of an integer are considered integral
_INT_TOL = 1e-6
#: bound pruning slack (relative)
_PRUNE_TOL = 1e-9


@dataclass
class BranchAndBoundResult:
    """Outcome of :func:`solve_branch_and_bound`.

    Attributes
    ----------
    solution:
        Best integral solution found (None if none exists).
    bound:
        Best remaining upper bound when stopping (equals the incumbent
        value when ``optimal``).
    optimal:
        True when the search space was exhausted within the node budget.
    nodes:
        Number of LP relaxations solved.
    """

    solution: "LPSolution | None"
    bound: float
    optimal: bool
    nodes: int


def _fractional_betas(instance: LPInstance, x: np.ndarray) -> "list[tuple[int, float]]":
    """(flat index, fractional part distance) of non-integral betas."""
    idx = instance.index
    out = []
    for i in range(idx.n_alpha, idx.n_alpha + idx.n_beta):
        frac = abs(x[i] - round(x[i]))
        if frac > _INT_TOL:
            out.append((i, frac))
    return out


def solve_branch_and_bound(
    instance: LPInstance,
    max_nodes: int = 10_000,
    warm_start: bool = True,
    engine: str = "revised",
) -> BranchAndBoundResult:
    """Best-first branch-and-bound over the integer betas.

    Parameters
    ----------
    instance:
        The LP instance from :func:`repro.lp.builder.build_lp`.
    max_nodes:
        Node budget; on exhaustion the incumbent is returned with
        ``optimal=False`` and the tightest remaining bound.
    warm_start:
        Solve child nodes through a warm-started
        :class:`~repro.lp.session.LPSession`, seeding each from its
        parent's optimal basis — a child differs from its parent in one
        beta's box bounds, so the revised engine's dual simplex usually
        repairs the carried basis in a handful of pivots.
        ``False`` uses cold HiGHS per node.
    engine:
        Simplex engine for the session (``"revised"`` or
        ``"tableau"``). With ``"tableau"``, warm starting applies only
        while the instance is small enough for the dense tableau to win
        (:func:`~repro.lp.session.prefer_session`).
    """
    counter = itertools.count()  # tie-breaker: heapq needs total order
    incumbent: "LPSolution | None" = None
    incumbent_value = -math.inf
    nodes = 0

    if warm_start and prefer_session(instance, engine):
        # The session owns (and mutates) a private bounds copy.
        session = LPSession(
            instance.with_bounds(instance.lb.copy(), instance.ub.copy()),
            engine=engine,
        )

        def node_solve(lb, ub, parent_basis):
            sol = session.solve(lb=lb, ub=ub, warm_basis=parent_basis)
            return sol, session.last_basis

    else:
        session = None

        def node_solve(lb, ub, parent_basis):
            return solve_lp_scipy(instance.with_bounds(lb, ub)), None

    try:
        root, root_basis = node_solve(instance.lb, instance.ub, None)
    except InfeasibleError:
        return BranchAndBoundResult(None, -math.inf, True, 1)
    nodes += 1

    # Max-heap on the relaxation bound (negate for heapq). Each entry
    # carries the node's own optimal basis to seed its children.
    heap: list = [
        (-root.value, next(counter), instance.lb, instance.ub, root, root_basis)
    ]

    while heap and nodes < max_nodes:
        neg_bound, _, lb, ub, relax, basis = heapq.heappop(heap)
        bound = -neg_bound
        if bound <= incumbent_value * (1 + _PRUNE_TOL) + _PRUNE_TOL:
            continue  # cannot improve on the incumbent

        fractional = _fractional_betas(instance, relax.x)
        if not fractional:
            # Integral leaf: snap betas and adopt if better.
            if relax.value > incumbent_value:
                x = relax.x.copy()
                n_a, n_b = instance.index.n_alpha, instance.index.n_beta
                x[n_a : n_a + n_b] = np.round(x[n_a : n_a + n_b])
                incumbent = LPSolution(x=x, value=relax.value, index=instance.index)
                incumbent_value = relax.value
            continue

        # Branch on the most fractional beta.
        var, _ = max(fractional, key=lambda item: item[1])
        value = relax.x[var]
        floor_v, ceil_v = math.floor(value), math.ceil(value)

        for lo_v, hi_v in (((lb[var]), float(floor_v)), (float(ceil_v), ub[var])):
            if lo_v > hi_v + _INT_TOL:
                continue
            child_lb, child_ub = lb.copy(), ub.copy()
            child_lb[var] = max(lb[var], lo_v)
            child_ub[var] = min(ub[var], hi_v)
            try:
                sol, sol_basis = node_solve(child_lb, child_ub, basis)
            except InfeasibleError:
                nodes += 1
                continue
            except SolverError:
                nodes += 1
                continue
            nodes += 1
            if sol.value > incumbent_value + _PRUNE_TOL:
                heapq.heappush(
                    heap,
                    (-sol.value, next(counter), child_lb, child_ub, sol, sol_basis),
                )

    remaining_bound = max((-h[0] for h in heap), default=incumbent_value)
    optimal = not heap and nodes < max_nodes
    return BranchAndBoundResult(
        solution=incumbent,
        bound=float(max(remaining_bound, incumbent_value)),
        optimal=optimal or (remaining_bound <= incumbent_value + 1e-7),
        nodes=nodes,
    )
