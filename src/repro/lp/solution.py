"""LP solution container and extraction back into allocation space."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.lp.indexing import VariableIndex

#: how far a float beta may sit from an integer and still count as integral
INTEGRALITY_TOL = 1e-6


@dataclass
class LPSolution:
    """Solution of one (relaxed or mixed) instance of program (7).

    Attributes
    ----------
    x:
        Flat variable vector.
    value:
        Objective value in *maximisation* sense.
    index:
        The variable layout used to interpret ``x``.
    is_integral:
        True when every beta entry is integral (within tolerance), i.e.
        the solution is directly usable as a valid allocation.
    """

    x: np.ndarray
    value: float
    index: VariableIndex

    @property
    def alpha(self) -> np.ndarray:
        """Dense (K, K) alpha matrix (floats, clipped at 0)."""
        return np.clip(self.index.alpha_matrix(self.x), 0.0, None)

    @property
    def beta(self) -> np.ndarray:
        """Dense (K, K) beta matrix — possibly fractional (rational LP)."""
        return np.clip(self.index.beta_matrix(self.x), 0.0, None)

    @property
    def is_integral(self) -> bool:
        beta = self.beta
        return bool(np.all(np.abs(beta - np.round(beta)) <= INTEGRALITY_TOL))

    def to_allocation(self) -> Allocation:
        """Convert to an :class:`Allocation` (requires integral betas).

        Raises
        ------
        ValueError
            If any beta is fractional; use the rounding heuristics of
            :mod:`repro.heuristics` instead.
        """
        beta = self.beta
        if not self.is_integral:
            worst = np.max(np.abs(beta - np.round(beta)))
            raise ValueError(
                f"LP solution has fractional betas (max deviation {worst:.3g}); "
                "round it with a heuristic first"
            )
        return Allocation(self.alpha, np.round(beta).astype(np.int64))

    def throughputs(self) -> np.ndarray:
        """Per-application throughputs ``alpha_k`` implied by ``x``."""
        return self.alpha.sum(axis=1)

    def __repr__(self) -> str:
        kind = "integral" if self.is_integral else "fractional"
        return f"LPSolution(value={self.value:.6g}, {kind})"
