"""A from-scratch dense two-phase primal simplex solver.

The paper solved its linear programs with the ``lp_solve`` package
(reference [9]); this module is the in-repo stand-in so the whole
pipeline can run without any external LP library. It is a classical
tableau implementation with Bland's anti-cycling rule:

* problem form: ``maximize c @ x  s.t.  A @ x <= b,  lb <= x <= ub``
  (finite lower bounds are shifted out; finite upper bounds become
  explicit rows);
* phase 1 introduces artificial variables only for rows whose shifted
  right-hand side is negative, then minimises their sum;
* phase 2 optimises the real objective with artificial columns barred
  from re-entering the basis.

It is deliberately simple and dense — O(m·n) per pivot — which is fine
for the moderate instances used in tests and the ablation benchmark.
The HiGHS backend remains the production path; the test-suite
cross-checks the two on random LPs and on real program-(7) instances.

Warm starts (:class:`repro.lp.session.LPSession`): ``simplex_solve``
accepts an ``initial_basis`` — the ``basis`` array of a previous
:class:`SimplexResult` on a nearby LP. When the carried basis is still
nonsingular and primal-feasible for the new data, phase 1 is skipped
entirely and phase 2 starts from it; otherwise the solver silently
falls back to the cold two-phase start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.errors import SolverError

#: numerical tolerance for reduced costs / pivot eligibility
_EPS = 1e-9


@dataclass
class SimplexResult:
    """Outcome of :func:`simplex_solve`.

    ``status`` is one of ``"optimal"``, ``"infeasible"``, ``"unbounded"``
    or ``"iteration_limit"``; ``x`` and ``value`` are meaningful only
    when optimal.

    ``basis`` holds the final basic column per tableau row (rows are the
    input inequality rows followed by one row per finite upper bound, in
    increasing variable order; columns ``[0, n)`` are structural,
    ``[n, n + m)`` the per-row slacks). Feed it back as
    ``initial_basis`` to warm-start a re-solve of a nearby LP.
    ``warm_started`` records whether the carried basis was actually
    usable (nonsingular and primal-feasible) for this solve.
    """

    status: str
    x: "np.ndarray | None" = None
    value: float = float("nan")
    iterations: int = 0
    basis: "np.ndarray | None" = None
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


def _pivot(T: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the tableau on (row, col)."""
    T[row] /= T[row, col]
    pivot_col = T[:, col].copy()
    pivot_col[row] = 0.0
    T -= np.outer(pivot_col, T[row])
    basis[row] = col


def _run_phase(
    T: np.ndarray,
    basis: np.ndarray,
    allowed: np.ndarray,
    max_iter: int,
) -> tuple[str, int]:
    """Drive the tableau to optimality with Bland's rule.

    ``T`` has the objective (reduced-cost) row last; ``allowed`` masks
    columns permitted to enter the basis. Returns (status, iterations).
    """
    m = T.shape[0] - 1
    for it in range(max_iter):
        rc = T[-1, :-1]
        candidates = np.nonzero((rc > _EPS) & allowed)[0]
        if candidates.size == 0:
            return "optimal", it
        col = int(candidates[0])  # Bland: smallest eligible index
        column = T[:m, col]
        rhs = T[:m, -1]
        eligible = column > _EPS
        if not np.any(eligible):
            return "unbounded", it
        ratios = np.full(m, np.inf)
        ratios[eligible] = rhs[eligible] / column[eligible]
        best = np.min(ratios)
        # Bland tie-break: among minimal ratios pick smallest basis index.
        # The tie set must be collected with a *relative* tolerance — an
        # absolute one (the old ``atol=1e-12``) misses ties between
        # large-magnitude ratios, silently dropping rows from the tie
        # set and with them Bland's anti-cycling guarantee.
        tie_tol = _EPS * max(1.0, abs(best))
        tied = np.nonzero(ratios <= best + tie_tol)[0]
        row = int(tied[np.argmin(basis[tied])])
        _pivot(T, basis, row, col)
    return "iteration_limit", max_iter


def _warm_tableau(
    A: np.ndarray, b: np.ndarray, initial_basis: np.ndarray
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Build a phase-2-ready tableau from a carried basis, or ``None``.

    The basis is rejected (cold fallback) when it has the wrong shape,
    references unknown columns, is singular/ill-conditioned, or is not
    primal-feasible for the new ``(A, b)``. Columns follow the +slack
    convention: ``A_ext = [A | I]``.
    """
    m, n = A.shape
    basis = np.asarray(initial_basis, dtype=int).ravel()
    if basis.shape != (m,) or np.unique(basis).size != m:
        return None
    if m and (basis.min() < 0 or basis.max() >= n + m):
        return None
    A_ext = np.hstack([A, np.eye(m)])
    B = A_ext[:, basis]
    try:
        sol = np.linalg.solve(B, np.column_stack([A_ext, b]))
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(sol)):
        return None
    rhs = sol[:, -1]
    # Any negative basic value means the carried basis is not (exactly)
    # primal-feasible here. Reject it and let the caller start cold:
    # the old behaviour — clamping slightly-negative values to zero
    # when they cleared a tolerance band — silently perturbed the
    # starting point, so the "warm" solve ran on a tableau that did not
    # satisfy B @ x_B = b.
    if np.any(rhs < 0.0):
        return None
    # Ill-conditioned factorisations can "solve" with a huge residual;
    # only a basis that actually reproduces b is trusted.
    if m and not np.allclose(B @ rhs, b, rtol=1e-7, atol=1e-7):
        return None
    T = np.zeros((m + 1, n + m + 1))
    T[:m, :-1] = sol[:, :-1]
    T[:m, -1] = rhs
    return T, basis.copy()


def simplex_solve(
    c: Sequence[float],
    A_ub: "np.ndarray | Sequence[Sequence[float]]",
    b_ub: Sequence[float],
    bounds: "Sequence[tuple[float, float]] | tuple[np.ndarray, np.ndarray] | None" = None,
    max_iter: int = 100_000,
    initial_basis: "np.ndarray | None" = None,
) -> SimplexResult:
    """Maximise ``c @ x`` subject to ``A_ub @ x <= b_ub`` and box bounds.

    Parameters
    ----------
    bounds:
        Per-variable ``(lb, ub)``; ``None`` means ``(0, inf)`` for all.
        A pair of ndarrays ``(lb, ub)`` is accepted directly (the hot
        re-solve path avoids building a Python list of tuples). Lower
        bounds must be finite (they are shifted to zero); infinite upper
        bounds are free of charge, finite ones add a row each.
    initial_basis:
        ``basis`` array of a previous :class:`SimplexResult` on a nearby
        LP. If still primal-feasible it seeds phase 2 directly (phase 1
        is skipped); otherwise the cold two-phase path runs as usual.
    """
    c = np.asarray(c, dtype=float)
    A = np.asarray(A_ub, dtype=float)
    if A.ndim != 2:
        raise SolverError(f"A_ub must be 2-D, got shape {A.shape}")
    b = np.asarray(b_ub, dtype=float)
    n = c.shape[0]
    if A.shape[1] != n or A.shape[0] != b.shape[0]:
        raise SolverError(
            f"inconsistent shapes: c{c.shape}, A{A.shape}, b{b.shape}"
        )

    if bounds is None:
        lb = np.zeros(n)
        ub = np.full(n, np.inf)
    elif (
        isinstance(bounds, tuple)
        and len(bounds) == 2
        and isinstance(bounds[0], np.ndarray)
    ):
        lb = np.asarray(bounds[0], dtype=float)
        ub = np.asarray(bounds[1], dtype=float)
    else:
        lb = np.array([bo[0] for bo in bounds], dtype=float)
        ub = np.array(
            [np.inf if bo[1] is None else bo[1] for bo in bounds], dtype=float
        )
    if np.any(~np.isfinite(lb)):
        raise SolverError("simplex_solve requires finite lower bounds")
    if np.any(ub < lb - _EPS):
        return SimplexResult(status="infeasible")

    # Shift x = lb + y with y >= 0; append rows y_i <= ub_i - lb_i
    # (one fancy-indexed block, not a per-variable Python loop).
    shift = lb
    b_shifted = b - A @ shift
    finite_ub = np.nonzero(np.isfinite(ub))[0]
    if finite_ub.size:
        extra = np.zeros((finite_ub.size, n))
        extra[np.arange(finite_ub.size), finite_ub] = 1.0
        A = np.vstack([A, extra])
        b_shifted = np.concatenate([b_shifted, ub[finite_ub] - lb[finite_ub]])

    m = A.shape[0]
    iterations = 0
    warm = False
    T: "np.ndarray | None" = None
    basis: "np.ndarray | None" = None
    art_cols: list[int] = []

    if initial_basis is not None and m > 0:
        built = _warm_tableau(A, b_shifted, initial_basis)
        if built is not None:
            T, basis = built
            warm = True

    if T is None:
        # Cold start: normalise rows so every RHS is >= 0; negative rows
        # get artificials and phase 1 drives them out.
        signs = np.where(b_shifted < 0, -1.0, 1.0)
        A_norm = A * signs[:, None]
        b_norm = b_shifted * signs
        needs_artificial = signs < 0

        n_art = int(np.count_nonzero(needs_artificial))
        n_cols = n + m + n_art  # structural + slack/surplus + artificial
        T = np.zeros((m + 1, n_cols + 1))
        T[:m, :n] = A_norm
        T[:m, -1] = b_norm
        basis = np.empty(m, dtype=int)
        next_art = n + m
        for i in range(m):
            T[i, n + i] = signs[i]  # slack (+1) or surplus (-1)
            if needs_artificial[i]:
                T[i, next_art] = 1.0
                basis[i] = next_art
                art_cols.append(next_art)
                next_art += 1
            else:
                basis[i] = n + i

        if art_cols:
            # Phase 1: maximise -(sum of artificials); start from the basic
            # representation (objective row = sum of artificial rows).
            T[-1, :] = 0.0
            for col in art_cols:
                T[-1, col] = -1.0
            for i in range(m):
                if basis[i] in art_cols:
                    T[-1, :] += T[i, :]
            allowed = np.ones(n_cols, dtype=bool)
            status, its = _run_phase(T, basis, allowed, max_iter)
            iterations += its
            if status != "optimal":
                return SimplexResult(status=status, iterations=iterations)
            # Residual artificial mass scales with the data: judge it
            # relative to the RHS magnitude, or a well-scaled-but-large
            # program (b in the 1e6 range, say) gets misclassified as
            # infeasible by an absolute 1e-7 threshold — and a feasible
            # tiny-scale one sneaks past it.
            rhs_scale = max(1.0, float(np.max(np.abs(b_norm))))
            if T[-1, -1] > 1e-7 * rhs_scale:
                return SimplexResult(status="infeasible", iterations=iterations)
            # Drive any degenerate artificial out of the basis.
            art_set = set(art_cols)
            for i in range(m):
                if basis[i] in art_set:
                    pivot_candidates = np.nonzero(
                        np.abs(T[i, : n + m]) > _EPS
                    )[0]
                    if pivot_candidates.size:
                        _pivot(T, basis, i, int(pivot_candidates[0]))
                    # else: redundant row, artificial stays basic at value 0.

    # Phase 2: real objective. Rebuild the reduced-cost row for the
    # current basis: rc = c_ext - c_B @ B^{-1} A (tableau already holds
    # B^{-1}A, so price out basic columns).
    n_cols = T.shape[1] - 1
    c_ext = np.zeros(n_cols)
    c_ext[:n] = c
    T[-1, :-1] = c_ext
    T[-1, -1] = float(c @ shift)  # objective offset from the bound shift
    for i in range(m):
        coeff = T[-1, basis[i]]
        if coeff != 0.0:
            T[-1, :] -= coeff * T[i, :]

    allowed = np.ones(n_cols, dtype=bool)
    for col in art_cols:
        allowed[col] = False
    status, its = _run_phase(T, basis, allowed, max_iter)
    iterations += its
    if status != "optimal":
        return SimplexResult(status=status, iterations=iterations)

    y = np.zeros(n_cols)
    y[basis] = T[:m, -1]
    x = y[:n] + shift
    # The tableau's objective cell tracks -(objective) relative to the
    # running eliminations; recompute the true value from x for clarity.
    return SimplexResult(
        status="optimal",
        x=x,
        value=float(c @ x),
        iterations=iterations,
        basis=basis.copy(),
        warm_started=warm,
    )
