"""LU-factorized simplex basis with product-form eta updates.

The revised simplex (:mod:`repro.lp.revised`) never forms ``B^{-1}``:
every iteration needs one FTRAN (solve ``B x = v``) and one BTRAN
(solve ``B^T y = v``), and every pivot replaces exactly one basis
column. :class:`LUBasis` supports exactly that access pattern:

* a **base factorization** ``B_0 = P L U`` (``scipy.linalg.lu_factor``)
  taken when the basis is loaded and periodically thereafter;
* **product-form eta updates** for pivots: after column ``a_q`` replaces
  basic position ``r``, with ``w = B_k^{-1} a_q`` (the FTRAN of the
  entering column, which the simplex computes anyway for its ratio
  test), ``B_{k+1}^{-1} = E_k B_k^{-1}`` where the elementary matrix
  ``E_k`` is the identity except for column ``r`` — so an update is
  O(m) storage and each later solve applies the eta in O(m);
* **periodic refactorization**: the eta file is discarded and ``B`` is
  refactorized from scratch every :attr:`refactor_every` updates (the
  classical Bartels–Golub/Forrest–Tomlin compromise: eta files grow
  and accumulate roundoff, so bounded-length files keep both the work
  per solve and the error bounded), or eagerly whenever a pivot
  element is too small for a stable eta.

The column convention matches the bounded revised simplex: columns
``[0, n)`` are the structural columns of a dense ``A``; columns
``[n, n + m)`` are slack identity columns (coefficient ``+1`` in their
row), so ``B`` is assembled without materialising ``[A | I]``.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg

#: an eta pivot element smaller than this (relative to the eta column's
#: magnitude) triggers an eager refactorization instead of an update
_ETA_PIVOT_TOL = 1e-8

#: absolute floor under which a pivot is unusable even right after a
#: fresh factorization
_SINGULAR_TOL = 1e-11


class SingularBasisError(Exception):
    """The requested basis is singular (or numerically so)."""


class LUBasis:
    """One simplex basis: LU base factorization + eta update file.

    Parameters
    ----------
    A:
        Dense structural columns (``m`` rows, ``n`` columns). Only read.
    basis:
        The ``m`` basic column indices (``< n`` structural, ``>= n``
        slack). Copied; :meth:`replace_column` keeps it current.
    refactor_every:
        Maximum eta-file length before the next :meth:`replace_column`
        triggers a refactorization.

    Raises
    ------
    SingularBasisError
        If the initial basis matrix does not factorize.
    """

    def __init__(self, A: np.ndarray, basis: np.ndarray, refactor_every: int = 64):
        self._A = A
        self._m = A.shape[0]
        self._n = A.shape[1]
        self.basis = np.asarray(basis, dtype=int).copy()
        if self.basis.shape != (self._m,):
            raise SingularBasisError(
                f"basis must have {self._m} columns, got {self.basis.shape}"
            )
        self.refactor_every = int(refactor_every)
        #: eta file: (pivot row r, eta column w = B^{-1} a_entering)
        self._etas: "list[tuple[int, np.ndarray]]" = []
        #: lifetime counters (surfaced in session stats / benchmarks)
        self.n_refactor = 0
        self.n_updates = 0
        self._factorize()

    # ------------------------------------------------------------------
    def _basis_matrix(self) -> np.ndarray:
        """Assemble the dense ``m x m`` basis matrix."""
        B = np.empty((self._m, self._m))
        struct = self.basis < self._n
        if np.any(struct):
            B[:, struct] = self._A[:, self.basis[struct]]
        slack = np.nonzero(~struct)[0]
        if slack.size:
            B[:, slack] = 0.0
            B[self.basis[slack] - self._n, slack] = 1.0
        return B

    def _factorize(self) -> None:
        """(Re)factorize the current basis; drops the eta file."""
        B = self._basis_matrix()
        try:
            with warnings.catch_warnings():
                # lu_factor warns on exact singularity; the diagonal
                # check below turns that into SingularBasisError anyway
                warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
                lu, piv = scipy.linalg.lu_factor(B, check_finite=False)
        except (scipy.linalg.LinAlgError, ValueError) as exc:
            raise SingularBasisError(str(exc)) from exc
        diag = np.abs(np.diag(lu))
        if self._m and (not np.all(np.isfinite(lu)) or diag.min() <= _SINGULAR_TOL * max(1.0, diag.max())):
            raise SingularBasisError("basis matrix is numerically singular")
        self._lu = (lu, piv)
        self._etas = []
        self.n_refactor += 1

    def refactorize(self) -> None:
        """Public eager refactorization (drops the eta file)."""
        self._factorize()

    def matches(self, A: np.ndarray, basis: np.ndarray) -> bool:
        """Is this the factorization of ``basis`` over the *same* ``A``?

        Used by warm re-solves to skip the load-time factorization: a
        session hands back the LUBasis of its previous solve, and when
        the requested basis is unchanged (identical ``A`` object, equal
        basic column set) the factorization is still valid as-is.
        """
        return (
            self._A is A
            and self.basis.shape == np.shape(basis)
            and bool(np.array_equal(self.basis, basis))
        )

    @property
    def updates_since_refactor(self) -> int:
        return len(self._etas)

    # ------------------------------------------------------------------
    def column(self, j: int) -> np.ndarray:
        """Column ``j`` of ``[A | I]`` (fresh array for slack columns)."""
        if j < self._n:
            return self._A[:, j]
        col = np.zeros(self._m)
        col[j - self._n] = 1.0
        return col

    def ftran(self, v: np.ndarray) -> np.ndarray:
        """Solve ``B x = v`` (``v`` is not modified)."""
        x = scipy.linalg.lu_solve(self._lu, v, check_finite=False)
        for r, w in self._etas:
            t = x[r] / w[r]
            if t != 0.0:
                x -= w * t
            x[r] = t
        return x

    def btran(self, v: np.ndarray) -> np.ndarray:
        """Solve ``B^T y = v`` (``v`` is not modified)."""
        y = np.array(v, dtype=float, copy=True)
        for r, w in reversed(self._etas):
            yr = y[r]
            y[r] = (yr - (w @ y - w[r] * yr)) / w[r]
        return scipy.linalg.lu_solve(self._lu, y, trans=1, check_finite=False)

    # ------------------------------------------------------------------
    def replace_column(self, r: int, j: int, w: "np.ndarray | None" = None) -> None:
        """Basis change: column ``j`` becomes basic in position ``r``.

        ``w`` is the FTRAN of the entering column (``B^{-1} a_j``) under
        the *current* factorization; when omitted it is recomputed. If
        the eta pivot ``w[r]`` is too small for a stable product-form
        update, or the eta file is full, the basis is refactorized from
        scratch instead of updated.

        Raises
        ------
        SingularBasisError
            If the post-pivot basis does not factorize (the caller
            chose a pivot that makes ``B`` singular).
        """
        if w is None:
            w = self.ftran(self.column(j))
        self.basis[r] = j
        self.n_updates += 1
        scale = float(np.max(np.abs(w))) if w.size else 0.0
        if (
            len(self._etas) >= self.refactor_every
            or abs(w[r]) <= _ETA_PIVOT_TOL * max(1.0, scale)
        ):
            self._factorize()
            return
        self._etas.append((int(r), np.array(w, dtype=float, copy=True)))
