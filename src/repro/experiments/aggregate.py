"""Aggregations over experiment rows: the numbers the paper reports.

* :func:`mean_ratio_by_k` — the y-values of Figures 5/6 (objective value
  relative to the LP bound, averaged per K);
* :func:`headline_ratios` — Section 6.1's "the ratio of the objective
  values achieved by LPRG to that by G is 1.98 for MAXMIN and 1.02 for
  SUM";
* :func:`lpr_failure_stats` — Section 6.1's observation that LPR wastes
  network capacity and sometimes rounds every beta to zero;
* :func:`runtime_by_k` — the series of Figure 7.

Two aggregation paths coexist. The classic functions below reduce a
materialised row list with ``np.mean`` — the historical reference, kept
bitwise-stable. :func:`aggregate_rows` is the *streaming* reference: it
folds the same rows through the constant-size accumulator algebra of
:mod:`repro.parallel.stream` in task order, producing exactly (bitwise)
what a ``stream=True`` sweep computes incrementally — use it to check a
streamed aggregate against an in-memory row list. The two references
agree to float-rounding (``np.mean``'s pairwise summation vs the
accumulators' correctly-rounded exact sums), pinned by
``tests/test_stream_accumulators.py``; counts, extrema and quantiles
are integer-exact and agree bitwise.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.experiments.runner import ExperimentRow


def _group(rows: Sequence[ExperimentRow], method: str, objective: str):
    return [r for r in rows if r.method == method and r.objective == objective]


def mean_ratio_by_k(
    rows: Sequence[ExperimentRow], method: str, objective: str
) -> list[tuple[int, float]]:
    """Average value/LP ratio per K for one method+objective (Fig 5/6)."""
    buckets: dict[int, list[float]] = defaultdict(list)
    for r in _group(rows, method, objective):
        buckets[r.setting.k].append(r.ratio)
    return [(k, float(np.mean(v))) for k, v in sorted(buckets.items())]


def pairwise_value_ratio(
    rows: Sequence[ExperimentRow],
    numerator: str,
    denominator: str,
    objective: str,
) -> float:
    """Mean per-platform ratio ``value(numerator) / value(denominator)``.

    Platforms where the denominator achieved 0 are skipped when the
    numerator is also 0 (0/0 -> uninformative) and counted as ratio of
    +inf capped to the numerator's ratio-to-LP otherwise; in practice
    the greedy never scores 0 when any work is feasible.
    """
    num_rows = _group(rows, numerator, objective)
    den_rows = _group(rows, denominator, objective)
    if len(num_rows) != len(den_rows):
        raise ValueError(
            f"cannot pair {numerator} ({len(num_rows)} rows) with "
            f"{denominator} ({len(den_rows)} rows); run both in one sweep"
        )
    ratios = []
    for nr, dr in zip(num_rows, den_rows):
        if nr.setting != dr.setting or nr.replicate != dr.replicate:
            raise ValueError("row streams out of sync; run both methods in one sweep")
        if dr.value <= 0:
            if nr.value > 0:
                ratios.append(np.inf)
            continue
        ratios.append(nr.value / dr.value)
    finite = [r for r in ratios if np.isfinite(r)]
    return float(np.mean(finite)) if finite else float("nan")


def headline_ratios(rows: Sequence[ExperimentRow]) -> dict[str, float]:
    """LPRG/G mean value ratios per objective (paper: 1.98 / 1.02)."""
    return {
        objective: pairwise_value_ratio(rows, "lprg", "greedy", objective)
        for objective in ("maxmin", "sum")
    }


def lpr_failure_stats(
    rows: Sequence[ExperimentRow], zero_tol: float = 1e-9
) -> dict[str, float]:
    """How badly LPR underperforms: mean/median/p95 ratio-to-LP and the
    zero-value rate. Quantiles and the zero fraction come from exact
    integer counts (the same fixed-bin sketch the streaming path uses,
    :class:`repro.parallel.stream.QuantileAccumulator`), so those match
    the streamed values bit for bit; ``mean_ratio`` keeps this module's
    historical ``np.mean`` (pairwise summation), which can differ from
    the streamed correctly-rounded exact-sum mean in the last ulp."""
    from repro.parallel.stream import QuantileAccumulator

    lpr_rows = [r for r in rows if r.method == "lpr"]
    if not lpr_rows:
        nan = float("nan")
        return {
            "mean_ratio": nan,
            "zero_fraction": nan,
            "median_ratio": nan,
            "p95_ratio": nan,
        }
    ratios = [r.ratio for r in lpr_rows]
    zeros = [r.value <= zero_tol for r in lpr_rows]
    sketch = QuantileAccumulator()
    for ratio in ratios:
        sketch.update(ratio)
    return {
        "mean_ratio": float(np.mean(ratios)),
        "zero_fraction": float(np.mean(zeros)),
        "median_ratio": sketch.median(),
        "p95_ratio": sketch.quantile(0.95),
    }


def runtime_by_k(
    rows: Sequence[ExperimentRow], method: str, objective: str = "maxmin"
) -> list[tuple[int, float]]:
    """Mean wall-clock runtime per K (the series of Figure 7)."""
    buckets: dict[int, list[float]] = defaultdict(list)
    for r in _group(rows, method, objective):
        buckets[r.setting.k].append(r.runtime)
    return [(k, float(np.mean(v))) for k, v in sorted(buckets.items())]


def aggregate_rows(
    rows: Sequence[ExperimentRow],
    methods: "Sequence[str] | None" = None,
    objectives: "Sequence[str] | None" = None,
):
    """Fold a materialised row list through the streaming accumulators.

    Returns the :class:`~repro.parallel.stream.SweepAccumulator` a
    ``stream=True`` sweep of the same definition produces — bitwise,
    because both fold the same rows in the same (task-index) order.
    Passing the sweep's ``methods``/``objectives`` makes the per-task
    re-chunking exact arithmetic; omitting them falls back to boundary
    detection (see :func:`repro.parallel.stream.iter_task_groups`).
    """
    from repro.parallel.stream import SweepAccumulator

    return SweepAccumulator.from_rows(
        rows, methods=methods, objectives=objectives
    )
