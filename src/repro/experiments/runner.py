"""Sweep runner: heuristics x objectives over generated platforms.

Produces flat :class:`ExperimentRow` records, one per (platform,
objective, method), each carrying the LP upper bound of its platform so
that every aggregate in :mod:`repro.experiments.aggregate` is a simple
group-by.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments.config import (
    DEFAULT_SCENARIO,
    Scenario,
    Setting,
    payoffs_for,
    spec_for,
)
from repro.heuristics.base import get_heuristic
from repro.platform.generator import generate_platform
from repro.util.rng import ensure_rng, spawn_rngs

#: methods swept by default (LPRR excluded: the paper, too, ran it on a
#: small subset only because of its K^2 LP-solve cost)
DEFAULT_METHODS = ("greedy", "lpr", "lprg")
DEFAULT_OBJECTIVES = ("maxmin", "sum")


@dataclass(frozen=True, slots=True)
class ExperimentRow:
    """One measurement: one method on one platform under one objective."""

    setting: Setting
    replicate: int
    objective: str
    method: str
    value: float
    lp_value: float
    runtime: float
    n_lp_solves: int

    @property
    def ratio(self) -> float:
        """Objective value relative to the LP upper bound (the y-axis of
        Figures 5 and 6)."""
        if self.lp_value <= 0:
            return 1.0 if self.value <= 0 else float("inf")
        return self.value / self.lp_value


def run_setting(
    setting: Setting,
    scenario: Scenario = DEFAULT_SCENARIO,
    methods: Sequence[str] = DEFAULT_METHODS,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    n_platforms: "int | None" = None,
    rng=None,
) -> list[ExperimentRow]:
    """Evaluate all methods on ``n_platforms`` random platforms of one
    grid point. The LP bound is solved once per (platform, objective)."""
    rng = ensure_rng(rng)
    n_platforms = (
        scenario.platforms_per_setting if n_platforms is None else n_platforms
    )
    rows: list[ExperimentRow] = []
    for rep, sub_rng in enumerate(spawn_rngs(rng, n_platforms)):
        platform = generate_platform(spec_for(setting, scenario), rng=sub_rng)
        payoffs = payoffs_for(setting, scenario, sub_rng)
        for objective in objectives:
            problem = SteadyStateProblem(platform, payoffs, objective=objective)
            lp_result = get_heuristic("lp").run(problem)
            rows.append(
                ExperimentRow(
                    setting=setting,
                    replicate=rep,
                    objective=objective,
                    method="lp",
                    value=lp_result.value,
                    lp_value=lp_result.value,
                    runtime=lp_result.runtime,
                    n_lp_solves=lp_result.n_lp_solves,
                )
            )
            for method in methods:
                result = get_heuristic(method).run(problem, rng=sub_rng)
                rows.append(
                    ExperimentRow(
                        setting=setting,
                        replicate=rep,
                        objective=objective,
                        method=method,
                        value=result.value,
                        lp_value=lp_result.value,
                        runtime=result.runtime,
                        n_lp_solves=result.n_lp_solves,
                    )
                )
    return rows


def run_sweep(
    settings: Sequence[Setting],
    scenario: Scenario = DEFAULT_SCENARIO,
    methods: Sequence[str] = DEFAULT_METHODS,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    n_platforms: "int | None" = None,
    rng=None,
    progress: bool = False,
) -> list[ExperimentRow]:
    """Run :func:`run_setting` over many grid points."""
    rng = ensure_rng(rng)
    rows: list[ExperimentRow] = []
    start = time.perf_counter()
    for i, (setting, sub_rng) in enumerate(zip(settings, spawn_rngs(rng, len(settings)))):
        rows.extend(
            run_setting(
                setting,
                scenario=scenario,
                methods=methods,
                objectives=objectives,
                n_platforms=n_platforms,
                rng=sub_rng,
            )
        )
        if progress:  # pragma: no cover - cosmetic
            elapsed = time.perf_counter() - start
            print(
                f"  [{i + 1}/{len(settings)}] K={setting.k} "
                f"({elapsed:.1f}s elapsed)",
                flush=True,
            )
    return rows
