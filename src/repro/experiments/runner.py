"""Sweep runner: heuristics x objectives over generated platforms.

Produces flat :class:`ExperimentRow` records, one per (platform,
objective, method), each carrying the LP upper bound of its platform so
that every aggregate in :mod:`repro.experiments.aggregate` is a simple
group-by.

Execution goes through the :mod:`repro.parallel` campaign engine: the
sweep is expanded into pure per-replicate tasks (each carrying its own
stateless spawn seed, see :mod:`repro.parallel.sweep`), which run inline
for ``jobs=1`` — the reference serial semantics — or on a process pool
for ``jobs>1``, with optional incremental checkpoint/resume. Results
are reassembled in task order, so the row list is bitwise-identical for
any ``jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments.config import (
    DEFAULT_SCENARIO,
    Scenario,
    Setting,
    payoffs_for,
    spec_for,
)
from repro.heuristics.base import get_heuristic
from repro.platform.generator import generate_platform
from repro.util.rng import ensure_rng, spawn_seed_sequences

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.stream import SweepAccumulator

#: methods swept by default (LPRR excluded: the paper, too, ran it on a
#: small subset only because of its K^2 LP-solve cost)
DEFAULT_METHODS = ("greedy", "lpr", "lprg")
DEFAULT_OBJECTIVES = ("maxmin", "sum")


@dataclass(frozen=True, slots=True)
class ExperimentRow:
    """One measurement: one method on one platform under one objective."""

    setting: Setting
    replicate: int
    objective: str
    method: str
    value: float
    lp_value: float
    runtime: float
    n_lp_solves: int

    @property
    def ratio(self) -> float:
        """Objective value relative to the LP upper bound (the y-axis of
        Figures 5 and 6)."""
        if self.lp_value <= 0:
            return 1.0 if self.value <= 0 else float("inf")
        return self.value / self.lp_value


def run_replicate(
    setting: Setting,
    replicate: int,
    scenario: Scenario = DEFAULT_SCENARIO,
    methods: Sequence[str] = DEFAULT_METHODS,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    rng=None,
) -> list[ExperimentRow]:
    """Evaluate all methods on *one* random platform of one grid point.

    This is the pure unit of sweep work: platform generation, payoff
    draw and every stochastic heuristic consume the single ``rng``
    stream sequentially, so the rows are a deterministic function of
    ``(setting, scenario, methods, objectives, rng)``. The LP bound is
    solved once per objective and attached to every row.
    """
    rng = ensure_rng(rng)
    platform = generate_platform(spec_for(setting, scenario), rng=rng)
    payoffs = payoffs_for(setting, scenario, rng)
    rows: list[ExperimentRow] = []
    for objective in objectives:
        problem = SteadyStateProblem(platform, payoffs, objective=objective)
        lp_result = get_heuristic("lp").run(problem)
        rows.append(
            ExperimentRow(
                setting=setting,
                replicate=replicate,
                objective=objective,
                method="lp",
                value=lp_result.value,
                lp_value=lp_result.value,
                runtime=lp_result.runtime,
                n_lp_solves=lp_result.n_lp_solves,
            )
        )
        for method in methods:
            result = get_heuristic(method).run(problem, rng=rng)
            rows.append(
                ExperimentRow(
                    setting=setting,
                    replicate=replicate,
                    objective=objective,
                    method=method,
                    value=result.value,
                    lp_value=lp_result.value,
                    runtime=result.runtime,
                    n_lp_solves=result.n_lp_solves,
                )
            )
    return rows


def run_setting(
    setting: Setting,
    scenario: Scenario = DEFAULT_SCENARIO,
    methods: Sequence[str] = DEFAULT_METHODS,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    n_platforms: "int | None" = None,
    rng=None,
) -> list[ExperimentRow]:
    """Evaluate all methods on ``n_platforms`` random platforms of one
    grid point. Per-replicate seeds are stateless ``SeedSequence`` spawn
    children of ``rng`` (see :func:`repro.util.rng.spawn_seed_sequences`),
    so the same seed always produces the same platforms regardless of
    prior RNG use or execution mode."""
    n_platforms = (
        scenario.platforms_per_setting if n_platforms is None else n_platforms
    )
    rows: list[ExperimentRow] = []
    for rep, seed in enumerate(spawn_seed_sequences(rng, n_platforms)):
        rows.extend(
            run_replicate(
                setting,
                rep,
                scenario=scenario,
                methods=methods,
                objectives=objectives,
                rng=np.random.default_rng(seed),
            )
        )
    return rows


def run_sweep(
    settings: Sequence[Setting],
    scenario: Scenario = DEFAULT_SCENARIO,
    methods: Sequence[str] = DEFAULT_METHODS,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    n_platforms: "int | None" = None,
    rng=None,
    progress: bool = False,
    jobs: int = 1,
    chunk_size: "int | None" = None,
    checkpoint=None,
    resume: bool = False,
    stream: bool = False,
    row_sink=None,
    shards: int = 1,
    shard_backend: str = "process",
    shard_dir=None,
) -> "list[ExperimentRow] | SweepAccumulator":
    """Run the full sweep over many grid points.

    Parameters
    ----------
    settings, scenario, methods, objectives, n_platforms, rng:
        The sweep definition (as before).
    progress:
        Print a progress line as replicate tasks finish.
    jobs:
        Worker processes. ``1`` (default) runs inline — the exact
        serial semantics; ``jobs>1`` fans replicate tasks out over a
        process pool. Row values and ordering are identical either way.
    chunk_size:
        Tasks per pool submission (default: auto).
    checkpoint:
        Path to an incremental checkpoint file (JSON lines). Completed
        replicate tasks are flushed as they finish.
    resume:
        With ``checkpoint``, load previously completed tasks and only
        run the remainder. The checkpoint is fingerprinted against the
        sweep definition (settings, scenario, methods, objectives,
        ``n_platforms`` and seed), so resuming into a different sweep
        fails loudly.
    stream:
        Fold rows into constant-size accumulators as tasks complete
        (memory O(settings), not O(rows)) and return a
        :class:`~repro.parallel.stream.SweepAccumulator` instead of the
        row list; aggregates are bitwise-identical for any execution
        pattern. See :mod:`repro.parallel.stream`.
    row_sink:
        With ``stream=True``, also write the raw rows to this JSONL
        (default) or ``*.csv`` path instead of holding them in memory.
    shards, shard_backend, shard_dir:
        With ``shards > 1`` (requires ``stream=True``), run the sweep
        through the :mod:`repro.distrib` sharded orchestration layer:
        contiguous shard manifests, the named executor backend
        (``inline``/``process``/``subprocess``), per-shard checkpoints
        under ``shard_dir`` — with aggregates bitwise-identical to the
        serial path for any shard count or backend.

    Notes
    -----
    Thin shim over :meth:`repro.api.Solver.sweep` (bitwise-identical
    rows); hold a :class:`repro.api.Solver` directly to keep its warm
    state — and to resolve registered sweep scenarios by name.
    """
    from repro.api import Solver, SolverConfig

    solver = Solver(
        SolverConfig(
            jobs=jobs,
            chunk_size=chunk_size,
            checkpoint=None if checkpoint is None else str(checkpoint),
            resume=resume,
            stream=stream,
            row_sink=None if row_sink is None else str(row_sink),
            shards=shards,
            shard_backend=shard_backend,
            shard_dir=None if shard_dir is None else str(shard_dir),
        )
    )
    return solver.sweep(
        settings,
        scenario=scenario,
        methods=methods,
        objectives=objectives,
        n_platforms=n_platforms,
        rng=rng,
        progress=progress,
    )
