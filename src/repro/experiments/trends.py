"""Trend mining over platform characteristics (Section 6.1, last
paragraph).

The paper: "We have mined our results to identify potential trends about
how platform characteristics impact the relative performance of our
heuristics. No clear trend emerges in the MAXMIN case [...]. The
relative performance of G and LPRG is more regular in the SUM case, but
we found that variations in platform parameters besides K (i.e.,
connectivity, heterogeneity, g, bw, or maxcon) does not lead to
significant variations in relative performance."

:func:`trend_table` groups the sweep rows by each platform parameter and
reports the LPRG/G advantage per bucket; :func:`trend_spread` condenses
each parameter's influence into a single spread number so the "no
significant variation" claim becomes a measurable assertion.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

import numpy as np

from repro.experiments.runner import ExperimentRow
from repro.util.tables import TextTable

#: the Table-1 parameters other than K, with row accessors
PARAMETERS: dict[str, Callable[[ExperimentRow], float]] = {
    "connectivity": lambda r: r.setting.connectivity,
    "heterogeneity": lambda r: r.setting.heterogeneity,
    "mean_g": lambda r: r.setting.mean_g,
    "mean_bw": lambda r: r.setting.mean_bw,
    "mean_maxcon": lambda r: r.setting.mean_maxcon,
}


def _paired_ratios(
    rows: Sequence[ExperimentRow],
    numerator: str,
    denominator: str,
    objective: str,
) -> list[tuple[ExperimentRow, float]]:
    """Per-platform (row, num/den value ratio) pairs for one objective."""
    num = [r for r in rows if r.method == numerator and r.objective == objective]
    den = [r for r in rows if r.method == denominator and r.objective == objective]
    if len(num) != len(den):
        raise ValueError(
            f"cannot pair {numerator} ({len(num)} rows) with {denominator} "
            f"({len(den)} rows); run both methods in one sweep"
        )
    out = []
    for nr, dr in zip(num, den):
        if nr.setting != dr.setting or nr.replicate != dr.replicate:
            raise ValueError("row streams out of sync; run both methods in one sweep")
        if dr.value > 0:
            out.append((nr, nr.value / dr.value))
    return out


def trend_table(
    rows: Sequence[ExperimentRow],
    parameter: str,
    objective: str,
    numerator: str = "lprg",
    denominator: str = "greedy",
) -> list[tuple[float, float, int]]:
    """Mean numerator/denominator value ratio per bucket of ``parameter``.

    Returns ``[(parameter_value, mean_ratio, n_samples), ...]`` sorted by
    parameter value.
    """
    try:
        accessor = PARAMETERS[parameter]
    except KeyError:
        raise ValueError(
            f"unknown parameter {parameter!r}; choose from {sorted(PARAMETERS)}"
        ) from None
    buckets: dict[float, list[float]] = defaultdict(list)
    for row, ratio in _paired_ratios(rows, numerator, denominator, objective):
        buckets[accessor(row)].append(ratio)
    return [
        (value, float(np.mean(ratios)), len(ratios))
        for value, ratios in sorted(buckets.items())
    ]


def trend_spread(
    rows: Sequence[ExperimentRow],
    objective: str,
    numerator: str = "lprg",
    denominator: str = "greedy",
) -> dict[str, float]:
    """Max-minus-min of per-bucket mean ratios, for every parameter.

    A small spread for a parameter means it does not materially change
    the heuristics' relative performance — the paper's finding for
    everything except K.
    """
    out = {}
    for parameter in PARAMETERS:
        table = trend_table(rows, parameter, objective, numerator, denominator)
        if table:
            means = [m for _, m, _ in table]
            out[parameter] = float(max(means) - min(means))
        else:
            out[parameter] = float("nan")
    return out


def render_trends(
    rows: Sequence[ExperimentRow], objective: str
) -> str:
    """Readable multi-parameter trend report (LPRG/G)."""
    lines = [f"LPRG/G value-ratio trends, objective = {objective.upper()}"]
    for parameter in PARAMETERS:
        table = TextTable([parameter, "LPRG/G", "n"], float_fmt=".3f")
        for value, mean, n in trend_table(rows, parameter, objective):
            table.add_row([value, mean, n])
        lines.append("")
        lines.append(table.render())
    spread = trend_spread(rows, objective)
    lines.append("")
    lines.append(
        "per-parameter spread of the mean ratio: "
        + ", ".join(f"{k}={v:.3f}" for k, v in spread.items())
    )
    return "\n".join(lines)
