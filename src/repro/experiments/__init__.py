"""Section-6 evaluation harness.

Reproduces the paper's simulation study: the Table-1 parameter grid,
the per-platform heuristic comparison against the LP upper bound, the
aggregate ratios of Section 6.1/6.2, and the data behind Figures 5-7.
"""

from repro.experiments.config import (
    PAPER_GRID,
    Scenario,
    Setting,
    grid_size,
    iter_grid,
    sample_settings,
    spec_for,
    payoffs_for,
)
from repro.experiments.runner import (
    ExperimentRow,
    run_replicate,
    run_setting,
    run_sweep,
)
from repro.experiments.aggregate import (
    headline_ratios,
    lpr_failure_stats,
    mean_ratio_by_k,
)
from repro.experiments.figures import (
    FigureData,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.report import render_figure

__all__ = [
    "PAPER_GRID",
    "Scenario",
    "Setting",
    "grid_size",
    "iter_grid",
    "sample_settings",
    "spec_for",
    "payoffs_for",
    "ExperimentRow",
    "run_replicate",
    "run_setting",
    "run_sweep",
    "headline_ratios",
    "lpr_failure_stats",
    "mean_ratio_by_k",
    "FigureData",
    "figure5",
    "figure6",
    "figure7",
    "render_figure",
]
