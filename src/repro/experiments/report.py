"""Terminal rendering of figure reproductions.

``render_figure`` prints the numeric series as a table plus an ASCII
plot; the output is what EXPERIMENTS.md quotes as "measured" values.
"""

from __future__ import annotations

from repro.experiments.figures import FigureData
from repro.util.ascii_plot import ascii_series_plot
from repro.util.tables import TextTable


def render_figure(fig: FigureData, width: int = 64, height: int = 16) -> str:
    """Render a :class:`FigureData` as table + ASCII plot + notes."""
    lines = [fig.title, ""]

    # Numeric table: one row per x, one column per series.
    xs = sorted({x for pts in fig.series.values() for x, _ in pts})
    table = TextTable(["K"] + list(fig.series.keys()), float_fmt=".4g")
    by_series = {name: dict(pts) for name, pts in fig.series.items()}
    for x in xs:
        table.add_row(
            [int(x)]
            + [
                by_series[name].get(x, float("nan"))
                for name in fig.series
            ]
        )
    lines.append(table.render())
    lines.append("")
    lines.append(
        ascii_series_plot(fig.series, width=width, height=height, logy=fig.logy)
    )
    if fig.notes:
        lines.append("")
        lines.append("notes:")
        for key, value in fig.notes.items():
            if isinstance(value, dict):
                pretty = ", ".join(
                    f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in value.items()
                )
                lines.append(f"  {key}: {pretty}")
            else:
                lines.append(f"  {key}: {value}")
    return "\n".join(lines)
