"""Command-line interface: regenerate any paper artifact from a shell.

Examples
--------
::

    python -m repro.experiments figure5 --k 5 15 25 --settings-per-k 3
    python -m repro.experiments figure6
    python -m repro.experiments figure7 --k 10 20 30
    python -m repro.experiments headline --settings 20 --jobs 4
    python -m repro.experiments headline --stream --row-sink rows.jsonl
    python -m repro.experiments headline --stream --shards 4 \\
        --shard-backend subprocess --shard-dir campaign/
    python -m repro.experiments shard run campaign/shard-0002.manifest.json \\
        --resume                              # re-run one killed shard
    python -m repro.experiments shard merge campaign/  # assemble tables
    python -m repro.experiments trends --settings 12 \\
        --checkpoint trends.ckpt --resume
    python -m repro.experiments online --scenario table1-small \\
        --events drift-heavy --json report.json   # dynamic re-scheduling
    python -m repro.experiments grid          # print Table 1
    python -m repro.experiments --list-methods     # registry metadata
    python -m repro.experiments --list-scenarios   # scenario registry

Each subcommand prints the numeric series (and an ASCII plot) to stdout;
seeds make every run reproducible. ``--jobs N`` fans the sweep out over
N worker processes with *identical* output (stateless per-task seeds),
and ``--checkpoint``/``--resume`` give interrupted sweeps exact resume.
``--stream`` aggregates through the constant-memory streaming subsystem
(rows are folded as tasks finish, never materialised; ``--row-sink
PATH`` diverts the raw rows to a JSONL/``.csv`` file). ``--shards N``
(with ``--stream``) runs the sweep through the :mod:`repro.distrib`
sharded orchestration layer — contiguous shard manifests, a pluggable
executor backend, per-shard checkpoints under ``--shard-dir``, and an
exactly-associative merge, with output bitwise-identical to the serial
path; the ``shard run``/``shard merge`` subcommands are the host-side
plumbing the ``subprocess`` backend (or a real remote host) invokes.
Invalid flag combinations (``--resume`` without ``--checkpoint``,
``--row-sink``/``--shards`` without ``--stream``, ``--shards`` with
``--checkpoint``) and an unwritable ``--row-sink`` path fail before any
task runs. The sweep subcommands run through the
:class:`repro.api.Solver` facade.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.aggregate import headline_ratios, lpr_failure_stats
from repro.experiments.config import PAPER_GRID, grid_size, sample_settings
from repro.experiments.figures import figure5, figure6, figure7
from repro.experiments.report import render_figure
from repro.experiments.trends import render_trends


def _sweep_solver(args):
    """A :class:`repro.api.Solver` carrying the CLI's execution knobs."""
    from repro.api import Solver, SolverConfig

    return Solver(
        SolverConfig(
            jobs=args.jobs,
            checkpoint=getattr(args, "checkpoint", None),
            resume=getattr(args, "resume", False),
            stream=getattr(args, "stream", False),
            row_sink=getattr(args, "row_sink", None),
            shards=getattr(args, "shards", 1),
            shard_backend=getattr(args, "shard_backend", "process"),
            shard_dir=getattr(args, "shard_dir", None),
        )
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the sweep (1 = serial; results are "
        "identical for any value)",
    )


def _add_stream(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stream",
        action="store_true",
        help="streaming aggregation: fold rows into constant-size "
        "accumulators as tasks finish (memory O(settings), identical "
        "aggregates for any --jobs/resume pattern)",
    )
    parser.add_argument(
        "--row-sink",
        metavar="PATH",
        default=None,
        help="with --stream, write raw sweep rows to PATH (JSON lines, "
        "or CSV when PATH ends in .csv) instead of keeping them in "
        "memory",
    )


def _add_shards(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        metavar="N",
        help="partition the sweep into N shard manifests and merge the "
        "per-shard aggregates (requires --stream; results are "
        "bitwise-identical to the serial path for any N)",
    )
    parser.add_argument(
        "--shard-dir",
        metavar="DIR",
        default=None,
        help="with --shards, keep shard manifests/checkpoints/sinks "
        "under DIR, so an interrupted campaign can resume (per-shard "
        "'shard run --resume' + 'shard merge', or --resume where "
        "available); default: a temporary directory",
    )
    parser.add_argument(
        "--shard-backend",
        choices=["inline", "process", "subprocess"],
        default="process",
        help="executor backend for --shards: inline (sequential, "
        "reference), process (local pool), subprocess (one interpreter "
        "per shard, the multi-host stand-in)",
    )


def _add_checkpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="incrementally checkpoint sweep results to PATH (JSON lines)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume a sweep from --checkpoint, re-running only "
        "unfinished tasks",
    )


def _run_shard_command(args) -> int:
    """The ``shard`` subcommand family: host-side campaign plumbing."""
    import json

    if args.shard_command == "run":
        import sys

        from repro.distrib import QUARANTINE_EXIT, run_shard
        from repro.distrib.supervise import QUARANTINE_REPORT_PREFIX
        from repro.parallel.engine import QuarantineError, RetryPolicy

        retry = None
        if getattr(args, "retry", None):
            retry = RetryPolicy.from_dict(json.loads(args.retry))
        try:
            summary = run_shard(args.manifest, resume=args.resume, retry=retry)
        except QuarantineError as exc:
            # Structured quarantine hand-off: the supervisor (or any
            # caller) re-parses this stderr line into TaskFailure
            # records; the distinguished exit code marks the failure
            # deterministic (retrying the shard cannot help).
            report = [f.to_dict() for f in exc.failures]
            print(
                QUARANTINE_REPORT_PREFIX + json.dumps(report, sort_keys=True),
                file=sys.stderr,
            )
            print(str(exc), file=sys.stderr)
            return QUARANTINE_EXIT
        print(json.dumps(summary, sort_keys=True))
        return 0
    if args.shard_command == "status":
        from repro.distrib import campaign_status

        status = campaign_status(args.shard_dir)
        merged = None
        if args.metrics:
            from repro.obs.metrics import MetricsRegistry

            # Heartbeat snapshots merge exactly in any order (the
            # SweepAccumulator contract), so this is the campaign's
            # true cumulative view, not an approximation.
            merged = MetricsRegistry()
            for entry in status:
                snapshot = (entry.get("heartbeat") or {}).get("metrics")
                if snapshot:
                    merged.merge(MetricsRegistry.from_state(snapshot))
        if args.json:
            if merged is not None:
                payload = {"shards": status, "metrics": merged.state_dict()}
            else:
                payload = status
            print(json.dumps(payload, sort_keys=True))
            return 0
        for entry in status:
            state = "done" if entry["complete"] else (
                entry["problem"] or "pending"
            )
            beat = entry["heartbeat_age"]
            beat_txt = "-" if beat is None else f"{beat:.1f}s ago"
            print(
                f"  shard {entry['shard_index']:>4}  tasks "
                f"[{entry['task_start']}, {entry['task_stop']})  folded "
                f"{entry['folded']}/{entry['n_tasks']}  heartbeat "
                f"{beat_txt}  {state}"
            )
        if merged is not None:
            from repro.obs.metrics import render_prometheus

            print()
            print(render_prometheus(merged), end="")
        return 0
    if args.shard_command == "steal":
        from repro.distrib import steal_shard

        part_a, part_b = steal_shard(
            args.shard_dir,
            args.shard_index,
            stale_after=args.stale_after,
            force=args.force,
        )
        if part_b is None:
            print(
                f"shard {args.shard_index} has no stealable remainder "
                f"(trimmed to [{part_a.task_start}, {part_a.task_stop}))"
            )
            return 0
        print(
            f"split shard {args.shard_index}: kept tasks "
            f"[{part_a.task_start}, {part_a.task_stop}), stole "
            f"[{part_b.task_start}, {part_b.task_stop}) into new shard "
            f"{part_b.shard_index}"
        )
        print(
            f"run it with: python -m repro.experiments shard run "
            f"{part_b.manifest_path}"
        )
        return 0
    # shard merge
    from repro.distrib import load_manifests, merge_shards

    manifests = load_manifests(args.shard_dir)
    merged = merge_shards(manifests, row_sink=args.row_sink)
    tables = merged.tables()
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps(tables, indent=2, sort_keys=True) + "\n"
        )
    print(
        f"merged {len(manifests)} shards: {merged.n_tasks} tasks, "
        f"{merged.n_rows} rows"
    )
    for key, stats in tables["method_failure"].items():
        print(
            f"  {key:<8} mean ratio {stats['mean_ratio']:.4f}, "
            f"median {stats['median_ratio']:.4f}, "
            f"p95 {stats['p95_ratio']:.4f}, "
            f"zero fraction {stats['zero_fraction']:.4f}"
        )
    return 0


def _render_method_table() -> str:
    """Registry metadata as a fixed-width listing (``--list-methods``)."""
    from repro.core.solve import method_info

    lines = ["registered methods:"]
    infos = method_info()
    width = max(len(name) for name in infos)
    for name, info in infos.items():
        flags = []
        if info.uses_lp:
            flags.append("LP")
        flags.append("det" if info.deterministic else "rng")
        tag = ",".join(flags)
        lines.append(f"  {name:<{width}}  [{tag:<6}] {info.description}")
        if info.aliases:
            lines.append(f"  {'':<{width}}           aliases: "
                         f"{', '.join(info.aliases)}")
        if info.options:
            lines.append(f"  {'':<{width}}           options: "
                         f"{', '.join(info.options)}")
    return "\n".join(lines)


def _render_scenario_table() -> str:
    """Scenario registry as a fixed-width listing (``--list-scenarios``)."""
    from repro.api import available_scenarios, scenario_info

    lines = ["registered scenarios:"]
    names = available_scenarios()
    width = max(len(name) for name in names)
    for name in names:
        info = scenario_info(name)
        lines.append(
            f"  {name:<{width}}  [{info.kind:<8}] {info.description}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="print per-method registry metadata and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario registry and exit",
    )
    sub = parser.add_subparsers(dest="command", required=False)

    p5 = sub.add_parser("figure5", help="LPRG and G vs LP bound over K")
    p5.add_argument("--k", type=int, nargs="+", default=[5, 15, 25, 35])
    p5.add_argument("--settings-per-k", type=int, default=3)
    p5.add_argument("--platforms", type=int, default=3)
    _add_common(p5)
    _add_stream(p5)
    _add_shards(p5)

    p6 = sub.add_parser("figure6", help="LPRR vs G on small-K topologies")
    p6.add_argument("--k", type=int, nargs="+", default=[15, 20, 25])
    p6.add_argument("--settings-per-k", type=int, default=2)
    p6.add_argument("--platforms", type=int, default=2)
    _add_common(p6)
    _add_stream(p6)
    _add_shards(p6)

    p7 = sub.add_parser("figure7", help="running times over K (log scale)")
    p7.add_argument("--k", type=int, nargs="+", default=[10, 15, 20, 25])
    p7.add_argument("--no-lprr", action="store_true")
    _add_common(p7)
    _add_stream(p7)
    _add_shards(p7)

    ph = sub.add_parser("headline", help="Section 6.1 LPRG/G ratios")
    ph.add_argument("--settings", type=int, default=12)
    ph.add_argument("--platforms", type=int, default=2)
    _add_common(ph)
    _add_checkpoint(ph)
    _add_stream(ph)
    _add_shards(ph)

    pt = sub.add_parser("trends", help="Section 6.1 parameter-trend mining")
    pt.add_argument("--settings", type=int, default=12)
    pt.add_argument("--platforms", type=int, default=2)
    pt.add_argument("--objective", choices=["maxmin", "sum"], default="sum")
    _add_common(pt)
    _add_checkpoint(pt)

    ps = sub.add_parser(
        "shard",
        help="multi-host campaign plumbing: run one shard manifest, "
        "inspect per-shard progress, steal a stuck shard's remaining "
        "work, or merge a completed campaign's shards",
    )
    shard_sub = ps.add_subparsers(dest="shard_command", required=True)
    pr = shard_sub.add_parser(
        "run",
        help="execute one shard manifest to completion (what the "
        "subprocess backend — or a remote host — invokes)",
    )
    pr.add_argument("manifest", help="path to a shard-NNNN.manifest.json")
    pr.add_argument(
        "--resume",
        action="store_true",
        help="continue from the shard's own checkpoint instead of "
        "starting the shard fresh",
    )
    pr.add_argument(
        "--retry",
        metavar="JSON",
        default=None,
        help="RetryPolicy as a JSON object (see RetryPolicy.to_dict): "
        "retry transient task failures inside the shard and quarantine "
        "deterministic ones (exit code 3 + a QUARANTINE-REPORT stderr "
        "line) instead of failing the shard",
    )
    pst = shard_sub.add_parser(
        "status",
        help="per-shard progress/liveness of one campaign directory "
        "(heartbeats + checkpoint watermarks; no locks taken)",
    )
    pst.add_argument(
        "shard_dir", help="campaign directory holding shard-*.manifest.json"
    )
    pst.add_argument(
        "--json",
        action="store_true",
        help="machine-readable: one JSON array instead of the table",
    )
    pst.add_argument(
        "--metrics",
        action="store_true",
        help="merge the live metric snapshots from every shard "
        "heartbeat (exactly, in any order) and append them in "
        "Prometheus text form (with --json: a 'metrics' state dict)",
    )
    pw = shard_sub.add_parser(
        "steal",
        help="re-plan a dead/stuck shard: trim it to its checkpoint "
        "watermark and move the remaining task range into a fresh shard "
        "manifest (the merged result stays bitwise-identical)",
    )
    pw.add_argument(
        "shard_dir", help="campaign directory holding shard-*.manifest.json"
    )
    pw.add_argument("shard_index", type=int, help="index of the shard to split")
    pw.add_argument(
        "--stale-after",
        type=float,
        metavar="SECONDS",
        default=None,
        help="refuse unless the shard's heartbeat is older than SECONDS "
        "(liveness guard against stealing from a running shard)",
    )
    pw.add_argument(
        "--force",
        action="store_true",
        help="steal even if the shard's heartbeat looks fresh",
    )
    pm = shard_sub.add_parser(
        "merge",
        help="merge the completed shards of one campaign directory into "
        "the final aggregate tables",
    )
    pm.add_argument(
        "shard_dir", help="campaign directory holding shard-*.manifest.json"
    )
    pm.add_argument(
        "--row-sink",
        metavar="PATH",
        default=None,
        help="also concatenate the per-shard row sinks into PATH",
    )
    pm.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the merged aggregate tables as JSON to PATH",
    )

    psv = sub.add_parser(
        "serve",
        help="run the resident solver service (repro.service) on the "
        "bundled zero-dependency HTTP bridge",
    )
    psv.add_argument("--host", default="127.0.0.1")
    psv.add_argument("--port", type=int, default=8175)
    psv.add_argument(
        "--workers",
        type=int,
        default=8,
        metavar="N",
        help="job-runner threads (concurrent sweeps/async solves)",
    )
    psv.add_argument(
        "--job-store",
        metavar="PATH",
        default=None,
        help="JSONL journal for job lifecycle state (survives restarts); "
        "default keeps jobs in memory only",
    )
    psv.add_argument(
        "--max-solvers",
        type=int,
        default=32,
        metavar="N",
        help="warm Solver instances kept in the LRU pool",
    )
    psv.add_argument(
        "--coalesce-window",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="how long a solve request waits for batchable company "
        "before its solve_many batch dispatches",
    )
    psv.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )

    po = sub.add_parser(
        "online",
        help="online re-scheduling: replay a dynamic event trace "
        "(drift, failures, churn) against a live schedule with "
        "incremental LP re-solves",
    )
    po.add_argument(
        "--scenario",
        default="table1-small",
        help="registered platform scenario to schedule",
    )
    po.add_argument(
        "--events",
        default="drift-heavy",
        help="registered events scenario (drift-heavy, failure-storm, "
        "churn) or a path to a saved EventTrace *.json",
    )
    po.add_argument(
        "--cold",
        action="store_true",
        help="re-solve from scratch at every event (identical answers; "
        "the no-warm-start baseline)",
    )
    po.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the simulator replay after each event (LP metrics only)",
    )
    po.add_argument(
        "--no-oracle",
        action="store_true",
        help="skip the from-scratch oracle solve after each event",
    )
    po.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full DisruptionReport as JSON to PATH",
    )
    po.add_argument("--seed", type=int, default=7, help="RNG seed")

    ptr = sub.add_parser(
        "trace",
        help="run any other subcommand under a structured tracer and "
        "dump the span trees as JSON lines (timings only — the wrapped "
        "command's output is bitwise-unchanged)",
    )
    ptr.add_argument(
        "--out",
        metavar="PATH",
        default="trace.jsonl",
        help="JSONL file receiving one span tree per line "
        "(default: trace.jsonl)",
    )
    ptr.add_argument(
        "cmd",
        nargs=argparse.REMAINDER,
        help="the subcommand to wrap, e.g. `trace -- figure7 --k 10`",
    )

    sub.add_parser("grid", help="print the Table-1 parameter grid")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_methods or args.list_scenarios:
        if args.command is not None:
            parser.error(
                "--list-methods/--list-scenarios cannot be combined with "
                "a subcommand"
            )
        if args.list_methods:
            print(_render_method_table())
        if args.list_scenarios:
            print(_render_scenario_table())
        return 0
    if args.command is None:
        parser.error(
            "a subcommand is required (or --list-methods/--list-scenarios)"
        )
    if args.command == "trace":
        from repro.obs.trace import JsonlTraceSink, Tracer, use_tracer

        rest = list(args.cmd)
        if rest and rest[0] == "--":
            rest = rest[1:]
        if not rest:
            parser.error(
                "trace needs a subcommand to wrap, e.g. "
                "`trace -- figure7 --k 10`"
            )
        if rest[0] == "trace":
            parser.error("trace cannot wrap itself")
        tracer = Tracer()
        with use_tracer(tracer):
            code = main(rest)
        spans = tracer.to_dicts()
        JsonlTraceSink(args.out).write_many(spans)
        print(
            f"trace: wrote {len(spans)} span tree(s) to {args.out}",
            file=sys.stderr,
        )
        return code
    if args.command != "shard":
        if getattr(args, "resume", False):
            if getattr(args, "shards", 1) > 1:
                if not getattr(args, "shard_dir", None):
                    parser.error("--resume with --shards requires --shard-dir")
            elif not getattr(args, "checkpoint", None):
                parser.error("--resume requires --checkpoint")
        if getattr(args, "row_sink", None) and not getattr(args, "stream", False):
            parser.error("--row-sink requires --stream")
        if getattr(args, "shards", 1) > 1 and not getattr(args, "stream", False):
            parser.error("--shards requires --stream")
        if getattr(args, "shard_dir", None) and getattr(args, "shards", 1) < 2:
            parser.error("--shard-dir requires --shards N (N > 1)")
        if getattr(args, "shards", 1) > 1 and getattr(args, "checkpoint", None):
            parser.error(
                "--shards is incompatible with --checkpoint (each shard "
                "keeps its own checkpoint under --shard-dir)"
            )
    # (an unwritable --row-sink path fails fast inside Solver.sweep,
    # before any sweep task runs)

    if args.command == "shard":
        return _run_shard_command(args)
    if args.command == "serve":
        from repro.service import create_app
        from repro.service.server import run_server

        app = create_app(
            job_store=args.job_store,
            max_solvers=args.max_solvers,
            max_workers=args.workers,
            coalesce_window=args.coalesce_window,
        )
        run_server(app, host=args.host, port=args.port, verbose=not args.quiet)
        return 0
    if args.command == "figure5":
        fig = figure5(
            k_values=tuple(args.k),
            settings_per_k=args.settings_per_k,
            platforms_per_setting=args.platforms,
            rng=args.seed,
            jobs=args.jobs,
            stream=args.stream,
            row_sink=args.row_sink,
            shards=args.shards,
            shard_backend=args.shard_backend,
            shard_dir=args.shard_dir,
        )
        print(render_figure(fig))
    elif args.command == "figure6":
        fig = figure6(
            k_values=tuple(args.k),
            settings_per_k=args.settings_per_k,
            platforms_per_setting=args.platforms,
            rng=args.seed,
            jobs=args.jobs,
            stream=args.stream,
            row_sink=args.row_sink,
            shards=args.shards,
            shard_backend=args.shard_backend,
            shard_dir=args.shard_dir,
        )
        print(render_figure(fig))
    elif args.command == "figure7":
        fig = figure7(
            k_values=tuple(args.k),
            include_lprr=not args.no_lprr,
            rng=args.seed,
            jobs=args.jobs,
            stream=args.stream,
            row_sink=args.row_sink,
            shards=args.shards,
            shard_backend=args.shard_backend,
            shard_dir=args.shard_dir,
        )
        print(render_figure(fig))
    elif args.command == "headline":
        settings = sample_settings(args.settings, rng=args.seed, k_values=[5, 15, 25])
        result = _sweep_solver(args).sweep(
            settings,
            methods=("greedy", "lprg"),
            objectives=("maxmin", "sum"),
            n_platforms=args.platforms,
            rng=args.seed,
        )
        ratios = result.headline_ratios() if args.stream else headline_ratios(result)
        print("LPRG/G value ratios   [paper: MAXMIN 1.98, SUM 1.02]")
        print(f"  MAXMIN: {ratios['maxmin']:.3f}")
        print(f"  SUM:    {ratios['sum']:.3f}")
    elif args.command == "trends":
        settings = sample_settings(args.settings, rng=args.seed, k_values=[15])
        rows = _sweep_solver(args).sweep(
            settings,
            methods=("greedy", "lpr", "lprg"),
            objectives=(args.objective,),
            n_platforms=args.platforms,
            rng=args.seed,
        )
        print(render_trends(rows, args.objective))
        stats = lpr_failure_stats(rows)
        print(
            f"\nLPR failure stats: mean ratio {stats['mean_ratio']:.3f}, "
            f"zero fraction {stats['zero_fraction']:.3f}"
        )
    elif args.command == "online":
        import json as _json
        from pathlib import Path

        from repro.api import Solver, SolverConfig
        from repro.dynamic import DynamicOptions, EventTrace

        options = DynamicOptions(
            replay=not args.no_replay, check_oracle=not args.no_oracle
        )
        solver = Solver(
            SolverConfig(warm_start=not args.cold, dynamic=options)
        )
        events = args.events
        if events.endswith(".json"):
            events = EventTrace.load(events)
        report = solver.run_online(args.scenario, events, rng=args.seed)
        s = report.summary()
        print(f"online re-scheduling: {args.scenario} x {args.events}")
        print(f"  events applied      {s['n_events']}  {s['by_classification']}")
        print(f"  warm iterations     {s['warm_iterations']}")
        if s["oracle_iterations"] is not None:
            print(f"  oracle iterations   {s['oracle_iterations']}")
            print(f"  iteration reduction {s['iteration_reduction']:.1%}")
            match = "all bitwise" if s["all_oracle_match"] else "MISMATCH"
            print(f"  oracle match        {match}")
        print(
            f"  mean re-optimize    {s['mean_reoptimize_seconds'] * 1e3:.2f} ms"
        )
        print(f"  mean churn          {s['mean_churn']:.3f}")
        print(f"  mean deficit        {s['mean_throughput_deficit']:.3f}")
        print(f"  value {s['initial_value']:.4f} -> {s['final_value']:.4f}")
        if args.json:
            Path(args.json).write_text(
                _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
            )
    elif args.command == "grid":
        print("Table 1 parameter grid:")
        for name, values in PAPER_GRID.items():
            print(f"  {name:<14} {list(values)}")
        print(f"  -> {grid_size():,} settings x 10 platforms each")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
