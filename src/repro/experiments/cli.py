"""Command-line interface: regenerate any paper artifact from a shell.

Examples
--------
::

    python -m repro.experiments figure5 --k 5 15 25 --settings-per-k 3
    python -m repro.experiments figure6
    python -m repro.experiments figure7 --k 10 20 30
    python -m repro.experiments headline --settings 20 --jobs 4
    python -m repro.experiments headline --stream --row-sink rows.jsonl
    python -m repro.experiments trends --settings 12 \\
        --checkpoint trends.ckpt --resume
    python -m repro.experiments grid          # print Table 1
    python -m repro.experiments --list-methods     # registry metadata
    python -m repro.experiments --list-scenarios   # scenario registry

Each subcommand prints the numeric series (and an ASCII plot) to stdout;
seeds make every run reproducible. ``--jobs N`` fans the sweep out over
N worker processes with *identical* output (stateless per-task seeds),
and ``--checkpoint``/``--resume`` give interrupted sweeps exact resume.
``--stream`` aggregates through the constant-memory streaming subsystem
(rows are folded as tasks finish, never materialised; ``--row-sink
PATH`` diverts the raw rows to a JSONL/``.csv`` file). Invalid flag
combinations (``--resume`` without ``--checkpoint``, ``--row-sink``
without ``--stream``) and an unwritable ``--row-sink`` path fail before
any task runs. The sweep subcommands run through the
:class:`repro.api.Solver` facade.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.aggregate import headline_ratios, lpr_failure_stats
from repro.experiments.config import PAPER_GRID, grid_size, sample_settings
from repro.experiments.figures import figure5, figure6, figure7
from repro.experiments.report import render_figure
from repro.experiments.trends import render_trends


def _sweep_solver(args):
    """A :class:`repro.api.Solver` carrying the CLI's execution knobs."""
    from repro.api import Solver, SolverConfig

    return Solver(
        SolverConfig(
            jobs=args.jobs,
            checkpoint=getattr(args, "checkpoint", None),
            resume=getattr(args, "resume", False),
            stream=getattr(args, "stream", False),
            row_sink=getattr(args, "row_sink", None),
        )
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the sweep (1 = serial; results are "
        "identical for any value)",
    )


def _add_stream(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stream",
        action="store_true",
        help="streaming aggregation: fold rows into constant-size "
        "accumulators as tasks finish (memory O(settings), identical "
        "aggregates for any --jobs/resume pattern)",
    )
    parser.add_argument(
        "--row-sink",
        metavar="PATH",
        default=None,
        help="with --stream, write raw sweep rows to PATH (JSON lines, "
        "or CSV when PATH ends in .csv) instead of keeping them in "
        "memory",
    )


def _add_checkpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="incrementally checkpoint sweep results to PATH (JSON lines)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume a sweep from --checkpoint, re-running only "
        "unfinished tasks",
    )


def _render_method_table() -> str:
    """Registry metadata as a fixed-width listing (``--list-methods``)."""
    from repro.core.solve import method_info

    lines = ["registered methods:"]
    infos = method_info()
    width = max(len(name) for name in infos)
    for name, info in infos.items():
        flags = []
        if info.uses_lp:
            flags.append("LP")
        flags.append("det" if info.deterministic else "rng")
        tag = ",".join(flags)
        lines.append(f"  {name:<{width}}  [{tag:<6}] {info.description}")
        if info.aliases:
            lines.append(f"  {'':<{width}}           aliases: "
                         f"{', '.join(info.aliases)}")
        if info.options:
            lines.append(f"  {'':<{width}}           options: "
                         f"{', '.join(info.options)}")
    return "\n".join(lines)


def _render_scenario_table() -> str:
    """Scenario registry as a fixed-width listing (``--list-scenarios``)."""
    from repro.api import available_scenarios, scenario_info

    lines = ["registered scenarios:"]
    names = available_scenarios()
    width = max(len(name) for name in names)
    for name in names:
        info = scenario_info(name)
        lines.append(
            f"  {name:<{width}}  [{info.kind:<8}] {info.description}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="print per-method registry metadata and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario registry and exit",
    )
    sub = parser.add_subparsers(dest="command", required=False)

    p5 = sub.add_parser("figure5", help="LPRG and G vs LP bound over K")
    p5.add_argument("--k", type=int, nargs="+", default=[5, 15, 25, 35])
    p5.add_argument("--settings-per-k", type=int, default=3)
    p5.add_argument("--platforms", type=int, default=3)
    _add_common(p5)
    _add_stream(p5)

    p6 = sub.add_parser("figure6", help="LPRR vs G on small-K topologies")
    p6.add_argument("--k", type=int, nargs="+", default=[15, 20, 25])
    p6.add_argument("--settings-per-k", type=int, default=2)
    p6.add_argument("--platforms", type=int, default=2)
    _add_common(p6)
    _add_stream(p6)

    p7 = sub.add_parser("figure7", help="running times over K (log scale)")
    p7.add_argument("--k", type=int, nargs="+", default=[10, 15, 20, 25])
    p7.add_argument("--no-lprr", action="store_true")
    _add_common(p7)
    _add_stream(p7)

    ph = sub.add_parser("headline", help="Section 6.1 LPRG/G ratios")
    ph.add_argument("--settings", type=int, default=12)
    ph.add_argument("--platforms", type=int, default=2)
    _add_common(ph)
    _add_checkpoint(ph)
    _add_stream(ph)

    pt = sub.add_parser("trends", help="Section 6.1 parameter-trend mining")
    pt.add_argument("--settings", type=int, default=12)
    pt.add_argument("--platforms", type=int, default=2)
    pt.add_argument("--objective", choices=["maxmin", "sum"], default="sum")
    _add_common(pt)
    _add_checkpoint(pt)

    sub.add_parser("grid", help="print the Table-1 parameter grid")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_methods or args.list_scenarios:
        if args.command is not None:
            parser.error(
                "--list-methods/--list-scenarios cannot be combined with "
                "a subcommand"
            )
        if args.list_methods:
            print(_render_method_table())
        if args.list_scenarios:
            print(_render_scenario_table())
        return 0
    if args.command is None:
        parser.error(
            "a subcommand is required (or --list-methods/--list-scenarios)"
        )
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        parser.error("--resume requires --checkpoint")
    if getattr(args, "row_sink", None) and not getattr(args, "stream", False):
        parser.error("--row-sink requires --stream")
    # (an unwritable --row-sink path fails fast inside Solver.sweep,
    # before any sweep task runs)

    if args.command == "figure5":
        fig = figure5(
            k_values=tuple(args.k),
            settings_per_k=args.settings_per_k,
            platforms_per_setting=args.platforms,
            rng=args.seed,
            jobs=args.jobs,
            stream=args.stream,
            row_sink=args.row_sink,
        )
        print(render_figure(fig))
    elif args.command == "figure6":
        fig = figure6(
            k_values=tuple(args.k),
            settings_per_k=args.settings_per_k,
            platforms_per_setting=args.platforms,
            rng=args.seed,
            jobs=args.jobs,
            stream=args.stream,
            row_sink=args.row_sink,
        )
        print(render_figure(fig))
    elif args.command == "figure7":
        fig = figure7(
            k_values=tuple(args.k),
            include_lprr=not args.no_lprr,
            rng=args.seed,
            jobs=args.jobs,
            stream=args.stream,
            row_sink=args.row_sink,
        )
        print(render_figure(fig))
    elif args.command == "headline":
        settings = sample_settings(args.settings, rng=args.seed, k_values=[5, 15, 25])
        result = _sweep_solver(args).sweep(
            settings,
            methods=("greedy", "lprg"),
            objectives=("maxmin", "sum"),
            n_platforms=args.platforms,
            rng=args.seed,
        )
        ratios = result.headline_ratios() if args.stream else headline_ratios(result)
        print("LPRG/G value ratios   [paper: MAXMIN 1.98, SUM 1.02]")
        print(f"  MAXMIN: {ratios['maxmin']:.3f}")
        print(f"  SUM:    {ratios['sum']:.3f}")
    elif args.command == "trends":
        settings = sample_settings(args.settings, rng=args.seed, k_values=[15])
        rows = _sweep_solver(args).sweep(
            settings,
            methods=("greedy", "lpr", "lprg"),
            objectives=(args.objective,),
            n_platforms=args.platforms,
            rng=args.seed,
        )
        print(render_trends(rows, args.objective))
        stats = lpr_failure_stats(rows)
        print(
            f"\nLPR failure stats: mean ratio {stats['mean_ratio']:.3f}, "
            f"zero fraction {stats['zero_fraction']:.3f}"
        )
    elif args.command == "grid":
        print("Table 1 parameter grid:")
        for name, values in PAPER_GRID.items():
            print(f"  {name:<14} {list(values)}")
        print(f"  -> {grid_size():,} settings x 10 platforms each")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
