"""Data generators for the paper's Figures 5, 6 and 7.

Each function runs the required sweep and returns a :class:`FigureData`
with the numeric series (the reproducible artifact) plus enough metadata
for :func:`repro.experiments.report.render_figure` to print a table and
an ASCII plot. Scale knobs (``platforms_per_k``, K lists) default to
laptop-friendly values; benchmarks pass larger ones under
``REPRO_FULL=1``.

Every generator takes ``stream=True`` to run its sweep through the
streaming aggregation subsystem (:mod:`repro.parallel.stream`): series
come from the constant-size accumulators instead of a materialised row
list (``FigureData.rows`` stays empty; pass ``row_sink`` to divert the
raw rows to disk). The in-memory path remains the default and the
bitwise reference; streamed means agree with it to float rounding
(Welford vs ``np.mean``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.aggregate import (
    headline_ratios,
    lpr_failure_stats,
    mean_ratio_by_k,
    runtime_by_k,
)
from repro.experiments.config import (
    DEFAULT_SCENARIO,
    Scenario,
    Setting,
    sample_settings,
)
from repro.experiments.runner import ExperimentRow, run_sweep
from repro.util.rng import ensure_rng


@dataclass
class FigureData:
    """Numeric reproduction of one paper figure.

    Attributes
    ----------
    name, title:
        Identifier (``"figure5"``) and human title.
    series:
        Legend label -> list of (x, y) points.
    logy:
        Render the y axis in log10 (Figure 7).
    notes:
        Extra scalar findings (headline ratios, failure stats, ...).
    rows:
        The raw sweep rows, for downstream analysis.
    """

    name: str
    title: str
    series: dict = field(default_factory=dict)
    logy: bool = False
    notes: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)


def _settings_for_k_sweep(
    k_values: Sequence[int], settings_per_k: int, rng
) -> list[Setting]:
    """Stratified settings: ``settings_per_k`` random grid points per K."""
    out: list[Setting] = []
    for k in k_values:
        out.extend(sample_settings(settings_per_k, rng=rng, k_values=[k]))
    return out


def figure5(
    k_values: Sequence[int] = (5, 15, 25, 35),
    settings_per_k: int = 3,
    platforms_per_setting: int = 3,
    scenario: Scenario = DEFAULT_SCENARIO,
    rng=None,
    jobs: int = 1,
    stream: bool = False,
    row_sink=None,
    shards: int = 1,
    shard_backend: str = "process",
    shard_dir=None,
) -> FigureData:
    """Figure 5: LPRG and G vs the LP bound as K grows (both objectives).

    Paper claims reproduced: LPRG >= G almost everywhere; SUM(LPRG)
    approaches the bound as K grows; MAXMIN(G) degrades with K;
    plus Section 6.1's headline LPRG/G ratios and LPR failure stats.
    """
    rng = ensure_rng(rng)
    settings = _settings_for_k_sweep(k_values, settings_per_k, rng)
    result = run_sweep(
        settings,
        scenario=scenario,
        methods=("greedy", "lpr", "lprg"),
        objectives=("maxmin", "sum"),
        n_platforms=platforms_per_setting,
        rng=rng,
        jobs=jobs,
        stream=stream,
        row_sink=row_sink,
        shards=shards,
        shard_backend=shard_backend,
        shard_dir=shard_dir,
    )
    fig = FigureData(
        name="figure5",
        title="Figure 5: LPRG and G relative to the LP bound vs K",
        rows=[] if stream else result,
    )
    for method in ("lprg", "greedy"):
        for objective in ("maxmin", "sum"):
            label = f"{objective.upper()}({method.upper()})/LP"
            fig.series[label] = (
                result.mean_ratio_by_k(method, objective)
                if stream
                else mean_ratio_by_k(result, method, objective)
            )
    if stream:
        fig.notes["headline_lprg_over_g"] = result.headline_ratios()
        fig.notes["lpr_failure"] = result.lpr_failure_stats()
    else:
        fig.notes["headline_lprg_over_g"] = headline_ratios(result)
        fig.notes["lpr_failure"] = lpr_failure_stats(result)
    return fig


def figure6(
    k_values: Sequence[int] = (15, 20, 25),
    settings_per_k: int = 2,
    platforms_per_setting: int = 2,
    scenario: Scenario = DEFAULT_SCENARIO,
    rng=None,
    jobs: int = 1,
    stream: bool = False,
    row_sink=None,
    shards: int = 1,
    shard_backend: str = "process",
    shard_dir=None,
) -> FigureData:
    """Figure 6: LPRR vs G relative to the LP bound (80-topology study).

    Paper claims reproduced: LPRR lands close to the LP bound on both
    objectives, well above G on MAXMIN.
    """
    rng = ensure_rng(rng)
    settings = _settings_for_k_sweep(k_values, settings_per_k, rng)
    result = run_sweep(
        settings,
        scenario=scenario,
        methods=("greedy", "lprr"),
        objectives=("maxmin", "sum"),
        n_platforms=platforms_per_setting,
        rng=rng,
        jobs=jobs,
        stream=stream,
        row_sink=row_sink,
        shards=shards,
        shard_backend=shard_backend,
        shard_dir=shard_dir,
    )
    fig = FigureData(
        name="figure6",
        title="Figure 6: LPRR and G relative to the LP bound vs K",
        rows=[] if stream else result,
    )
    for method in ("lprr", "greedy"):
        for objective in ("maxmin", "sum"):
            label = f"{objective.upper()}({method.upper()})/LP"
            fig.series[label] = (
                result.mean_ratio_by_k(method, objective)
                if stream
                else mean_ratio_by_k(result, method, objective)
            )
    fig.notes["n_topologies"] = len(settings) * platforms_per_setting
    return fig


def figure7(
    k_values: Sequence[int] = (10, 15, 20, 25),
    settings_per_k: int = 1,
    platforms_per_setting: int = 2,
    scenario: Scenario = DEFAULT_SCENARIO,
    include_lprr: bool = True,
    rng=None,
    jobs: int = 1,
    stream: bool = False,
    row_sink=None,
    shards: int = 1,
    shard_backend: str = "process",
    shard_dir=None,
) -> FigureData:
    """Figure 7: heuristic running time vs K (log scale).

    Paper claims reproduced: G is orders of magnitude faster than the
    LP-based heuristics; LP/LPR/LPRG cluster together; LPRR is slower by
    a factor growing like K^2 (it solves ~K^2 LPs).
    """
    rng = ensure_rng(rng)
    settings = _settings_for_k_sweep(k_values, settings_per_k, rng)
    methods = ("greedy", "lpr", "lprg") + (("lprr",) if include_lprr else ())
    result = run_sweep(
        settings,
        scenario=scenario,
        methods=methods,
        objectives=("maxmin",),
        n_platforms=platforms_per_setting,
        rng=rng,
        jobs=jobs,
        stream=stream,
        row_sink=row_sink,
        shards=shards,
        shard_backend=shard_backend,
        shard_dir=shard_dir,
    )

    def _runtime_series(method):
        if stream:
            return result.runtime_by_k(method)
        return runtime_by_k(result, method)

    fig = FigureData(
        name="figure7",
        title="Figure 7: running time (s) of the heuristics vs K (log y)",
        logy=True,
        rows=[] if stream else result,
    )
    for method in methods:
        fig.series[method.upper()] = _runtime_series(method)
    if include_lprr:
        lprr = dict(_runtime_series("lprr"))
        lprg = dict(_runtime_series("lprg"))
        fig.notes["lprr_over_lprg"] = {
            k: (lprr[k] / lprg[k] if lprg.get(k) else float("nan")) for k in lprr
        }
    return fig
