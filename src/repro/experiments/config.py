"""The Table-1 parameter grid and experiment scenario configuration.

Table 1 of the paper:

========================  =======================================
parameter                 values
========================  =======================================
K                         5, 15, ..., 95
connectivity              0.1, 0.2, ..., 0.8
heterogeneity             0.2, 0.4, 0.6, 0.8
mean g                    50, 250, 350, 450
mean bw                   10, 20, ..., 90
mean maxcon               5, 15, ..., 95
========================  =======================================

with 10 random platforms per setting (the paper reports 269,835 platform
configurations in total). The full factorial grid is defined here
exactly; benchmark-scale runs draw a stratified subsample.

The :class:`Scenario` records the symmetry-breaking choices discussed in
DESIGN.md / EXPERIMENTS.md (interpretation note 7): under the paper's
literal setup (all speeds exactly 100, equal payoffs) every heuristic is
trivially optimal, contradicting Figure 5, so the calibrated default
applies the platform heterogeneity to cluster speeds and draws payoffs
from a narrow uniform band.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.platform.generator import PlatformSpec
from repro.util.rng import ensure_rng

#: Table 1 of the paper, verbatim.
PAPER_GRID: dict[str, tuple[float, ...]] = {
    "K": tuple(range(5, 96, 10)),
    "connectivity": tuple(round(0.1 * i, 1) for i in range(1, 9)),
    "heterogeneity": (0.2, 0.4, 0.6, 0.8),
    "mean_g": (50.0, 250.0, 350.0, 450.0),
    "mean_bw": tuple(float(b) for b in range(10, 91, 10)),
    "mean_maxcon": tuple(float(m) for m in range(5, 96, 10)),
}


@dataclass(frozen=True, slots=True)
class Setting:
    """One point of the parameter grid (one platform configuration)."""

    k: int
    connectivity: float
    heterogeneity: float
    mean_g: float
    mean_bw: float
    mean_maxcon: float

    def as_dict(self) -> dict:
        return {
            "K": self.k,
            "connectivity": self.connectivity,
            "heterogeneity": self.heterogeneity,
            "mean_g": self.mean_g,
            "mean_bw": self.mean_bw,
            "mean_maxcon": self.mean_maxcon,
        }


@dataclass(frozen=True, slots=True)
class Scenario:
    """Symmetry-breaking and scale choices for a sweep.

    Attributes
    ----------
    speed:
        Nominal cluster speed (the paper's 100).
    apply_speed_heterogeneity:
        Re-use the platform ``heterogeneity`` for cluster speeds.
    payoff_low, payoff_high:
        Payoffs are drawn uniformly from this band (equal payoffs when
        the band is degenerate).
    platforms_per_setting:
        Random platforms per grid point (the paper used 10).
    """

    speed: float = 100.0
    apply_speed_heterogeneity: bool = True
    payoff_low: float = 0.8
    payoff_high: float = 1.2
    platforms_per_setting: int = 10

    def payoffs(self, k: int, rng) -> np.ndarray:
        """Draw one payoff vector for ``k`` applications."""
        rng = ensure_rng(rng)
        if self.payoff_high == self.payoff_low:
            return np.full(k, self.payoff_low)
        return rng.uniform(self.payoff_low, self.payoff_high, size=k)


#: the calibrated default scenario (see EXPERIMENTS.md)
DEFAULT_SCENARIO = Scenario()

#: the paper-literal scenario, kept for the triviality demonstration
LITERAL_SCENARIO = Scenario(
    apply_speed_heterogeneity=False, payoff_low=1.0, payoff_high=1.0
)


def iter_grid(grid: "dict[str, Sequence[float]] | None" = None) -> Iterator[Setting]:
    """Iterate the full factorial grid (115,200 settings for Table 1)."""
    g = PAPER_GRID if grid is None else grid
    for k, conn, het, mg, mbw, mmc in itertools.product(
        g["K"], g["connectivity"], g["heterogeneity"], g["mean_g"], g["mean_bw"], g["mean_maxcon"]
    ):
        yield Setting(int(k), float(conn), float(het), float(mg), float(mbw), float(mmc))


def grid_size(grid: "dict[str, Sequence[float]] | None" = None) -> int:
    """Number of settings in the factorial grid."""
    g = PAPER_GRID if grid is None else grid
    out = 1
    for values in g.values():
        out *= len(values)
    return out


def sample_settings(
    n: int,
    rng=None,
    k_values: "Sequence[int] | None" = None,
    grid: "dict[str, Sequence[float]] | None" = None,
) -> list[Setting]:
    """Stratified subsample of the grid: K values round-robin, the other
    parameters drawn independently and uniformly from their Table-1 lists.

    Sampling parameters independently (rather than enumerating and
    subsampling the cross product) keeps marginal distributions exact at
    any sample size.
    """
    rng = ensure_rng(rng)
    g = PAPER_GRID if grid is None else grid
    ks = list(k_values) if k_values is not None else list(g["K"])
    out = []
    for i in range(n):
        out.append(
            Setting(
                k=int(ks[i % len(ks)]),
                connectivity=float(rng.choice(g["connectivity"])),
                heterogeneity=float(rng.choice(g["heterogeneity"])),
                mean_g=float(rng.choice(g["mean_g"])),
                mean_bw=float(rng.choice(g["mean_bw"])),
                mean_maxcon=float(rng.choice(g["mean_maxcon"])),
            )
        )
    return out


def spec_for(setting: Setting, scenario: Scenario = DEFAULT_SCENARIO) -> PlatformSpec:
    """Translate a grid point + scenario into a generator spec."""
    return PlatformSpec(
        n_clusters=setting.k,
        connectivity=setting.connectivity,
        heterogeneity=setting.heterogeneity,
        mean_g=setting.mean_g,
        mean_bw=setting.mean_bw,
        mean_max_connect=setting.mean_maxcon,
        speed=scenario.speed,
        speed_heterogeneity=(
            setting.heterogeneity if scenario.apply_speed_heterogeneity else 0.0
        ),
    )


def payoffs_for(setting: Setting, scenario: Scenario, rng) -> np.ndarray:
    """Payoff vector for one platform drawn under ``scenario``."""
    return scenario.payoffs(setting.k, rng)
