"""Saving and loading experiment rows (JSON lines and CSV).

Paper-scale sweeps take hours; persisting rows lets the aggregation and
figure modules re-run instantly over stored results, and lets external
tools (pandas, R) consume them. JSON-lines is the lossless format; CSV
is the interoperable one.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.experiments.config import Setting
from repro.experiments.runner import ExperimentRow

_FIELDS = [
    "K", "connectivity", "heterogeneity", "mean_g", "mean_bw", "mean_maxcon",
    "replicate", "objective", "method", "value", "lp_value", "runtime",
    "n_lp_solves",
]


def row_to_dict(row: ExperimentRow) -> dict:
    """Flatten one row into a JSON/CSV-compatible dict."""
    out = row.setting.as_dict()
    out.update(
        replicate=row.replicate,
        objective=row.objective,
        method=row.method,
        value=row.value,
        lp_value=row.lp_value,
        runtime=row.runtime,
        n_lp_solves=row.n_lp_solves,
    )
    return out


def row_from_dict(data: dict) -> ExperimentRow:
    """Inverse of :func:`row_to_dict`."""
    setting = Setting(
        k=int(data["K"]),
        connectivity=float(data["connectivity"]),
        heterogeneity=float(data["heterogeneity"]),
        mean_g=float(data["mean_g"]),
        mean_bw=float(data["mean_bw"]),
        mean_maxcon=float(data["mean_maxcon"]),
    )
    return ExperimentRow(
        setting=setting,
        replicate=int(data["replicate"]),
        objective=str(data["objective"]),
        method=str(data["method"]),
        value=float(data["value"]),
        lp_value=float(data["lp_value"]),
        runtime=float(data["runtime"]),
        n_lp_solves=int(data["n_lp_solves"]),
    )


def save_rows_jsonl(rows: Iterable[ExperimentRow], path: "str | Path") -> int:
    """Write rows as JSON lines; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row_to_dict(row), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_rows_jsonl(path: "str | Path") -> list[ExperimentRow]:
    """Read rows previously written by :func:`save_rows_jsonl`."""
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(row_from_dict(json.loads(line)))
    return out


def save_rows_csv(rows: Sequence[ExperimentRow], path: "str | Path") -> int:
    """Write rows as CSV with a fixed header; returns the number written."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for row in rows:
            writer.writerow(row_to_dict(row))
    return len(rows)


def load_rows_csv(path: "str | Path") -> list[ExperimentRow]:
    """Read rows previously written by :func:`save_rows_csv`."""
    out = []
    with Path(path).open() as fh:
        for record in csv.DictReader(fh):
            out.append(row_from_dict(record))
    return out
