"""Monotonic timing helpers — the single timing utility of the package.

Everything here is ``time.perf_counter``-based: these values measure
elapsed durations only and must never leak into result state dicts or
seeds (see the determinism-invisibility contract in
``docs/architecture.md``).  ``repro.util.timing`` re-exports these names
as a legacy shim.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating monotonic timer.

    Example
    -------
    >>> t = Timer()
    >>> with t.measure():
    ...     sum(range(1000))
    499500
    >>> t.total >= 0.0
    True
    """

    total: float = 0.0
    count: int = 0
    laps: list = field(default_factory=list)

    @contextmanager
    def measure(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            lap = time.perf_counter() - start
            self.total += lap
            self.count += 1
            self.laps.append(lap)

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 before any lap)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self.laps.clear()


@contextmanager
def timed(sink: "dict[str, float]", key: str):
    """Record the duration of a block into ``sink[key]`` (accumulating)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink[key] = sink.get(key, 0.0) + (time.perf_counter() - start)
