"""Mergeable metrics: counters, gauges, histograms, and a registry.

The metric primitives are built on the same exact-arithmetic machinery
that makes :class:`~repro.parallel.stream.SweepAccumulator` merges
bitwise-deterministic: counters are Python integers, histogram bins are
the fixed-bin :class:`~repro.parallel.stream.QuantileAccumulator` and
histogram sums are integer-mantissa
:class:`~repro.parallel.stream._ExactSum` totals.  ``merge`` is
therefore **exactly** associative and commutative — worker- and
shard-level registries (snapshotted into heartbeat sidecars, carried
through checkpoint/resume) merge into campaign totals in any order and
produce bit-identical state.

:func:`render_prometheus` serialises a registry in the Prometheus text
exposition format (``# HELP`` / ``# TYPE`` / samples, cumulative ``le``
buckets) for the service's ``GET /metrics`` endpoint.

Metric *values* may be timings (request latency, re-optimization
seconds): that is fine precisely because registries live outside result
state dicts — see the determinism-invisibility contract in
``docs/architecture.md``.
"""

from __future__ import annotations

import math
import threading

from repro.parallel.stream import QuantileAccumulator, _ExactSum
from repro.util.errors import SolverError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
]

STATE_VERSION = 1


def _label_key(labels: "dict | None") -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


class Counter:
    """Monotonic integer counter — thread-safe, exactly mergeable."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = int(value)
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise SolverError(f"counters only go up, got inc({n})")
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def merge(self, other: "Counter") -> None:
        self.inc(other.value)

    def state(self) -> int:
        return self.value

    @classmethod
    def from_state(cls, state) -> "Counter":
        return cls(int(state))


class Gauge:
    """Last-written float value — thread-safe; merge keeps the max.

    A gauge is instantaneous, so there is no canonical merge; taking the
    max is deterministic and order-independent, which is what the
    shard-status merge needs (e.g. "deepest resident pool across
    shards").
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: float = 0.0):
        self._value = float(value)
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below it (atomic)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def merge(self, other: "Gauge") -> None:
        other_value = other.value
        with self._lock:
            self._value = max(self._value, other_value)

    def state(self) -> float:
        return self.value

    @classmethod
    def from_state(cls, state) -> "Gauge":
        return cls(float(state))


class Histogram:
    """Fixed-bin histogram: exact counts + exact sum, thread-safe.

    Observations land in :class:`QuantileAccumulator` bins (pure
    arithmetic, no data-dependent boundaries) and the running total is
    an :class:`_ExactSum`, so merging per-worker histograms in any order
    reproduces the sequential fold bit for bit.  Non-finite observations
    are tallied by the sketch (NaN/overflow counters) but excluded from
    the sum.
    """

    __slots__ = ("sketch", "_sum", "_lock")

    def __init__(self, lo: float = 0.0, hi: float = 2.0, n_bins: int = 32):
        self.sketch = QuantileAccumulator(lo=lo, hi=hi, n_bins=n_bins)
        self._sum = _ExactSum()
        self._lock = threading.Lock()

    def observe(self, x: float) -> None:
        x = float(x)
        with self._lock:
            self.sketch.update(x)
            if math.isfinite(x):
                self._sum.add(x)

    @property
    def count(self) -> int:
        with self._lock:
            return self.sketch.count + self.sketch.n_nan

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum.num / (1 << self._sum.scale)

    def quantile(self, q: float) -> float:
        with self._lock:
            return self.sketch.quantile(q)

    def merge(self, other: "Histogram") -> None:
        with other._lock:
            other_sketch = QuantileAccumulator.from_state(other.sketch.state_dict())
            other_sum = _ExactSum.from_state(other._sum.state())
        with self._lock:
            self.sketch.merge(other_sketch)
            self._sum.merge(other_sum)

    def state_dict(self) -> dict:
        with self._lock:
            return {
                "sketch": self.sketch.state_dict(),
                "sum": self._sum.state(),
            }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        sketch = QuantileAccumulator.from_state(state["sketch"])
        out = cls(lo=sketch.lo, hi=sketch.hi, n_bins=sketch.n_bins)
        out.sketch = sketch
        out._sum = _ExactSum.from_state(state["sum"])
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metric families, each a set of label-keyed children.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumented
    code calls them on the hot path and gets the same child back for the
    same ``(name, labels)``.  Registries serialise (``state_dict``) into
    heartbeat sidecars and merge exactly (``merge``), mirroring the
    ``SweepAccumulator`` contract.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> {"kind", "help", "children": {label_key: metric}}
        self._families: dict = {}

    # -- get-or-create accessors ---------------------------------------
    def _family(self, name: str, kind: str, help: str) -> dict:
        family = self._families.get(name)
        if family is None:
            family = {"kind": kind, "help": help, "children": {}}
            self._families[name] = family
        elif family["kind"] != kind:
            raise SolverError(
                f"metric {name!r} already registered as {family['kind']}, "
                f"not {kind}"
            )
        elif help and not family["help"]:
            family["help"] = help
        return family

    def counter(self, name: str, help: str = "", labels: "dict | None" = None) -> Counter:
        key = _label_key(labels)
        with self._lock:
            children = self._family(name, "counter", help)["children"]
            child = children.get(key)
            if child is None:
                child = children[key] = Counter()
            return child

    def gauge(self, name: str, help: str = "", labels: "dict | None" = None) -> Gauge:
        key = _label_key(labels)
        with self._lock:
            children = self._family(name, "gauge", help)["children"]
            child = children.get(key)
            if child is None:
                child = children[key] = Gauge()
            return child

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: "dict | None" = None,
        lo: float = 0.0,
        hi: float = 2.0,
        n_bins: int = 32,
    ) -> Histogram:
        key = _label_key(labels)
        with self._lock:
            children = self._family(name, "histogram", help)["children"]
            child = children.get(key)
            if child is None:
                child = children[key] = Histogram(lo=lo, hi=hi, n_bins=n_bins)
            return child

    # -- merge / serialisation -----------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (exact, order-independent)."""
        with other._lock:
            other_families = {
                name: {
                    "kind": fam["kind"],
                    "help": fam["help"],
                    "children": dict(fam["children"]),
                }
                for name, fam in other._families.items()
            }
        for name, fam in other_families.items():
            with self._lock:
                family = self._family(name, fam["kind"], fam["help"])
                children = family["children"]
                for key, metric in fam["children"].items():
                    mine = children.get(key)
                    if mine is None:
                        kind = fam["kind"]
                        if kind == "histogram":
                            mine = children[key] = Histogram(
                                lo=metric.sketch.lo,
                                hi=metric.sketch.hi,
                                n_bins=metric.sketch.n_bins,
                            )
                        else:
                            mine = children[key] = _KINDS[kind]()
                    mine.merge(metric)

    def state_dict(self) -> dict:
        """JSON-compatible snapshot (heartbeats, checkpoints)."""
        with self._lock:
            families = {}
            for name, fam in sorted(self._families.items()):
                children = [
                    {
                        "labels": [list(pair) for pair in key],
                        "state": (
                            metric.state_dict()
                            if fam["kind"] == "histogram"
                            else metric.state()
                        ),
                    }
                    for key, metric in sorted(fam["children"].items())
                ]
                families[name] = {
                    "kind": fam["kind"],
                    "help": fam["help"],
                    "children": children,
                }
            return {"version": STATE_VERSION, "families": families}

    @classmethod
    def from_state(cls, state: dict) -> "MetricsRegistry":
        if state.get("version") != STATE_VERSION:
            raise SolverError(
                f"unsupported metrics state version: {state.get('version')!r}"
            )
        out = cls()
        for name, fam in state["families"].items():
            kind = fam["kind"]
            if kind not in _KINDS:
                raise SolverError(f"unknown metric kind {kind!r} for {name!r}")
            family = out._family(name, kind, fam.get("help", ""))
            for child in fam["children"]:
                key = tuple(tuple(pair) for pair in child["labels"])
                if kind == "histogram":
                    metric = Histogram.from_state(child["state"])
                else:
                    metric = _KINDS[kind].from_state(child["state"])
                family["children"][key] = metric
        return out

    # -- introspection --------------------------------------------------
    def families(self) -> dict:
        """``{name: {"kind", "help", "children": {label_key: metric}}}``
        snapshot — children dicts are copies, metrics are live objects."""
        with self._lock:
            return {
                name: {
                    "kind": fam["kind"],
                    "help": fam["help"],
                    "children": dict(fam["children"]),
                }
                for name, fam in self._families.items()
            }


def _format_value(x: float) -> str:
    if x != x:
        return "NaN"
    if x == math.inf:
        return "+Inf"
    if x == -math.inf:
        return "-Inf"
    if isinstance(x, int) or float(x).is_integer():
        return str(int(x))
    return repr(float(x))


def _labels_text(key: tuple, extra: "tuple | None" = None) -> str:
    pairs = list(key) + list(extra or ())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Serialise a registry in the Prometheus text exposition format.

    Counters and gauges emit one sample per label set; histograms emit
    cumulative ``_bucket{le=...}`` samples over their fixed bins plus
    ``_sum`` and ``_count``.  Families and label sets are emitted in
    sorted order, so output is deterministic.
    """
    lines: list[str] = []
    for name, fam in sorted(registry.families().items()):
        kind = fam["kind"]
        if fam["help"]:
            lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for key, metric in sorted(fam["children"].items()):
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_labels_text(key)} {_format_value(metric.value)}"
                )
                continue
            sketch = metric.sketch
            width = (sketch.hi - sketch.lo) / sketch.n_bins
            cumulative = sketch.n_under
            for i, c in enumerate(sketch.counts):
                cumulative += c
                edge = sketch.lo + (i + 1) * width
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(key, (('le', _format_value(edge)),))}"
                    f" {cumulative}"
                )
            total = cumulative + sketch.n_over + sketch.n_nan
            lines.append(
                f"{name}_bucket{_labels_text(key, (('le', '+Inf'),))} {total}"
            )
            lines.append(f"{name}_sum{_labels_text(key)} {_format_value(metric.sum)}")
            lines.append(f"{name}_count{_labels_text(key)} {total}")
    return "\n".join(lines) + "\n"
