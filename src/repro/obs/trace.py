"""Structured tracing: span trees with a zero-overhead no-op path.

A :class:`Tracer` records a tree of named :class:`Span`\\ s — ``solve →
lp_build → session_resolve → simplex`` for a facade solve, ``campaign →
chunk → task`` for a sweep, ``online → event`` for the dynamic
scheduler.  Spans carry monotonic-clock durations plus free-form
attributes (pivot counts, cache hits, task ids); :class:`JsonlTraceSink`
exports finished trees as JSON lines.

The tracer is *ambient*: instrumented code asks :func:`current_tracer`
for the active tracer instead of threading one through every call.  The
pattern mirrors ``repro.lp.builder.use_build_cache`` — a ``ContextVar``
with outer-wins nesting, so a CLI-level ``trace`` wrapper sees spans
from every layer while a solver-owned tracer defers to it.

When no tracer is installed, :func:`current_tracer` returns
:data:`NOOP_TRACER`, whose ``span()`` hands back one shared, attribute-
free null span.  Hot paths additionally guard on ``tracer.enabled`` so
the disabled cost is one ``ContextVar`` read and one attribute check —
benchmarked under 1% on a warm LP re-solve chain by
``benchmarks/bench_telemetry.py``.

Durations never enter result state dicts: tracing is observability only
(see the determinism-invisibility contract in ``docs/architecture.md``).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "JsonlTraceSink",
    "NOOP_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
]


class Span:
    """One timed node in a trace tree.

    Created by :meth:`Tracer.span` and used as a context manager; entering
    attaches it to the active tree (parent = innermost open span on this
    thread) and starts the clock, exiting stops it.  ``set(**attrs)``
    attaches attributes at any point while the span is alive.
    """

    __slots__ = ("name", "attrs", "children", "duration", "_tracer", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.name = str(name)
        self.attrs = dict(attrs)
        self.children: list[Span] = []
        self.duration: "float | None" = None
        self._tracer = tracer
        self._start: "float | None" = None

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict:
        """JSON-compatible representation of the span subtree."""
        out: dict = {"name": self.name, "duration_seconds": self.duration}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, duration={self.duration}, attrs={self.attrs})"


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees.  ``enabled`` is always ``True`` here; the
    disabled path is :class:`NullTracer`, not a flag on this class, so the
    hot-path guard stays a plain attribute read.

    Thread-safe: each thread nests spans on its own stack (concurrent
    service requests or engine workers each build their own subtree), and
    completed roots append to one shared list.
    """

    enabled = True

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span bookkeeping (called by Span.__enter__/__exit__) ----------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- public surface ------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a new span; use as ``with tracer.span("solve", k=v) as sp:``."""
        return Span(self, name, attrs)

    def to_dicts(self) -> list[dict]:
        """JSON-compatible list of completed root span trees."""
        with self._lock:
            return [root.to_dict() for root in self._roots]

    def drain(self) -> list[dict]:
        """Like :meth:`to_dicts` but clears the collected roots."""
        with self._lock:
            roots, self._roots = self._roots, []
        return [root.to_dict() for root in roots]


class NullTracer:
    """The disabled tracer: every ``span()`` is the same null span."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def to_dicts(self) -> list[dict]:
        return []

    def drain(self) -> list[dict]:
        return []


#: Shared singleton returned by :func:`current_tracer` when no tracer is
#: installed — never collects anything.
NOOP_TRACER = NullTracer()

_ACTIVE_TRACER: "ContextVar[Tracer | None]" = ContextVar(
    "repro_tracer", default=None
)


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer for this context (:data:`NOOP_TRACER` if none)."""
    tracer = _ACTIVE_TRACER.get()
    return tracer if tracer is not None else NOOP_TRACER


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the block.

    Outer-wins nesting, mirroring ``use_build_cache``: if a tracer is
    already active (a CLI ``trace`` wrapper, a service job tracer), the
    inner request is a no-op and the existing tracer keeps collecting —
    so the outermost observer sees the whole tree.
    """
    current = _ACTIVE_TRACER.get()
    if current is not None:
        yield current
        return
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


class JsonlTraceSink:
    """Append span trees to a JSONL file, one root span per line.

    Writes are line-buffered appends guarded by a lock, so concurrent
    flushes from service worker threads interleave at line granularity.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()

    def write_many(self, span_dicts: "list[dict]") -> int:
        """Append each span dict as one JSON line; returns lines written."""
        if not span_dicts:
            return 0
        payload = "".join(
            json.dumps(d, sort_keys=True, default=str) + "\n" for d in span_dicts
        )
        with self._lock, open(self.path, "a", encoding="utf-8") as fh:
            fh.write(payload)
        return len(span_dicts)

    def write(self, tracer: "Tracer") -> int:
        """Drain ``tracer`` into the file (convenience wrapper)."""
        return self.write_many(tracer.drain())
