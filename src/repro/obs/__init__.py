"""Unified telemetry: structured tracing, mergeable metrics, logging.

``repro.obs`` is the observability subsystem — the eighth entry in the
``docs/architecture.md`` subsystem map:

* :mod:`repro.obs.trace` — ambient span-tree tracing with a
  zero-overhead no-op path and JSONL export;
* :mod:`repro.obs.metrics` — counters/gauges/histograms on the exact
  accumulator algebra, so per-worker registries merge bitwise; plus the
  Prometheus text renderer behind the service's ``GET /metrics``;
* :mod:`repro.obs.logging` — namespaced library loggers under one
  ``NullHandler``-guarded ``repro`` root;
* :mod:`repro.obs.timing` — the package's single monotonic timing
  utility (``repro.util.timing`` is a shim);
* :mod:`repro.obs.options` — :class:`TelemetryOptions`, the
  ``SolverConfig(telemetry=...)`` knob record.

Everything here is observability *only*: span durations, metric values
and log records never feed back into seeds, accumulator state dicts or
solver results (the determinism-invisibility contract, Hypothesis-pinned
in ``tests/test_obs_invisibility.py``).
"""

from repro.obs.logging import get_logger, package_logger  # noqa: F401 (side effect: NullHandler)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.options import TelemetryOptions
from repro.obs.timing import Timer, timed
from repro.obs.trace import (
    NOOP_TRACER,
    JsonlTraceSink,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NullTracer",
    "Span",
    "TelemetryOptions",
    "Timer",
    "Tracer",
    "current_tracer",
    "get_logger",
    "render_prometheus",
    "timed",
    "use_tracer",
]
