"""Library-logging hygiene for the ``repro`` package.

Importing this module (it is imported by :mod:`repro` itself) attaches a
:class:`logging.NullHandler` to the *package* root logger ``repro`` — and
only there.  The library never configures the *process* root logger, never
installs formatters or levels, and never calls ``basicConfig``: an
application that wants ``repro`` log output opts in with its own handler
on ``logging.getLogger("repro")`` (or any ancestor), exactly as the
stdlib logging HOWTO prescribes for libraries.

Every ``repro.*`` module gets its logger with :func:`get_logger`, which
simply namespaces the name under ``repro.`` so the single NullHandler
covers the whole tree.
"""

from __future__ import annotations

import logging

#: The package root logger.  One NullHandler here silences the
#: "No handlers could be found" complaint for the whole ``repro.*`` tree
#: without touching the process root logger.
package_logger = logging.getLogger("repro")

if not any(isinstance(h, logging.NullHandler) for h in package_logger.handlers):
    package_logger.addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the ``repro`` package root.

    ``get_logger(__name__)`` from any ``repro.*`` module returns the
    module's own logger; a bare name like ``"service"`` is prefixed so it
    still lives under the package root (``repro.service``).
    """
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
