"""Facade knobs for telemetry.

:class:`TelemetryOptions` rides on ``SolverConfig(telemetry=...)``
exactly like :class:`repro.dynamic.options.DynamicOptions` rides on
``SolverConfig(dynamic=...)``: a frozen, validated, dict-round-trippable
record — no ``**kwargs`` funnels.

Telemetry is observability only: whatever these knobs say, result
values, accumulator state dicts and seeds are bit-identical (the
determinism-invisibility contract, pinned by
``tests/test_obs_invisibility.py`` and gated by
``benchmarks/bench_telemetry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import SolverError


@dataclass(frozen=True)
class TelemetryOptions:
    """Telemetry knobs of one :class:`repro.api.solver.Solver`.

    Parameters
    ----------
    trace:
        Collect a structured span tree (``solve → lp_build →
        session_resolve → simplex``, ``campaign → chunk → task``,
        ``online → event``) on a solver-owned
        :class:`~repro.obs.trace.Tracer`, exposed as ``solver.tracer``.
        Off by default: the disabled path is a no-op tracer whose
        overhead is gated below 1%.
    trace_path:
        When set (requires ``trace=True``), finished span trees are
        appended to this JSONL file after every top-level operation.
    metrics:
        Maintain a solver-owned
        :class:`~repro.obs.metrics.MetricsRegistry` (exposed as
        ``solver.metrics``) with per-operation counters and latency
        histograms.
    """

    trace: bool = False
    trace_path: "str | None" = None
    metrics: bool = False

    def __post_init__(self):
        if not isinstance(self.trace, bool):
            raise SolverError(f"trace must be a bool, got {self.trace!r}")
        if not isinstance(self.metrics, bool):
            raise SolverError(f"metrics must be a bool, got {self.metrics!r}")
        if self.trace_path is not None and not isinstance(self.trace_path, str):
            raise SolverError(
                f"trace_path must be a string path or None, got "
                f"{self.trace_path!r}"
            )
        if self.trace_path is not None and not self.trace:
            raise SolverError("trace_path requires trace=True")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trace": self.trace,
            "trace_path": self.trace_path,
            "metrics": self.metrics,
        }

    _FIELDS = ("trace", "trace_path", "metrics")

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryOptions":
        if not isinstance(data, dict):
            raise SolverError(
                f"telemetry options must be an object, got {data!r}"
            )
        unknown = sorted(set(data) - set(cls._FIELDS))
        if unknown:
            raise SolverError(
                f"unknown telemetry option(s): {', '.join(unknown)}"
            )
        return cls(**data)
