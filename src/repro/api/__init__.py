"""Public solver API: configured, stateful, scenario-aware.

The facade in three moves::

    from repro.api import Solver, SolverConfig, build_scenario

    solver = Solver(SolverConfig(method="lprg", objective="maxmin"))
    report = solver.solve(build_scenario("grid5000"))
    reports = solver.solve_many(problems, rng=0)     # reuses warm state
    rows = solver.sweep(settings, scenario="calibrated")

:class:`SolverConfig` is the typed replacement for the historical
string-and-``**kwargs`` funnel; :class:`Solver` owns cross-call warm
state (LP templates, dense matrices, variable indices, the campaign
engine) so repeated solves of related instances stop cold-starting; the
scenario registry names platform/application scenarios the same way the
heuristic registry names methods. The legacy entry points —
``repro.solve``, ``repro.solve_many``, ``repro.experiments.run_sweep``
— remain as thin shims over this package with bitwise-identical output.
"""

from repro.api.config import (
    BranchAndBoundOptions,
    GreedyOptions,
    IteratedLPRGOptions,
    LPRROptions,
    MILPOptions,
    MethodOptions,
    SolverConfig,
    config_fingerprint,
    options_class_for,
)
from repro.api.report import SolveReport
from repro.obs.options import TelemetryOptions
from repro.api.scenarios import (
    ScenarioInfo,
    ScenarioRegistry,
    available_scenarios,
    build_scenario,
    register_scenario,
    scenario_info,
    scenario_registry,
)
from repro.api.solver import Solver, SolverState
from repro.parallel.engine import QuarantineError, RetryPolicy, TaskFailure
from repro.parallel.stream import SweepAccumulator

__all__ = [
    # configuration
    "SolverConfig",
    "MethodOptions",
    "GreedyOptions",
    "LPRROptions",
    "IteratedLPRGOptions",
    "MILPOptions",
    "BranchAndBoundOptions",
    "options_class_for",
    "config_fingerprint",
    "TelemetryOptions",
    "RetryPolicy",
    "TaskFailure",
    "QuarantineError",
    # solving
    "Solver",
    "SolverState",
    "SolveReport",
    "SweepAccumulator",
    # scenarios
    "ScenarioRegistry",
    "ScenarioInfo",
    "scenario_registry",
    "register_scenario",
    "available_scenarios",
    "scenario_info",
    "build_scenario",
]
