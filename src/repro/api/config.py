"""Typed, validated solver configuration.

:class:`SolverConfig` replaces the historical string-and-``**kwargs``
funnel of ``solve(problem, method="lprg", **kwargs)``: every knob the
library grew — the PR-1 campaign options (``jobs``, ``chunk_size``,
``checkpoint``/``resume``), the PR-2 LP re-solve options (``warm_start``,
``lp_backend``), and the per-method algorithm options — lives in one
frozen dataclass that validates on construction, round-trips through
``to_dict``/``from_dict``, and rejects unknown option names with a
did-you-mean suggestion instead of silently ignoring them.

Per-method options are *typed sub-configs* (:class:`GreedyOptions`,
:class:`LPRROptions`, ...): the config carries exactly one, matching its
``method``, and :meth:`SolverConfig.for_method` builds the right one
from flat keyword arguments — which is also how the legacy ``solve``
shim translates its ``**kwargs``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.objectives import get_objective
from repro.heuristics.base import get_heuristic, unknown_option_error
from repro.parallel.engine import RetryPolicy
from repro.util.errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distrib.supervise import SupervisionOptions
    from repro.dynamic.options import DynamicOptions
    from repro.obs.options import TelemetryOptions

#: backends accepted by the session-consuming heuristics (mirrors
#: :func:`repro.lp.session.resolve_lp_backend`)
LP_BACKENDS = ("auto", "session", "scipy")

#: simplex engines an LP session can run on (mirrors
#: :data:`repro.lp.session.LP_ENGINES`)
LP_ENGINES = ("revised", "tableau")

#: built-in shard executor backends (mirrors
#: :data:`repro.distrib.SHARD_BACKENDS`; custom registered backends are
#: also accepted — validation consults the live registry)
SHARD_BACKENDS = ("inline", "process", "subprocess")


@dataclass(frozen=True)
class MethodOptions:
    """Base (and empty) per-method option set.

    Methods without algorithm-specific knobs (``lpr``, ``lprg``, ``lp``)
    use this class directly; the others subclass it with typed fields.
    ``warm_start`` and ``lp_backend`` are *not* here — they are
    config-level LP knobs shared by every session-consuming method.
    """

    def to_kwargs(self) -> dict:
        """The options as keyword arguments for ``Heuristic.run``."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_dict(self) -> dict:
        return self.to_kwargs()


@dataclass(frozen=True)
class GreedyOptions(MethodOptions):
    """Options of the greedy heuristic G."""

    #: step-3 selection rule: the paper's prose ("intuition") or its
    #: garbled printed formula ("literal", the E14 ablation)
    selection: str = "intuition"

    def __post_init__(self):
        if self.selection not in ("intuition", "literal"):
            raise SolverError(
                f"selection must be 'intuition' or 'literal', "
                f"got {self.selection!r}"
            )


@dataclass(frozen=True)
class LPRROptions(MethodOptions):
    """Options of LPRR randomized rounding (both variants)."""

    #: fix every currently-integral beta after each LP solve instead of
    #: one route per solve (slashes the LP count, benchmark E7)
    eager_integer_fixing: bool = False


@dataclass(frozen=True)
class IteratedLPRGOptions(MethodOptions):
    """Options of the iterated-LPRG extension heuristic."""

    #: residual re-solve rounds before the greedy mop-up
    max_iters: int = 4


@dataclass(frozen=True)
class MILPOptions(MethodOptions):
    """Options of the exact HiGHS MILP solver."""

    time_limit: "float | None" = None


@dataclass(frozen=True)
class BranchAndBoundOptions(MethodOptions):
    """Options of the bundled branch-and-bound exact solver."""

    max_nodes: int = 10_000


#: canonical method name -> its typed option class
OPTION_CLASSES: dict[str, type] = {
    "greedy": GreedyOptions,
    "lprr": LPRROptions,
    "lprr-eq": LPRROptions,
    "lprg-it": IteratedLPRGOptions,
    "milp": MILPOptions,
    "bnb": BranchAndBoundOptions,
}


def options_class_for(method: str) -> type:
    """The :class:`MethodOptions` subclass for a canonical method name."""
    return OPTION_CLASSES.get(method, MethodOptions)


@dataclass(frozen=True)
class SolverConfig:
    """Everything a :class:`repro.api.Solver` needs, validated up front.

    Parameters
    ----------
    method:
        Any registered algorithm name or alias (canonicalised, so
        ``"g"`` stores as ``"greedy"``). Unknown names raise
        ``ValueError`` exactly like the legacy facade.
    objective:
        ``None`` (default) solves each problem under its own objective;
        ``"maxmin"``/``"sum"`` re-derives every incoming problem under
        the named objective before solving.
    seed:
        Default RNG policy: the seed used when a call does not pass its
        own ``rng``. ``None`` draws fresh entropy per call (the legacy
        default).
    lp_backend, warm_start:
        The PR-2 LP re-solve knobs, applied to every method that
        supports them (LPRR, iterated LPRG, branch-and-bound).
    lp_engine:
        Which simplex engine LP sessions run on: ``"revised"`` (the
        LU-factorized bounded revised simplex, the default — no
        instance-size cliff) or ``"tableau"`` (the legacy dense
        two-phase tableau, kept as an arithmetic reference). Applied to
        every session-consuming method.
    share_bases:
        Opt in to cross-call basis sharing: sessions publish their
        final optimal basis to the solver's LP build cache and later
        sessions on the same instance template seed from it. Off by
        default (a seeded basis makes results depend on batch history);
        requires ``jobs=1`` because worker processes do not share the
        cache, so results would depend on the chunking otherwise.
    jobs, chunk_size:
        The PR-1 process-pool knobs for ``solve_many``/``sweep``
        (results are bitwise-identical for any value).
    checkpoint, resume:
        Incremental sweep checkpointing (``resume`` requires
        ``checkpoint``).
    stream, row_sink:
        Streaming sweep aggregation (see :mod:`repro.parallel.stream`).
        With ``stream=True``, :meth:`repro.api.Solver.sweep` folds rows
        into constant-size accumulators as tasks complete and returns a
        :class:`~repro.parallel.stream.SweepAccumulator` instead of a
        row list — memory O(settings), not O(rows), with aggregate
        tables bitwise-identical for any ``jobs``/chunking/resume
        pattern. ``row_sink`` optionally streams the raw rows to a
        JSONL (default) or ``*.csv`` file; it requires ``stream=True``.
    shards, shard_backend, shard_dir:
        Sharded multi-host campaign orchestration (see
        :mod:`repro.distrib`). ``shards=N > 1`` makes
        :meth:`repro.api.Solver.sweep` partition the campaign into N
        contiguous shard manifests, dispatch them through
        ``shard_backend`` (``inline``/``process``/``subprocess`` or a
        registered custom backend) and merge the per-shard artifacts —
        aggregate tables (and the assembled ``row_sink``) stay
        bitwise-identical to the serial path for any shard count or
        backend. Requires ``stream=True`` (shards aggregate through the
        streaming fold) and replaces ``checkpoint`` (each shard keeps
        its own checkpoint under ``shard_dir``). ``shard_dir`` persists
        the shard artifacts for cross-invocation ``resume``; when
        ``None`` a temporary directory is used. With ``shards > 1``,
        ``jobs`` is how many shards the backend runs concurrently —
        ``1`` (the default) runs shards one at a time, exactly like
        ``jobs=1`` means serial everywhere else; results are identical
        for any value.
    retry:
        A :class:`~repro.parallel.engine.RetryPolicy` switching campaign
        execution (``solve_many``/``sweep``, and every shard of a
        sharded sweep) to supervised mode: transient infrastructure
        failures are retried with exponential backoff, deterministic
        task errors are quarantined into a structured
        :class:`~repro.parallel.engine.QuarantineError` report instead
        of crashing the whole campaign, and an optional per-task
        timeout bounds hung workers. Retries never change results:
        task seeds are stateless functions of the task index, so a
        re-executed task is bitwise the original. ``None`` (default)
        keeps the legacy fail-fast behavior.
    supervision:
        A :class:`~repro.distrib.supervise.SupervisionOptions` driving a
        sharded sweep through the
        :class:`~repro.distrib.supervise.ShardSupervisor`: shard-level
        retry/backoff and crash classification, optional shard
        timeouts, and straggler detection with work stealing
        (re-planning a slow shard's remaining task range into fresh
        manifests mid-campaign). Requires ``shards > 1``. Bitwise
        transparent for the same reason as ``retry``.
    dynamic:
        A :class:`~repro.dynamic.options.DynamicOptions` configuring
        :meth:`repro.api.Solver.run_online` (online re-scheduling over
        an event trace): simulation replay, oracle checking. ``None``
        (default) applies the :class:`DynamicOptions` defaults; the
        knob has no effect on static ``solve``/``sweep`` calls.
    telemetry:
        A :class:`~repro.obs.options.TelemetryOptions` switching on the
        solver-owned span tracer (with optional JSONL export) and
        metrics registry. ``None`` (default) means no telemetry is
        collected by the solver itself — ambient tracers installed by
        ``use_tracer`` (the CLI ``trace`` wrapper, the service job
        tracer) still observe it. Telemetry never changes results: see
        the determinism-invisibility contract in
        ``docs/architecture.md``.
    options:
        The per-method typed sub-config; ``None`` means the method's
        defaults. Must be exactly the class of :func:`options_class_for`.
    """

    method: str = "lprg"
    objective: "str | None" = None
    seed: "int | None" = None
    lp_backend: str = "auto"
    warm_start: bool = True
    lp_engine: str = "revised"
    share_bases: bool = False
    jobs: int = 1
    chunk_size: "int | None" = None
    checkpoint: "str | None" = None
    resume: bool = False
    stream: bool = False
    row_sink: "str | None" = None
    shards: int = 1
    shard_backend: str = "process"
    shard_dir: "str | None" = None
    retry: "RetryPolicy | None" = None
    supervision: "SupervisionOptions | None" = None
    dynamic: "DynamicOptions | None" = None
    telemetry: "TelemetryOptions | None" = None
    options: "MethodOptions | None" = None

    def __post_init__(self):
        heuristic = get_heuristic(self.method)  # ValueError when unknown
        object.__setattr__(self, "method", heuristic.name)
        if self.objective is not None:
            object.__setattr__(
                self, "objective", get_objective(self.objective).name
            )
        if self.lp_backend not in LP_BACKENDS:
            raise SolverError(
                f"lp_backend must be one of {LP_BACKENDS}, "
                f"got {self.lp_backend!r}"
            )
        if self.lp_engine not in LP_ENGINES:
            raise SolverError(
                f"lp_engine must be one of {LP_ENGINES}, "
                f"got {self.lp_engine!r}"
            )
        if self.share_bases and self.jobs > 1:
            raise SolverError(
                "share_bases requires jobs=1: worker processes do not "
                "share the basis cache, so results would depend on the "
                "chunking"
            )
        if self.seed is not None:
            if not isinstance(self.seed, (int, np.integer)):
                raise SolverError(
                    f"seed must be an int or None, got {self.seed!r}"
                )
            object.__setattr__(self, "seed", int(self.seed))
        if self.jobs < 1:
            raise SolverError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SolverError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
        if self.row_sink is not None and not self.stream:
            raise SolverError(
                "row_sink requires stream=True (raw rows are only "
                "diverted to a sink under streaming aggregation)"
            )
        if self.shards < 1:
            raise SolverError(f"shards must be >= 1, got {self.shards}")
        if self.shard_backend not in SHARD_BACKENDS:
            # non-built-in name: consult the live registry (custom
            # backends) — imported lazily so the common case never
            # pulls the distrib package into a plain solve
            from repro.distrib.executor import available_shard_backends

            if self.shard_backend not in available_shard_backends():
                raise SolverError(
                    f"shard_backend must be one of "
                    f"{tuple(available_shard_backends())}, "
                    f"got {self.shard_backend!r}"
                )
        if self.shard_dir is not None and self.shards < 2:
            raise SolverError(
                "shard_dir requires shards > 1 (there is nothing to "
                "shard otherwise)"
            )
        if self.shards > 1:
            if not self.stream:
                raise SolverError(
                    "shards > 1 requires stream=True: sharded campaigns "
                    "aggregate through the streaming fold and return a "
                    "SweepAccumulator"
                )
            if self.chunk_size is not None:
                raise SolverError(
                    "chunk_size has no effect with shards > 1 (each "
                    "shard runs its tasks inline); shard granularity is "
                    "controlled by the shard count itself"
                )
            if self.checkpoint is not None:
                raise SolverError(
                    "shards > 1 is incompatible with a campaign-level "
                    "checkpoint: each shard keeps its own checkpoint "
                    "under shard_dir"
                )
            if self.resume and self.shard_dir is None:
                raise SolverError(
                    "resuming a sharded campaign requires a persistent "
                    "shard_dir"
                )
        elif self.resume and not self.checkpoint:
            raise SolverError("resume=True requires a checkpoint path")
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise SolverError(
                f"retry must be a RetryPolicy or None, got {self.retry!r}"
            )
        if self.supervision is not None:
            # lazy for the same reason as the backend-registry lookup:
            # a plain solve never pulls in the distrib package
            from repro.distrib.supervise import SupervisionOptions

            if not isinstance(self.supervision, SupervisionOptions):
                raise SolverError(
                    f"supervision must be a SupervisionOptions or None, "
                    f"got {self.supervision!r}"
                )
            if self.shards < 2:
                raise SolverError(
                    "supervision requires shards > 1 (the shard "
                    "supervisor manages shard-level retry and stealing; "
                    "use retry= for task-level supervision)"
                )
        if self.dynamic is not None:
            # lazy like supervision: static solves never import dynamic
            from repro.dynamic.options import DynamicOptions

            if not isinstance(self.dynamic, DynamicOptions):
                raise SolverError(
                    f"dynamic must be a DynamicOptions or None, "
                    f"got {self.dynamic!r}"
                )
        if self.telemetry is not None:
            from repro.obs.options import TelemetryOptions

            if not isinstance(self.telemetry, TelemetryOptions):
                raise SolverError(
                    f"telemetry must be a TelemetryOptions or None, "
                    f"got {self.telemetry!r}"
                )
        expected = options_class_for(self.method)
        if self.options is None:
            object.__setattr__(self, "options", expected())
        elif type(self.options) is not expected:
            raise SolverError(
                f"method {self.method!r} takes {expected.__name__}, "
                f"got {type(self.options).__name__}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def for_method(cls, method: str = "lprg", **kwargs) -> "SolverConfig":
        """Build a config from a method name and flat keyword options.

        Keywords are routed to config fields or to the method's option
        class; anything else raises :class:`SolverError` naming the
        nearest valid option — the strict replacement for the legacy
        facade's silent ``**kwargs`` forwarding.
        """
        heuristic = get_heuristic(method)  # ValueError when unknown
        opts_cls = options_class_for(heuristic.name)
        config_names = {
            f.name for f in fields(cls) if f.name not in ("method", "options")
        }
        option_names = {f.name for f in fields(opts_cls)}
        config_kwargs: dict[str, Any] = {}
        option_kwargs: dict[str, Any] = {}
        for key, value in kwargs.items():
            if key in config_names:
                config_kwargs[key] = value
            elif key in option_names:
                option_kwargs[key] = value
            else:
                raise unknown_option_error(
                    key, heuristic.name, config_names | option_names
                )
        return cls(
            method=heuristic.name,
            options=opts_cls(**option_kwargs),
            **config_kwargs,
        )

    # ------------------------------------------------------------------
    def method_kwargs(self) -> dict:
        """Keyword arguments for ``Heuristic.run`` under this config.

        Method-specific options always pass through; the config-level LP
        knobs are attached only when the method declares support (so a
        greedy solve never sees ``warm_start``), with defaults matching
        the heuristics' own — bitwise compatibility with direct
        ``get_heuristic(...).run(...)`` calls.
        """
        heuristic = get_heuristic(self.method)
        kwargs = self.options.to_kwargs()
        if "warm_start" in heuristic.option_names:
            kwargs["warm_start"] = self.warm_start
        if "lp_backend" in heuristic.option_names:
            kwargs["lp_backend"] = self.lp_backend
        if "lp_engine" in heuristic.option_names:
            kwargs["lp_engine"] = self.lp_engine
        if "share_bases" in heuristic.option_names:
            kwargs["share_bases"] = self.share_bases
        return kwargs

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via ``from_dict``)."""
        return {
            "method": self.method,
            "objective": self.objective,
            "seed": self.seed,
            "lp_backend": self.lp_backend,
            "warm_start": self.warm_start,
            "lp_engine": self.lp_engine,
            "share_bases": self.share_bases,
            "jobs": self.jobs,
            "chunk_size": self.chunk_size,
            "checkpoint": self.checkpoint,
            "resume": self.resume,
            "stream": self.stream,
            "row_sink": self.row_sink,
            "shards": self.shards,
            "shard_backend": self.shard_backend,
            "shard_dir": self.shard_dir,
            "retry": None if self.retry is None else self.retry.to_dict(),
            "supervision": (
                None if self.supervision is None
                else self.supervision.to_dict()
            ),
            "dynamic": (
                None if self.dynamic is None else self.dynamic.to_dict()
            ),
            "telemetry": (
                None if self.telemetry is None else self.telemetry.to_dict()
            ),
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolverConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        method = data.pop("method", "lprg")
        options = data.pop("options", None) or {}
        retry = data.pop("retry", None)
        if isinstance(retry, dict):
            retry = RetryPolicy.from_dict(retry)
        supervision = data.pop("supervision", None)
        if isinstance(supervision, dict):
            from repro.distrib.supervise import SupervisionOptions

            supervision = SupervisionOptions.from_dict(supervision)
        dynamic = data.pop("dynamic", None)
        if isinstance(dynamic, dict):
            from repro.dynamic.options import DynamicOptions

            dynamic = DynamicOptions.from_dict(dynamic)
        telemetry = data.pop("telemetry", None)
        if isinstance(telemetry, dict):
            from repro.obs.options import TelemetryOptions

            telemetry = TelemetryOptions.from_dict(telemetry)
        heuristic = get_heuristic(method)
        config_names = {
            f.name for f in fields(cls) if f.name not in ("method", "options")
        }
        for key in data:
            if key not in config_names:
                raise unknown_option_error(key, heuristic.name, config_names)
        opts_cls = options_class_for(heuristic.name)
        option_names = {f.name for f in fields(opts_cls)}
        for key in options:
            if key not in option_names:
                raise unknown_option_error(key, heuristic.name, option_names)
        return cls(
            method=heuristic.name,
            options=opts_cls(**options),
            retry=retry,
            supervision=supervision,
            dynamic=dynamic,
            telemetry=telemetry,
            **data,
        )


def config_fingerprint(config: SolverConfig) -> str:
    """Stable content hash of a :class:`SolverConfig`.

    sha256 over the canonical (sorted-key, compact) JSON encoding of
    :meth:`SolverConfig.to_dict` — equal configs hash equally across
    processes and sessions, so the hash can key caches and service
    routing (:class:`repro.service.SolverPool` keys warm solver
    instances by platform fingerprint + this hash).
    """
    payload = json.dumps(
        config.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
