"""The :class:`Solver` facade: one configured object, reusable state.

The paper's evaluation is never "one problem, one solve": it sweeps four
heuristics and two objectives over many platform scenarios, and the
production framing of the ROADMAP (many tenants, many what-if queries,
same platforms) repeats *related* instances endlessly. The facade owns
the state that makes repetition cheap and keeps it across calls:

* an :class:`~repro.lp.builder.LPBuildCache` — assembled program-(7)
  templates keyed by platform fingerprint + objective + payoffs, plus
  the shared densified ``A_ub`` every :class:`~repro.lp.session.
  LPSession` draws from. Repeat solves skip the COO assembly and the
  ``toarray()`` entirely;
* a :class:`VariableIndex <repro.lp.indexing.VariableIndex>` adoption
  map — equal-but-distinct platform objects (pickled across a process
  boundary, re-loaded from disk) share one index per fingerprint;
* a lazily created :class:`~repro.parallel.engine.CampaignEngine` for
  batched and swept execution under the config's ``jobs``.

Reuse is **bitwise-transparent**: cached templates are pristine copies
of what a cold build produces, and no optimal-basis state is ever
carried between independent solves, so ``Solver(cfg).solve(p)`` equals
the legacy ``solve(p, ...)`` byte for byte (pinned by the equivalence
suite and by ``benchmarks/bench_api_reuse.py``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.api.config import SolverConfig
from repro.api.report import SolveReport
from repro.heuristics.base import get_heuristic
from repro.lp.builder import LPBuildCache, use_build_cache
from repro.obs.trace import current_tracer, use_tracer
from repro.parallel.engine import CampaignEngine
from repro.platform.serialization import platform_fingerprint
from repro.util.errors import SolverError
from repro.util.rng import spawn_seed_sequences

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import SteadyStateProblem
    from repro.experiments.config import Scenario, Setting
    from repro.experiments.runner import ExperimentRow
    from repro.parallel.stream import SweepAccumulator


class SolverState:
    """Cross-call warm state owned by one :class:`Solver`.

    Nothing here affects results — only how much work a repeat solve
    re-does. The LP cache is installed around every solve via
    :func:`repro.lp.builder.use_build_cache` (outer-wins, so nested
    facade calls inside a batch share the batch's cache).

    Thread safety: the state's own mutations (index adoption, counters)
    hold an internal lock, and :class:`~repro.lp.builder.LPBuildCache`
    locks its lookups — so one :class:`Solver` may serve concurrent
    solves from many threads (the :mod:`repro.service` request path)
    with bitwise-identical results: reuse hands out pristine template
    copies, never shared mutable solve state.
    """

    #: retained platform memos (each pins its Platform via the cached
    #: VariableIndex); bounded so a long-lived solver serving thousands
    #: of distinct platforms cannot grow without limit
    MAX_INDEX_ENTRIES = 256

    def __init__(self):
        self.lp_cache = LPBuildCache()
        self.index_cache: dict = {}
        self.n_solves = 0
        self.index_adoptions = 0
        self._lock = threading.RLock()

    def record_solves(self, n: int = 1) -> None:
        """Count ``n`` solves against this state (thread-safe)."""
        with self._lock:
            self.n_solves += n

    def adopt_platform(self, platform) -> None:
        """Share cached variable indices with ``platform``.

        The per-platform index memo (:func:`repro.lp.indexing.
        shared_variable_index`) lives on the platform object; here the
        first memo seen for a fingerprint is remembered, and any later
        equal-but-distinct platform is seeded with its entries — so the
        O(K^2) index build happens once per *fingerprint*, not once per
        object.
        """
        try:
            memo = platform.__dict__.setdefault("_index_memo", {})
        except AttributeError:  # platform stand-in without a __dict__
            return
        try:
            fingerprint = platform_fingerprint(platform)
        except Exception:  # unserialisable stand-in
            return
        with self._lock:
            known = self.index_cache.setdefault(fingerprint, memo)
            if known is not memo:
                for key, index in known.items():
                    memo.setdefault(key, index)
                self.index_adoptions += 1
            while len(self.index_cache) > self.MAX_INDEX_ENTRIES:
                del self.index_cache[next(iter(self.index_cache))]

    def stats(self) -> dict:
        """Counter snapshot (merged into every :class:`SolveReport`)."""
        out = dict(self.lp_cache.stats())
        with self._lock:
            out["n_solves"] = self.n_solves
            out["index_adoptions"] = self.index_adoptions
        return out


class Solver:
    """Configured, stateful entry point to every algorithm.

    >>> from repro import Solver, SolverConfig
    >>> from repro.api import build_scenario
    >>> solver = Solver(SolverConfig(method="lprg"))
    >>> report = solver.solve(build_scenario("das2", rng=0))
    >>> report.value > 0 and report.config.method == "lprg"
    True

    One ``Solver`` instance is cheap to build but worth keeping: its
    :class:`SolverState` warm-starts every later call on the same (or an
    equal) platform. All methods are bitwise-deterministic given their
    ``rng``/``seed`` inputs, independent of state reuse and ``jobs``.
    """

    def __init__(self, config: "SolverConfig | None" = None):
        self.config = config if config is not None else SolverConfig()
        self.state = SolverState()
        self._engine: "CampaignEngine | None" = None
        self.tracer = None
        self.metrics = None
        self._trace_sink = None
        telemetry = self.config.telemetry
        if telemetry is not None and telemetry.trace:
            from repro.obs.trace import JsonlTraceSink, Tracer

            self.tracer = Tracer()
            if telemetry.trace_path is not None:
                self._trace_sink = JsonlTraceSink(telemetry.trace_path)
        if telemetry is not None and telemetry.metrics:
            from repro.obs.metrics import MetricsRegistry

            self.metrics = MetricsRegistry()

    @classmethod
    def for_method(cls, method: str = "lprg", **kwargs) -> "Solver":
        """Shorthand: ``Solver(SolverConfig.for_method(method, **kwargs))``."""
        return cls(SolverConfig.for_method(method, **kwargs))

    def __repr__(self) -> str:
        return f"Solver(method={self.config.method!r}, solves={self.state.n_solves})"

    # ------------------------------------------------------------------
    @property
    def engine(self) -> CampaignEngine:
        """The lazily created campaign engine for batched execution."""
        if self._engine is None:
            from repro.parallel.batch import _run_solve_task

            with self.state._lock:
                if self._engine is None:
                    self._engine = CampaignEngine(
                        _run_solve_task,
                        jobs=self.config.jobs,
                        chunk_size=self.config.chunk_size,
                        retry_policy=self.config.retry,
                    )
        return self._engine

    def _problem_for(self, problem: "SteadyStateProblem") -> "SteadyStateProblem":
        """Apply the config's objective override, if any."""
        objective = self.config.objective
        if objective is not None and problem.objective.name != objective:
            problem = problem.with_objective(objective)
        return problem

    def _rng_for(self, rng):
        return rng if rng is not None else self.config.seed

    @contextmanager
    def _observed(self, name: str, **attrs):
        """Open a top-level telemetry span around one facade operation.

        Installs the solver-owned tracer when ``config.telemetry`` asks
        for one (outer-wins: an ambient tracer from the CLI ``trace``
        wrapper or a service job keeps collecting instead), yields the
        open span (the shared null span when tracing is off everywhere),
        and on exit flushes finished trees to the configured JSONL sink
        and folds the operation into the solver metrics registry.
        Telemetry state never feeds back into the solve itself.
        """
        start = time.perf_counter() if self.metrics is not None else 0.0
        if self.tracer is not None:
            installer = use_tracer(self.tracer)
        else:
            installer = None
        try:
            if installer is not None:
                installer.__enter__()
            tracer = current_tracer()
            with tracer.span(name, **attrs) as span:
                yield span
        finally:
            if installer is not None:
                installer.__exit__(None, None, None)
                if self._trace_sink is not None:
                    self._trace_sink.write(self.tracer)
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_solver_operations_total",
                    help="Facade operations by kind.",
                    labels={"op": name},
                ).inc()
                self.metrics.histogram(
                    "repro_solver_operation_seconds",
                    help="Facade operation latency.",
                    labels={"op": name},
                    lo=0.0,
                    hi=60.0,
                    n_bins=64,
                ).observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    def solve(self, problem: "SteadyStateProblem", rng=None) -> SolveReport:
        """Solve one problem under this solver's configuration.

        ``rng`` overrides the config's ``seed`` for this call. The
        returned :class:`SolveReport` is a ``HeuristicResult`` whose
        base fields are bitwise-equal to the legacy ``solve()`` output.
        """
        config = self.config
        heuristic = get_heuristic(config.method)
        problem = self._problem_for(problem)
        self.state.record_solves(1)
        self.state.adopt_platform(problem.platform)
        with self._observed(
            "solve", method=config.method, objective=problem.objective.name
        ) as span:
            with use_build_cache(self.state.lp_cache):
                result = heuristic.run(
                    problem, rng=self._rng_for(rng), **config.method_kwargs()
                )
                # Defensive: every public entry point re-validates.
                if result.allocation is not None:
                    problem.check(result.allocation).raise_if_invalid()
            lp_stats = result.meta.get("lp_stats")
            if lp_stats is not None:
                span.set(
                    iterations=lp_stats.get("iterations"),
                    n_warm=lp_stats.get("n_warm"),
                    n_cold=lp_stats.get("n_cold"),
                )
        return SolveReport.from_result(
            result, config=config, cache_stats=self.state.stats()
        )

    # ------------------------------------------------------------------
    def solve_many(
        self,
        problems: "Sequence[SteadyStateProblem]",
        rng=None,
        seeds: "Sequence[int | None] | None" = None,
    ) -> "list[SolveReport]":
        """Solve many independent problems; results in input order.

        Instance ``i`` solves under the ``i``-th stateless spawn child
        of ``rng`` (or the config's ``seed``), exactly like the legacy
        :func:`repro.parallel.solve_many` — so results are a pure
        function of ``(problems, config, rng)``, independent of ``jobs``
        and chunking. With ``jobs == 1`` the batch runs inline and every
        instance shares this solver's warm state.

        ``seeds`` replaces the spawn derivation with *explicit*
        per-instance seeds: instance ``i`` solves exactly as
        ``solve(problems[i], rng=seeds[i])`` would (bitwise). This is
        the contract the :mod:`repro.service` request coalescer builds
        on — independent requests, each carrying its own seed, can be
        batched through one ``solve_many`` call without changing any
        response. ``seeds`` and ``rng`` are mutually exclusive; a
        ``None`` entry draws fresh entropy for that instance (the
        single-solve default).
        """
        from repro.parallel.batch import _SolveTask
        from repro.util.errors import SolverError

        problems = [self._problem_for(p) for p in problems]
        if seeds is not None:
            if rng is not None:
                raise SolverError(
                    "pass either rng (one batch seed, spawn-derived) or "
                    "seeds (explicit per-instance seeds), not both"
                )
            seeds = list(seeds)
            if len(seeds) != len(problems):
                raise SolverError(
                    f"{len(problems)} problems but {len(seeds)} seeds"
                )
            seed_seqs = [
                np.random.SeedSequence(None if s is None else int(s))
                for s in seeds
            ]
        else:
            seed_seqs = spawn_seed_sequences(self._rng_for(rng), len(problems))
        kwargs = self.config.method_kwargs()
        tasks = [
            _SolveTask(
                problem=p,
                method=self.config.method,
                seed=s,
                kwargs=dict(kwargs),
            )
            for p, s in zip(problems, seed_seqs)
        ]
        self.state.record_solves(len(problems))
        for p in problems:
            self.state.adopt_platform(p.platform)
        with self._observed("solve_many", n_problems=len(problems)):
            with use_build_cache(self.state.lp_cache):
                results = self.engine.run(tasks)
        # Each task ran through a throwaway per-call Solver (inline ones
        # fed this solver's cache via the outer-wins context; pooled
        # ones ran in their worker process), so re-stamp the reports
        # with the *batch* config and this solver's cache counters —
        # the contract is that a report describes its owning solver.
        stats = self.state.stats()
        return [
            SolveReport.from_result(r, config=self.config, cache_stats=stats)
            for r in results
        ]

    # ------------------------------------------------------------------
    def sweep(
        self,
        settings: "Sequence[Setting]",
        scenario: "Scenario | str | None" = None,
        methods: "Sequence[str] | None" = None,
        objectives: "Sequence[str] | None" = None,
        n_platforms: "int | None" = None,
        rng=None,
        progress: "bool | Callable[[int, int], None]" = False,
        on_rows: "Callable[[Sequence], None] | None" = None,
    ) -> "list[ExperimentRow] | SweepAccumulator":
        """Run a Section-6 style sweep over many grid points.

        The facade-native form of the historical ``run_sweep``:
        execution (``jobs``, ``chunk_size``, ``checkpoint``, ``resume``,
        ``stream``, ``row_sink``) comes from the config; the sweep
        definition from the arguments. ``scenario`` accepts an
        :class:`~repro.experiments.config.Scenario`, a registered
        sweep-scenario name (see :mod:`repro.api.scenarios`), or
        ``None`` for the calibrated default. Rows are bitwise-identical
        for any ``jobs``/chunking/resume pattern (stateless per-task
        seeds).

        With ``stream=True`` the sweep never materialises its row list:
        completed tasks are folded — in task-index order, so the result
        is still bitwise-identical for any execution pattern — into a
        :class:`~repro.parallel.stream.SweepAccumulator`, which is
        returned in place of the rows; ``row_sink`` diverts the raw
        rows to a JSONL/CSV file. An unwritable ``row_sink`` path fails
        with :class:`~repro.util.errors.SolverError` *before* any task
        runs.

        With ``shards=N > 1`` (requires ``stream=True``) the campaign
        runs through the :mod:`repro.distrib` orchestration layer: N
        contiguous shard manifests, the configured ``shard_backend``
        executor, per-shard checkpoints under ``shard_dir``, and an
        exactly-associative merge — the returned aggregate (and the
        assembled ``row_sink``) are bitwise those of the unsharded
        serial sweep.

        ``progress`` may be a callable ``(done, total)`` instead of the
        printing boolean — the hook a supervising caller (the service
        job runner) uses to surface live completion counts.

        ``on_rows`` (requires ``stream=True``, incompatible with
        ``shards > 1`` — sharded rows materialise in other processes)
        registers a per-task row callback: every folded task's rows are
        handed to it *in task-index order*, after they are written to
        the ``row_sink``. This is the incremental streaming feed of the
        :mod:`repro.service` ``/jobs/{id}/stream`` endpoint; the
        callback observes exactly the rows (and order) of the serial
        reference fold.
        """
        from repro.api.scenarios import scenario_registry
        from repro.experiments.config import DEFAULT_SCENARIO
        from repro.experiments.persistence import row_from_dict, row_to_dict
        from repro.experiments.runner import DEFAULT_METHODS, DEFAULT_OBJECTIVES
        from repro.parallel import (
            CampaignCheckpoint,
            CampaignEngine,
            build_sweep_tasks,
            run_sweep_task,
            sweep_fingerprint,
        )
        from repro.parallel.stream import (
            StreamFold,
            SweepAccumulator,
            open_row_sink,
            snapshot_compatible,
            validate_row_sink_path,
        )
        from repro.util.rng import seed_sequence_of

        config = self.config
        if config.row_sink is not None:
            validate_row_sink_path(config.row_sink)  # fail before any work
        if on_rows is not None:
            if not config.stream:
                raise SolverError(
                    "on_rows requires stream=True (rows are only folded "
                    "incrementally under streaming aggregation)"
                )
            if config.shards > 1:
                raise SolverError(
                    "on_rows is incompatible with shards > 1: sharded "
                    "campaigns fold their rows inside the shard "
                    "executors, not in this process"
                )
        if scenario is None:
            scenario = DEFAULT_SCENARIO
        elif isinstance(scenario, str):
            scenario = scenario_registry().sweep_scenario(scenario)
        methods = tuple(DEFAULT_METHODS if methods is None else methods)
        objectives = tuple(
            DEFAULT_OBJECTIVES if objectives is None else objectives
        )
        settings = list(settings)
        n_platforms = (
            scenario.platforms_per_setting if n_platforms is None else n_platforms
        )
        # Resolve the root seed once: with rng=None a fresh random root
        # is drawn, and the task seeds and the checkpoint fingerprint
        # must both describe that same root.
        root = seed_sequence_of(self._rng_for(rng))

        if config.shards > 1:
            # Sharded multi-host orchestration (repro.distrib): the
            # campaign is planned into contiguous shard manifests,
            # dispatched through the configured executor backend, and
            # merged — bitwise-identical to the serial path below for
            # any shard count/backend (exactly-associative merge).
            from repro.distrib import run_sharded_sweep

            reporter = None
            if callable(progress):
                reporter = progress
            elif progress:  # pragma: no cover - cosmetic
                def reporter(done: int, total: int) -> None:
                    print(f"  [{done}/{total}] shards", flush=True)

            return run_sharded_sweep(
                settings,
                scenario,
                methods,
                objectives,
                n_platforms,
                root,
                n_shards=config.shards,
                backend=config.shard_backend,
                shard_dir=config.shard_dir,
                row_sink=config.row_sink,
                resume=config.resume,
                # the facade convention holds for shards too: jobs is
                # the exact concurrency, and jobs=1 runs one shard at a
                # time (direct repro.distrib callers can pass jobs=None
                # for the backend's auto default)
                jobs=config.jobs,
                progress=reporter,
                retry=config.retry,
                supervision=config.supervision,
            )

        tasks = build_sweep_tasks(
            settings, scenario, methods, objectives, n_platforms, root
        )
        task_ids = [t.task_id for t in tasks]

        store = None
        if config.checkpoint is not None:
            store = CampaignCheckpoint(
                config.checkpoint,
                fingerprint=sweep_fingerprint(
                    settings, scenario, methods, objectives, n_platforms, root
                ),
                resume=config.resume,
                encode=lambda rows: [row_to_dict(r) for r in rows],
                decode=lambda rows: [row_from_dict(r) for r in rows],
                meta={"n_tasks": len(tasks), "kind_detail": "sweep"},
                # streaming resume: lets a loaded accumulator snapshot
                # release the row payloads of the prefix it covers
                ordered_task_ids=task_ids if config.stream else None,
                # ...unless the snapshot predates this build's
                # accumulator format, in which case it is discarded
                # (warn + record replay) instead of crashing on restore
                snapshot_validator=snapshot_compatible if config.stream else None,
            )

        fold = None
        if config.stream:
            sink = open_row_sink(config.row_sink)
            if on_rows is not None:
                from repro.parallel.stream import CallbackRowSink

                sink = CallbackRowSink(on_rows, sink)
            fold = StreamFold(
                SweepAccumulator(),
                n_tasks=len(tasks),
                sink=sink,
                task_ids=task_ids,
                checkpoint=store,
            )
            if store is not None and store.saved_state is not None:
                fold.restore(store.saved_state)
            else:
                fold.start()

        reporter = None
        if callable(progress):
            reporter = progress
        elif progress:  # pragma: no cover - cosmetic
            start = time.perf_counter()

            def reporter(done: int, total: int) -> None:
                elapsed = time.perf_counter() - start
                print(
                    f"  [{done}/{total}] tasks ({elapsed:.1f}s elapsed)",
                    flush=True,
                )

        engine = CampaignEngine(
            run_sweep_task,
            jobs=config.jobs,
            chunk_size=config.chunk_size,
            retry_policy=config.retry,
        )
        try:
            with self._observed(
                "campaign",
                n_tasks=len(tasks),
                jobs=config.jobs,
                stream=bool(config.stream),
            ):
                with use_build_cache(self.state.lp_cache):
                    per_task = engine.run(
                        tasks,
                        task_ids=task_ids,
                        checkpoint=store,
                        progress=reporter,
                        consumer=fold,
                    )
            if fold is not None:
                # Final snapshot must land before the checkpoint closes.
                return fold.finalize()
        finally:
            if fold is not None:
                fold.sink.close()  # idempotent; releases the file on error
            if store is not None:
                store.close()
        return [row for rows in per_task for row in rows]

    # ------------------------------------------------------------------
    def run_online(self, scenario, events, rng=None):
        """Re-schedule a scenario online while an event trace perturbs it.

        The facade entry of the :mod:`repro.dynamic` subsystem:

        * ``scenario`` — a :class:`~repro.core.problem.SteadyStateProblem`
          or a registered *platform* scenario name (``"das2"``,
          ``"table1-small"``, ...);
        * ``events`` — an :class:`~repro.dynamic.events.EventTrace` or a
          registered *events* scenario name (``"drift-heavy"``,
          ``"failure-storm"``, ``"churn"``), instantiated against the
          scenario's platform;
        * ``rng`` — overrides the config's ``seed``; two stateless
          spawn children derive the scenario build and the trace
          generation, so a report is a pure function of
          ``(scenario, events, config, rng)``.

        The run honors ``config.dynamic`` (:class:`~repro.dynamic.
        options.DynamicOptions`), ``config.lp_engine`` (must be
        ``"revised"``) and ``config.warm_start`` (``False`` re-solves
        cold at every event — same answers, no pivot savings), and
        shares this solver's LP build cache, so structural churn events
        rebuilding a previously seen payoff mix hit the template cache.
        Returns a :class:`~repro.dynamic.online.DisruptionReport`.
        """
        from repro.api.scenarios import scenario_registry
        from repro.dynamic.events import EventTrace
        from repro.dynamic.online import OnlineScheduler

        build_seed, trace_seed = spawn_seed_sequences(self._rng_for(rng), 2)
        if isinstance(scenario, str):
            problem = scenario_registry().build_problem(
                scenario,
                objective=self.config.objective or "maxmin",
                rng=np.random.default_rng(build_seed),
            )
        else:
            problem = self._problem_for(scenario)
        if isinstance(events, str):
            trace = scenario_registry().event_trace(
                events, problem, rng=np.random.default_rng(trace_seed)
            )
        elif isinstance(events, EventTrace):
            trace = events
        else:
            raise SolverError(
                f"events must be an EventTrace or a registered events-"
                f"scenario name, got {events!r}"
            )
        self.state.record_solves(1)
        self.state.adopt_platform(problem.platform)
        with self._observed("online", n_events=len(trace)):
            with use_build_cache(self.state.lp_cache):
                scheduler = OnlineScheduler(
                    problem,
                    options=self.config.dynamic,
                    engine=self.config.lp_engine,
                    warm_start=self.config.warm_start,
                )
                return scheduler.run(trace)

    # ------------------------------------------------------------------
    def solve_scenario(self, name: str, rng=None) -> SolveReport:
        """Build a registered platform scenario by name and solve it.

        Derives two stateless seed-sequence children of ``rng`` (or the
        config's ``seed``): one for scenario construction, one for the
        solve — so the pair is reproducible from a single seed.
        """
        from repro.api.scenarios import scenario_registry

        build_seed, solve_seed = spawn_seed_sequences(self._rng_for(rng), 2)
        problem = scenario_registry().build_problem(
            name,
            objective=self.config.objective or "maxmin",
            rng=np.random.default_rng(build_seed),
        )
        return self.solve(problem, rng=np.random.default_rng(solve_seed))
