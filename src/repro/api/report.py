"""Structured solve reports.

A :class:`SolveReport` is a :class:`~repro.heuristics.base.
HeuristicResult` (so every existing consumer keeps working, including
the legacy ``solve`` shim whose callers expect that type) extended with
what the facade knows and the bare result does not: the exact
:class:`~repro.api.config.SolverConfig` the solve ran under, and the
facade's cross-call cache counters at the time of the call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.heuristics.base import HeuristicResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolverConfig


@dataclass(repr=False)
class SolveReport(HeuristicResult):
    """One solve's result plus its configuration and facade statistics.

    Attributes (beyond :class:`HeuristicResult`)
    --------------------------------------------
    config:
        Echo of the :class:`SolverConfig` that produced this result.
    cache_stats:
        Snapshot of the owning solver's cross-call cache counters after
        this solve (LP template hits/cold builds, dense-matrix reuse,
        index adoptions) — the observability half of the reuse story.
    """

    config: "SolverConfig | None" = None
    cache_stats: dict = field(default_factory=dict)

    @property
    def lp_stats(self) -> "dict | None":
        """Per-run LP session statistics, when the method recorded any
        (simplex iteration counts, warm/cold solve split, presolve
        eliminations — see :class:`repro.lp.session.SessionStats`)."""
        return self.meta.get("lp_stats")

    @classmethod
    def from_result(
        cls,
        result: HeuristicResult,
        config: "SolverConfig",
        cache_stats: "dict | None" = None,
    ) -> "SolveReport":
        """Wrap a raw heuristic result; every base field is carried over
        unchanged, so the report is bitwise-equal to the result it wraps."""
        return cls(
            method=result.method,
            objective=result.objective,
            value=result.value,
            allocation=result.allocation,
            runtime=result.runtime,
            n_lp_solves=result.n_lp_solves,
            meta=result.meta,
            config=config,
            cache_stats=dict(cache_stats or {}),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation of the report.

        Everything a remote consumer (the :mod:`repro.service` result
        endpoint, a stored campaign log) needs: the base result fields,
        the allocation matrices, the config echo, the cache counters and
        the per-run ``lp_stats``. ``meta`` is *projected*, not carried
        wholesale — only its JSON-safe ``lp_stats`` entry survives (raw
        LP solution objects and numpy arrays do not round-trip through
        JSON). Floats round-trip bitwise (shortest-repr JSON).
        """
        allocation = None
        if self.allocation is not None:
            allocation = {
                "alpha": np.asarray(self.allocation.alpha).tolist(),
                "beta": np.asarray(self.allocation.beta).tolist(),
            }
        return {
            "method": self.method,
            "objective": self.objective,
            "value": float(self.value),
            "runtime": float(self.runtime),
            "n_lp_solves": int(self.n_lp_solves),
            "allocation": allocation,
            "config": None if self.config is None else self.config.to_dict(),
            "cache_stats": dict(self.cache_stats),
            "lp_stats": self.lp_stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolveReport":
        """Rebuild a report from :meth:`to_dict` output.

        The inverse of the JSON projection: base fields, allocation and
        config are reconstructed exactly; ``meta`` holds only the
        serialized ``lp_stats`` (when present), so
        ``from_dict(r.to_dict()).to_dict() == r.to_dict()`` always.
        """
        from repro.api.config import SolverConfig
        from repro.core.allocation import Allocation

        allocation = None
        if data.get("allocation") is not None:
            allocation = Allocation(
                alpha=np.asarray(data["allocation"]["alpha"], dtype=float),
                beta=np.asarray(data["allocation"]["beta"], dtype=float),
            )
        config = None
        if data.get("config") is not None:
            config = SolverConfig.from_dict(data["config"])
        meta = {}
        if data.get("lp_stats") is not None:
            meta["lp_stats"] = data["lp_stats"]
        return cls(
            method=str(data["method"]),
            objective=str(data["objective"]),
            value=float(data["value"]),
            allocation=allocation,
            runtime=float(data["runtime"]),
            n_lp_solves=int(data["n_lp_solves"]),
            meta=meta,
            config=config,
            cache_stats=dict(data.get("cache_stats") or {}),
        )
