"""Structured solve reports.

A :class:`SolveReport` is a :class:`~repro.heuristics.base.
HeuristicResult` (so every existing consumer keeps working, including
the legacy ``solve`` shim whose callers expect that type) extended with
what the facade knows and the bare result does not: the exact
:class:`~repro.api.config.SolverConfig` the solve ran under, and the
facade's cross-call cache counters at the time of the call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.heuristics.base import HeuristicResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolverConfig


@dataclass(repr=False)
class SolveReport(HeuristicResult):
    """One solve's result plus its configuration and facade statistics.

    Attributes (beyond :class:`HeuristicResult`)
    --------------------------------------------
    config:
        Echo of the :class:`SolverConfig` that produced this result.
    cache_stats:
        Snapshot of the owning solver's cross-call cache counters after
        this solve (LP template hits/cold builds, dense-matrix reuse,
        index adoptions) — the observability half of the reuse story.
    """

    config: "SolverConfig | None" = None
    cache_stats: dict = field(default_factory=dict)

    @property
    def lp_stats(self) -> "dict | None":
        """Per-run LP session statistics, when the method recorded any
        (simplex iteration counts, warm/cold solve split, presolve
        eliminations — see :class:`repro.lp.session.SessionStats`)."""
        return self.meta.get("lp_stats")

    @classmethod
    def from_result(
        cls,
        result: HeuristicResult,
        config: "SolverConfig",
        cache_stats: "dict | None" = None,
    ) -> "SolveReport":
        """Wrap a raw heuristic result; every base field is carried over
        unchanged, so the report is bitwise-equal to the result it wraps."""
        return cls(
            method=result.method,
            objective=result.objective,
            value=result.value,
            allocation=result.allocation,
            runtime=result.runtime,
            n_lp_solves=result.n_lp_solves,
            meta=result.meta,
            config=config,
            cache_stats=dict(cache_stats or {}),
        )
