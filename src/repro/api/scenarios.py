"""First-class scenario registry.

The paper's Section 6 evaluates over *scenarios* — named combinations of
platform topology and application payoffs (plus the sweep-level
symmetry-breaking choices of :class:`repro.experiments.config.Scenario`)
— yet until this PR they were scattered: platform presets in
:mod:`repro.platform.presets`, random Table-1 families in ad-hoc example
code, sweep scenarios as module constants. The registry makes scenarios
registrable, listable and constructible **by name**, exactly like
methods in the heuristic registry:

>>> from repro.api import available_scenarios, build_scenario
>>> "das2" in available_scenarios("platform")
True
>>> build_scenario("das2").n_clusters
5

Three kinds coexist under one namespace:

* ``"platform"`` scenarios build a concrete
  :class:`~repro.core.problem.SteadyStateProblem` (preset testbeds,
  synthetic stress topologies, random Table-1 families);
* ``"sweep"`` scenarios yield the :class:`~repro.experiments.config.
  Scenario` record a Section-6 sweep runs under, resolvable by name in
  ``Solver.sweep(..., scenario="calibrated")``;
* ``"events"`` scenarios yield the :class:`~repro.dynamic.events.
  EventTrace` an online re-scheduling run replays, instantiated
  against a concrete problem's platform (the trace must know the
  cluster count and backbone-link names), resolvable by name in
  ``Solver.run_online(..., events="drift-heavy")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.heuristics.base import nearest_name
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class ScenarioInfo:
    """Metadata describing one registered scenario."""

    name: str
    kind: str  # "platform" | "sweep"
    description: str
    tags: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "tags": list(self.tags),
        }


class ScenarioRegistry:
    """Name -> scenario factory mapping, mirroring the method registry.

    Platform factories have signature ``factory(rng) -> (Platform,
    payoffs | None)`` (``None`` payoffs mean one payoff-1 application
    per cluster); sweep factories take no arguments and return a
    :class:`repro.experiments.config.Scenario`; events factories have
    signature ``factory(problem, rng) -> EventTrace`` (the trace is
    shaped by the problem's cluster count and backbone links).
    """

    _KINDS = ("platform", "sweep", "events")

    def __init__(self):
        self._entries: dict[str, tuple[ScenarioInfo, Callable]] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Callable,
        kind: str = "platform",
        description: str = "",
        tags: "tuple[str, ...]" = (),
        overwrite: bool = False,
    ) -> None:
        """Register a scenario under ``name`` (case-insensitive)."""
        if kind not in self._KINDS:
            raise ValueError(
                f"scenario kind must be one of {self._KINDS}, got {kind!r}"
            )
        key = name.lower()
        if key in self._entries and not overwrite:
            raise ValueError(f"duplicate scenario name {key!r}")
        info = ScenarioInfo(
            name=key, kind=kind, description=description, tags=tuple(tags)
        )
        self._entries[key] = (info, factory)

    # ------------------------------------------------------------------
    def names(self, kind: "str | None" = None) -> tuple[str, ...]:
        """Sorted registered names, optionally filtered by kind."""
        return tuple(
            sorted(
                name
                for name, (info, _) in self._entries.items()
                if kind is None or info.kind == kind
            )
        )

    def info(self, name: str) -> ScenarioInfo:
        """Metadata for one scenario."""
        return self._get(name)[0]

    def _get(self, name: str) -> tuple[ScenarioInfo, Callable]:
        key = name.lower()
        try:
            return self._entries[key]
        except KeyError:
            known = sorted(self._entries)
            message = f"unknown scenario {name!r}"
            suggestion = nearest_name(key, known)
            if suggestion is not None:
                message += f"; did you mean {suggestion!r}?"
            raise ValueError(f"{message} (known: {known})") from None

    # ------------------------------------------------------------------
    def build_problem(
        self, name: str, objective: str = "maxmin", rng=None
    ) -> "SteadyStateProblem":
        """Construct the named platform scenario as a solvable problem.

        Preset scenarios ignore ``rng`` (they are fixed topologies with
        unit payoffs); synthetic families consume it for platform
        generation and payoff draws.
        """
        from repro.core.problem import SteadyStateProblem

        info, factory = self._get(name)
        if info.kind != "platform":
            raise ValueError(
                f"scenario {info.name!r} is a {info.kind!r} scenario, not a "
                "platform scenario; use sweep_scenario()"
            )
        platform, payoffs = factory(ensure_rng(rng))
        return SteadyStateProblem(platform, payoffs, objective=objective)

    def sweep_scenario(self, name: str) -> "Scenario":
        """The named sweep :class:`~repro.experiments.config.Scenario`."""
        info, factory = self._get(name)
        if info.kind != "sweep":
            raise ValueError(
                f"scenario {info.name!r} is a {info.kind!r} scenario, not a "
                "sweep scenario; use build_problem()"
            )
        return factory()

    def event_trace(self, name: str, problem, rng=None) -> "EventTrace":
        """Instantiate the named events scenario against ``problem``.

        The factory sees the problem (cluster count, backbone-link
        names) and an RNG from which it derives the trace seed — so the
        trace is reproducible from ``rng`` yet still a plain,
        JSON-serialisable :class:`~repro.dynamic.events.EventTrace`.
        """
        info, factory = self._get(name)
        if info.kind != "events":
            raise ValueError(
                f"scenario {info.name!r} is a {info.kind!r} scenario, not an "
                "events scenario; use build_problem() or sweep_scenario()"
            )
        return factory(problem, ensure_rng(rng))


# ----------------------------------------------------------------------
# built-in scenarios
# ----------------------------------------------------------------------

def _preset_factory(preset: str) -> Callable:
    def factory(rng):
        from repro.platform.presets import get_preset

        return get_preset(preset), None

    return factory


def _table1_factory(k: int) -> Callable:
    """A Table-1-style random family at fixed K (calibrated mid-grid
    knobs, the same family the test fixtures and benchmarks use)."""

    def factory(rng):
        from repro.platform.generator import PlatformSpec, generate_platform

        platform = generate_platform(
            PlatformSpec(
                n_clusters=k,
                connectivity=0.5,
                heterogeneity=0.5,
                mean_g=250.0,
                mean_bw=30.0,
                mean_max_connect=10.0,
                speed_heterogeneity=0.5,
            ),
            rng=rng,
        )
        payoffs = rng.uniform(0.8, 1.2, k)
        return platform, payoffs

    return factory


def _hotspot_factory(rng):
    """Synthetic stress topology: one fast hub, five slow edge sites.

    All the compute sits in the hub; every edge application must import
    capacity over a thin, connection-scarce spoke — the regime where
    round-down failures are most visible and the heuristic choice
    matters most (complements the ``intercontinental`` preset).
    """
    from repro.platform.cluster import Cluster
    from repro.platform.links import BackboneLink
    from repro.platform.topology import Platform

    clusters = [Cluster("hub", speed=400.0, g=500.0, router="rtr-hub")]
    routers = ["rtr-hub"]
    links = []
    for i in range(5):
        name = f"edge{i}"
        clusters.append(
            Cluster(name, speed=40.0 + 5.0 * i, g=120.0, router=f"rtr-{name}")
        )
        routers.append(f"rtr-{name}")
        links.append(
            BackboneLink(
                f"spoke-{name}",
                ("rtr-hub", f"rtr-{name}"),
                bw=6.0,
                max_connect=3,
            )
        )
    payoffs = [0.5, 1.0, 1.0, 1.5, 1.0, 2.0]
    return Platform(clusters, routers, links), payoffs


def _events_factory(family: str) -> Callable:
    """A builtin event-trace family, shaped by the target problem.

    The factory derives the trace seed from the caller's RNG — one
    ``integers`` draw — so ``Solver.run_online(..., events=name)`` is
    reproducible from a single seed while the trace itself stays a
    plain seeded :class:`~repro.dynamic.events.EventTrace` that can be
    saved, reloaded and replayed bit-for-bit.
    """

    def factory(problem, rng):
        from repro.dynamic.events import (
            churn_trace,
            drift_trace,
            failure_storm_trace,
        )

        seed = int(rng.integers(2**31 - 1))
        k = problem.n_clusters
        if family == "drift-heavy":
            return drift_trace(k, n_events=12, seed=seed)
        if family == "failure-storm":
            return failure_storm_trace(
                k, tuple(problem.platform.links), n_storms=4, seed=seed
            )
        return churn_trace(k, n_cycles=3, seed=seed)

    return factory


def _register_builtins(registry: ScenarioRegistry) -> None:
    for preset, blurb in (
        ("grid5000", "Grid'5000-flavoured 9-site national backbone"),
        ("das2", "DAS-2-flavoured 5 Dutch sites on one fat university net"),
        ("intercontinental", "3 continents behind long thin oceanic pipes"),
    ):
        registry.register(
            preset,
            _preset_factory(preset),
            description=blurb + " (fixed testbed model, unit payoffs)",
            tags=("preset", "section-7"),
        )
    registry.register(
        "table1-small",
        _table1_factory(6),
        description="random Table-1 family at K=6 (payoff band 0.8-1.2)",
        tags=("synthetic", "table-1"),
    )
    registry.register(
        "table1-medium",
        _table1_factory(15),
        description="random Table-1 family at K=15 (payoff band 0.8-1.2)",
        tags=("synthetic", "table-1"),
    )
    registry.register(
        "hotspot",
        _hotspot_factory,
        description="one fast hub, five slow edges behind scarce spokes",
        tags=("synthetic", "stress"),
    )

    def _calibrated():
        from repro.experiments.config import DEFAULT_SCENARIO

        return DEFAULT_SCENARIO

    def _literal():
        from repro.experiments.config import LITERAL_SCENARIO

        return LITERAL_SCENARIO

    registry.register(
        "calibrated",
        _calibrated,
        kind="sweep",
        description="calibrated Section-6 sweep (speed heterogeneity + "
        "payoff band; see EXPERIMENTS.md note 7)",
        tags=("section-6",),
    )
    registry.register(
        "paper-literal",
        _literal,
        kind="sweep",
        description="paper-literal sweep (equal speeds and payoffs; "
        "trivially optimal, kept for the triviality demonstration)",
        tags=("section-6",),
    )

    registry.register(
        "drift-heavy",
        _events_factory("drift-heavy"),
        kind="events",
        description="12 lognormal CPU/bandwidth drift events (RHS-only "
        "fast path; the warm-start showcase trace)",
        tags=("dynamic",),
    )
    registry.register(
        "failure-storm",
        _events_factory("failure-storm"),
        kind="events",
        description="4 sequential link/node failure+recovery storms "
        "(RHS and bound mutations under heavy degeneracy)",
        tags=("dynamic",),
    )
    registry.register(
        "churn",
        _events_factory("churn"),
        kind="events",
        description="3 application depart+arrive cycles (structural "
        "rebuilds through the LP template cache)",
        tags=("dynamic",),
    )


_DEFAULT_REGISTRY = ScenarioRegistry()
_register_builtins(_DEFAULT_REGISTRY)


def scenario_registry() -> ScenarioRegistry:
    """The process-wide default registry (builtins pre-registered)."""
    return _DEFAULT_REGISTRY


def register_scenario(
    name: str,
    factory: Callable,
    kind: str = "platform",
    description: str = "",
    tags: "tuple[str, ...]" = (),
    overwrite: bool = False,
) -> None:
    """Register a scenario in the default registry (see
    :meth:`ScenarioRegistry.register`)."""
    _DEFAULT_REGISTRY.register(
        name,
        factory,
        kind=kind,
        description=description,
        tags=tags,
        overwrite=overwrite,
    )


def available_scenarios(kind: "str | None" = None) -> tuple[str, ...]:
    """Sorted names registered in the default registry."""
    return _DEFAULT_REGISTRY.names(kind)


def scenario_info(name: str) -> ScenarioInfo:
    """Metadata for one scenario in the default registry."""
    return _DEFAULT_REGISTRY.info(name)


def build_scenario(
    name: str, objective: str = "maxmin", rng=None
) -> "SteadyStateProblem":
    """Construct a platform scenario from the default registry."""
    return _DEFAULT_REGISTRY.build_problem(name, objective=objective, rng=rng)
