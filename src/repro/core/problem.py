"""The steady-state multi-application scheduling problem (program (7)).

A :class:`SteadyStateProblem` bundles a platform, one application per
cluster (the paper's canonical setting: ``A_k`` originates at ``C^k``)
and an objective. It is the single argument every solver and heuristic
takes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.application import Application, applications_for_platform, payoff_vector
from repro.core.allocation import Allocation
from repro.core.constraints import (
    DEFAULT_TOL,
    ViolationReport,
    allocation_violations,
)
from repro.core.objectives import MAXMIN, Objective, get_objective
from repro.platform.topology import Platform
from repro.util.errors import PlatformError


class SteadyStateProblem:
    """Platform + applications + objective.

    Parameters
    ----------
    platform:
        The target platform.
    applications:
        One :class:`Application` per cluster (application ``k`` holds its
        input data on ``C^k``). ``None`` gives every cluster a payoff-1
        application; a sequence of floats is shorthand for payoffs.
    objective:
        ``"sum"``, ``"maxmin"`` or an :class:`Objective` instance
        (default MAXMIN, the paper's fairness objective).
    """

    def __init__(
        self,
        platform: Platform,
        applications: "Sequence[Application] | Sequence[float] | None" = None,
        objective: "str | Objective" = MAXMIN,
    ):
        self.platform = platform
        K = platform.n_clusters
        if applications is None:
            self.applications = applications_for_platform(K)
        elif all(isinstance(a, Application) for a in applications):
            apps = tuple(applications)
            if len(apps) != K:
                raise PlatformError(
                    f"got {len(apps)} applications for {K} clusters; the "
                    "canonical formulation requires exactly one per cluster"
                )
            self.applications = apps
        else:
            self.applications = applications_for_platform(K, list(applications))
        self.objective = get_objective(objective)

    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        return self.platform.n_clusters

    @property
    def payoffs(self) -> np.ndarray:
        """Vector of payoff factors ``pi_k``."""
        return payoff_vector(self.applications)

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of participating applications (``pi_k > 0``)."""
        return self.payoffs > 0

    def with_objective(self, objective: "str | Objective") -> "SteadyStateProblem":
        """Same platform/applications under a different objective."""
        return SteadyStateProblem(self.platform, self.applications, objective)

    # ------------------------------------------------------------------
    def objective_value(self, alloc: Allocation) -> float:
        """Score an allocation under this problem's objective."""
        return self.objective.value(alloc.throughputs, self.payoffs)

    def check(self, alloc: Allocation, tol: float = DEFAULT_TOL) -> ViolationReport:
        """Validate an allocation against this problem's platform."""
        return allocation_violations(self.platform, alloc, tol)

    def __repr__(self) -> str:
        active = int(self.active_mask.sum())
        return (
            f"SteadyStateProblem(K={self.n_clusters}, active_apps={active}, "
            f"objective={self.objective.name})"
        )
