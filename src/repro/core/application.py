"""Divisible-load applications and their payoff factors (Section 3.1).

Application ``A_k`` originates at cluster ``C^k``, which initially holds
all of its input data. The payoff factor ``pi_k`` quantifies the relative
worth of one unit of ``A_k``'s load: computing one unit for an
application with payoff 2 is twice as worthwhile as for one with payoff
1. Setting ``pi_k = 0`` marks a cluster that does not wish to run an
application: it still contributes resources but is excluded from the
objectives and never selected by the greedy heuristic (interpretation
note 2 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.errors import PlatformError


@dataclass(frozen=True, slots=True)
class Application:
    """One divisible-load application.

    Parameters
    ----------
    name:
        Human-readable identifier.
    payoff:
        The payoff factor ``pi_k >= 0``.
    """

    name: str
    payoff: float = 1.0

    def __post_init__(self):
        if self.payoff < 0:
            raise PlatformError(
                f"application {self.name!r}: payoff must be >= 0, got {self.payoff}"
            )

    @property
    def participates(self) -> bool:
        """True when the application competes for resources (``pi_k > 0``)."""
        return self.payoff > 0


def applications_for_platform(
    n_clusters: int, payoffs: "Sequence[float] | float | None" = None
) -> tuple[Application, ...]:
    """One application per cluster (the paper's canonical setting).

    Parameters
    ----------
    n_clusters:
        Number of clusters ``K``; application ``k`` originates at ``C^k``.
    payoffs:
        ``None`` (all 1.0), a scalar applied to every application, or a
        length-``K`` sequence.
    """
    if payoffs is None:
        values = [1.0] * n_clusters
    elif isinstance(payoffs, (int, float)):
        values = [float(payoffs)] * n_clusters
    else:
        values = [float(p) for p in payoffs]
        if len(values) != n_clusters:
            raise PlatformError(
                f"got {len(values)} payoffs for {n_clusters} clusters"
            )
    return tuple(Application(name=f"A{k}", payoff=values[k]) for k in range(n_clusters))


def payoff_vector(applications: Sequence[Application]) -> np.ndarray:
    """Stack application payoffs into a float vector."""
    return np.array([app.payoff for app in applications], dtype=float)
