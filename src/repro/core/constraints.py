"""The steady-state equations (1)-(4) as checkable predicates.

``validate_allocation`` verifies that an :class:`~repro.core.allocation.
Allocation` is a *valid allocation* in the paper's sense, i.e. satisfies
the constraint system (7):

* (7b) compute capacity:   ``sum_l alpha[l, k] <= s_k``
* (7c) local link:         ``outgoing_k + incoming_k <= g_k``
* (7d) connection counts:  ``sum_{routes through li} beta <= max_connect(li)``
* (7e) route bandwidth:    ``alpha[k, l] <= beta[k, l] * min bw on route``
* (7f/g) signs and integrality, plus "no traffic without a route".

All checks are tolerance-based because LP backends return floats; the
default ``tol`` is scaled appropriately for HiGHS output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Allocation
from repro.platform.topology import Platform
from repro.util.errors import ValidationError

#: default absolute tolerance for float constraint checks
DEFAULT_TOL = 1e-6


@dataclass
class ViolationReport:
    """Outcome of validating an allocation against a platform.

    Attributes
    ----------
    violations:
        One human-readable string per violated constraint; empty when the
        allocation is valid.
    """

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def raise_if_invalid(self) -> None:
        if self.violations:
            raise ValidationError(self.violations)

    def __bool__(self) -> bool:  # truthiness == validity
        return self.ok

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"ViolationReport({state})"


def _check_signs_and_routes(
    platform: Platform, alloc: Allocation, tol: float, report: ViolationReport
) -> None:
    """(7f), (7g) and structural sanity: no traffic on route-less pairs."""
    K = platform.n_clusters
    if alloc.n_clusters != K:
        report.add(
            f"allocation is for {alloc.n_clusters} clusters, platform has {K}"
        )
        return
    if np.any(alloc.alpha < -tol):
        bad = np.argwhere(alloc.alpha < -tol)[0]
        report.add(
            f"alpha[{bad[0]}, {bad[1]}] = {alloc.alpha[tuple(bad)]:g} is negative"
        )
    if np.any(alloc.beta < 0):
        bad = np.argwhere(alloc.beta < 0)[0]
        report.add(f"beta[{bad[0]}, {bad[1]}] = {alloc.beta[tuple(bad)]} is negative")
    for k in range(K):
        for l in range(K):
            if k == l or platform.has_route(k, l):
                continue
            if abs(alloc.alpha[k, l]) > tol or alloc.beta[k, l] != 0:
                report.add(
                    f"traffic alpha={alloc.alpha[k, l]:g}, beta={alloc.beta[k, l]} "
                    f"between unconnected clusters {k} -> {l}"
                )


def _check_compute(
    platform: Platform, alloc: Allocation, tol: float, report: ViolationReport
) -> None:
    """Equation (1)/(7b): no cluster computes more than its speed."""
    speeds = platform.speeds
    loads = alloc.alpha.sum(axis=0)
    for k in np.nonzero(loads > speeds + tol)[0]:
        report.add(
            f"Eq.(1) violated at C^{k}: load {loads[k]:g} > speed {speeds[k]:g}"
        )


def _check_local_links(
    platform: Platform, alloc: Allocation, tol: float, report: ViolationReport
) -> None:
    """Equation (2)/(7c): serial-link traffic within ``g_k``."""
    g = platform.local_capacities
    for k in range(platform.n_clusters):
        traffic = alloc.link_traffic(k)
        if traffic > g[k] + tol:
            report.add(
                f"Eq.(2) violated at C^{k}: link traffic {traffic:g} > g={g[k]:g}"
            )


def _check_connections(
    platform: Platform, alloc: Allocation, report: ViolationReport
) -> None:
    """Equation (3)/(7d): per-backbone connection counts."""
    for name, link in platform.links.items():
        used = sum(int(alloc.beta[k, l]) for (k, l) in platform.routes_through(name))
        if used > link.max_connect:
            report.add(
                f"Eq.(3) violated on link {name!r}: {used} connections "
                f"> max_connect={link.max_connect}"
            )


def _check_route_bandwidth(
    platform: Platform, alloc: Allocation, tol: float, report: ViolationReport
) -> None:
    """Equation (4)/(7e): ``alpha <= beta * min bw`` on every routed pair.

    Pairs connected through the *same* router (empty backbone route) are
    only constrained by the local links, so (7e) does not apply there.
    """
    for (k, l) in platform.routed_pairs():
        route = platform.route(k, l)
        if not route.links:
            continue
        limit = alloc.beta[k, l] * route.bandwidth
        if alloc.alpha[k, l] > limit + tol:
            report.add(
                f"Eq.(4) violated on {k} -> {l}: alpha={alloc.alpha[k, l]:g} > "
                f"beta*bw = {alloc.beta[k, l]} * {route.bandwidth:g} = {limit:g}"
            )


def allocation_violations(
    platform: Platform, alloc: Allocation, tol: float = DEFAULT_TOL
) -> ViolationReport:
    """Check all steady-state constraints; never raises."""
    report = ViolationReport()
    _check_signs_and_routes(platform, alloc, tol, report)
    if report.violations and report.violations[0].startswith("allocation is for"):
        return report  # size mismatch: nothing else is meaningful
    _check_compute(platform, alloc, tol, report)
    _check_local_links(platform, alloc, tol, report)
    _check_connections(platform, alloc, report)
    _check_route_bandwidth(platform, alloc, tol, report)
    return report


def validate_allocation(
    platform: Platform, alloc: Allocation, tol: float = DEFAULT_TOL
) -> ViolationReport:
    """Validate and *raise* :class:`ValidationError` on any violation.

    Returns the (empty) report for call-chaining convenience.
    """
    report = allocation_violations(platform, alloc, tol)
    report.raise_if_invalid()
    return report
