"""The two scheduling objectives of Section 3.1.

* :data:`SUM` — maximize total payoff ``sum_k pi_k alpha_k`` (Eq. 5);
  risks starving low-payoff applications.
* :data:`MAXMIN` — maximize ``min_k pi_k alpha_k`` over participating
  applications (Eq. 6); the MAX-MIN fairness strategy of Bertsekas &
  Gallager with coefficients ``pi_k``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class Objective:
    """Base objective: maps per-application throughputs to a scalar score
    (to be maximised)."""

    name: str = "abstract"

    def value(
        self,
        throughputs: "Sequence[float] | np.ndarray",
        payoffs: "Sequence[float] | np.ndarray",
    ) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"Objective({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Objective) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


class SumObjective(Objective):
    """Total weighted throughput (Eq. 5)."""

    name = "sum"

    def value(self, throughputs, payoffs) -> float:
        throughputs = np.asarray(throughputs, dtype=float)
        payoffs = np.asarray(payoffs, dtype=float)
        return float(np.dot(payoffs, throughputs))


class MaxMinObjective(Objective):
    """Weighted max-min fairness (Eq. 6) over applications with
    ``pi_k > 0``; applications with zero payoff do not participate."""

    name = "maxmin"

    def value(self, throughputs, payoffs) -> float:
        throughputs = np.asarray(throughputs, dtype=float)
        payoffs = np.asarray(payoffs, dtype=float)
        active = payoffs > 0
        if not np.any(active):
            return 0.0
        return float(np.min(payoffs[active] * throughputs[active]))


#: singleton instances — compare with ``is`` or ``==`` freely
SUM = SumObjective()
MAXMIN = MaxMinObjective()

_BY_NAME = {SUM.name: SUM, MAXMIN.name: MAXMIN}


def get_objective(objective: "str | Objective") -> Objective:
    """Resolve an objective given by name or instance."""
    if isinstance(objective, Objective):
        return objective
    try:
        return _BY_NAME[objective.lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
