"""One-call façade over every solver and heuristic in the library.

``solve(problem, method="lprg")`` dispatches to the Section-5 heuristics
(``"greedy"``/``"g"``, ``"lpr"``, ``"lprg"``, ``"lprr"``), the rational
LP upper bound (``"lp"``) or the exact mixed-integer optimum
(``"milp"``, ``"bnb"``).

Since PR 3 this module is a thin shim over :class:`repro.api.Solver`:
``solve(problem, method, **kwargs)`` builds a one-shot
:class:`~repro.api.config.SolverConfig` from its keyword arguments and
runs it, with **bitwise-identical** results (pinned by the equivalence
suite). New code should hold a :class:`~repro.api.Solver` instead — a
kept solver reuses LP templates and variable indices across calls. The
shim is permanent for now; see the deprecation policy in CHANGES.md.

Unlike the historical version, unknown keyword options are *rejected*
with a did-you-mean :class:`~repro.util.errors.SolverError` instead of
being silently swallowed by the heuristics' ``**kwargs``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import SteadyStateProblem
    from repro.heuristics.base import HeuristicResult, MethodInfo


def available_methods() -> tuple[str, ...]:
    """Names accepted by :func:`solve`."""
    from repro.heuristics.base import registry

    return tuple(sorted(registry().keys()))


def method_info() -> "dict[str, MethodInfo]":
    """Per-method metadata, keyed by canonical name.

    The typed extension of :func:`available_methods`: each entry records
    the method's description, aliases, supported options, whether it
    solves LPs, and whether its result depends on ``rng``. Sourced from
    the heuristic registry, so third-party registrations show up too.

    >>> info = method_info()
    >>> info["lprr"].uses_lp and not info["lprr"].deterministic
    True
    >>> "selection" in info["greedy"].options
    True
    """
    from repro.heuristics.base import registry

    return {
        name: heuristic.info()
        for name, heuristic in sorted(registry().items())
    }


def solve(
    problem: "SteadyStateProblem",
    method: str = "lprg",
    rng: "int | None" = None,
    **kwargs,
) -> "HeuristicResult":
    """Solve a steady-state problem with the requested method.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.SteadyStateProblem` to solve.
    method:
        One of :func:`available_methods` (case-insensitive). Defaults to
        LPRG, the paper's best practical heuristic.
    rng:
        Seed for stochastic methods (only LPRR uses randomness).
    **kwargs:
        Method options (e.g. ``eager_integer_fixing=`` for LPRR) and the
        LP re-solve knobs ``warm_start=``/``lp_backend=``. Unknown names
        raise :class:`~repro.util.errors.SolverError` naming the nearest
        valid option.

    Returns
    -------
    HeuristicResult
        Concretely a :class:`~repro.api.report.SolveReport` — allocation
        + objective value + timing metadata + config echo; the
        allocation is guaranteed valid (checked before returning).
    """
    from repro.api import Solver

    return Solver.for_method(method, **kwargs).solve(problem, rng=rng)
