"""One-call façade over every solver and heuristic in the library.

``solve(problem, method="lprg")`` dispatches to the Section-5 heuristics
(``"greedy"``/``"g"``, ``"lpr"``, ``"lprg"``, ``"lprr"``), the rational
LP upper bound (``"lp"``) or the exact mixed-integer optimum
(``"milp"``, ``"bnb"``). Heuristics are imported lazily to keep the
core package import-light.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import SteadyStateProblem
    from repro.heuristics.base import HeuristicResult


def available_methods() -> tuple[str, ...]:
    """Names accepted by :func:`solve`."""
    from repro.heuristics.base import registry

    return tuple(sorted(registry().keys()))


def solve(
    problem: "SteadyStateProblem",
    method: str = "lprg",
    rng: "int | None" = None,
    **kwargs,
) -> "HeuristicResult":
    """Solve a steady-state problem with the requested method.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.SteadyStateProblem` to solve.
    method:
        One of :func:`available_methods` (case-insensitive). Defaults to
        LPRG, the paper's best practical heuristic.
    rng:
        Seed for stochastic methods (only LPRR uses randomness).
    **kwargs:
        Forwarded to the heuristic (e.g. ``backend=`` for LP-based
        methods).

    Returns
    -------
    HeuristicResult
        Allocation + objective value + timing metadata; the allocation is
        guaranteed valid (checked before returning).
    """
    from repro.heuristics.base import get_heuristic

    heuristic = get_heuristic(method)
    result = heuristic.run(problem, rng=rng, **kwargs)
    # Defensive: every public entry point re-validates.
    if result.allocation is not None:
        problem.check(result.allocation).raise_if_invalid()
    return result
