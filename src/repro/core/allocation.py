"""The allocation ``(alpha, beta)`` — a candidate steady-state solution.

``alpha[k, l]`` is the amount of load of application ``A_k`` that is
sent by ``C^k`` and computed on ``C^l`` per time unit (``alpha[k, k]``
is the locally processed part). ``beta[k, l]`` is the integer number of
connections ``C^k`` opens towards ``C^l`` to carry it. Following the
paper, a *valid allocation* is an ``(alpha, beta)`` pair satisfying
Equations (7); validity checking lives in
:mod:`repro.core.constraints`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.util.errors import ValidationError


class Allocation:
    """Dense ``(alpha, beta)`` matrices for ``K`` clusters.

    The class is a thin algebraic wrapper: it stores the matrices,
    computes per-application throughputs and objective values, and
    supports copy/merge operations used by the composite heuristics
    (LPRG merges an LPR base with a greedy refinement).
    """

    __slots__ = ("alpha", "beta")

    def __init__(self, alpha: np.ndarray, beta: np.ndarray):
        alpha = np.asarray(alpha, dtype=float)
        beta = np.asarray(beta, dtype=np.int64)
        if alpha.ndim != 2 or alpha.shape[0] != alpha.shape[1]:
            raise ValidationError([f"alpha must be square, got shape {alpha.shape}"])
        if beta.shape != alpha.shape:
            raise ValidationError(
                [f"beta shape {beta.shape} differs from alpha shape {alpha.shape}"]
            )
        self.alpha = alpha
        self.beta = beta

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n_clusters: int) -> "Allocation":
        """The empty allocation (all ``alpha = beta = 0``)."""
        return cls(
            np.zeros((n_clusters, n_clusters), dtype=float),
            np.zeros((n_clusters, n_clusters), dtype=np.int64),
        )

    def copy(self) -> "Allocation":
        return Allocation(self.alpha.copy(), self.beta.copy())

    # ------------------------------------------------------------------
    # throughput and objectives
    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        return self.alpha.shape[0]

    @property
    def throughputs(self) -> np.ndarray:
        """``alpha_k = sum_l alpha[k, l]`` for every application ``k``."""
        return self.alpha.sum(axis=1)

    def throughput(self, k: int) -> float:
        """Load processed per time unit for application ``A_k``."""
        return float(self.alpha[k, :].sum())

    def sum_value(self, payoffs: "Sequence[float] | np.ndarray") -> float:
        """SUM objective (Eq. 5): total payoff ``sum_k pi_k * alpha_k``."""
        payoffs = np.asarray(payoffs, dtype=float)
        return float(np.dot(payoffs, self.throughputs))

    def maxmin_value(self, payoffs: "Sequence[float] | np.ndarray") -> float:
        """MAXMIN objective (Eq. 6): ``min_k pi_k * alpha_k`` over
        participating applications (``pi_k > 0``); 0.0 if none participate.
        """
        payoffs = np.asarray(payoffs, dtype=float)
        active = payoffs > 0
        if not np.any(active):
            return 0.0
        return float(np.min(payoffs[active] * self.throughputs[active]))

    def objective_value(self, objective: str, payoffs) -> float:
        """Dispatch on objective name (``"sum"`` or ``"maxmin"``)."""
        if objective == "sum":
            return self.sum_value(payoffs)
        if objective == "maxmin":
            return self.maxmin_value(payoffs)
        raise ValueError(f"unknown objective {objective!r}")

    # ------------------------------------------------------------------
    # traffic accounting (used by constraint checks and the simulator)
    # ------------------------------------------------------------------
    def compute_load(self, l: int) -> float:
        """Total load executed on cluster ``C^l`` per time unit (Eq. 1 LHS)."""
        return float(self.alpha[:, l].sum())

    def link_traffic(self, k: int) -> float:
        """Traffic through ``C^k``'s serial link per time unit (Eq. 2 LHS):
        outgoing remote load plus incoming remote load."""
        outgoing = self.alpha[k, :].sum() - self.alpha[k, k]
        incoming = self.alpha[:, k].sum() - self.alpha[k, k]
        return float(outgoing + incoming)

    def remote_transfers(self) -> Iterator[tuple[int, int, float, int]]:
        """Yield ``(k, l, alpha_kl, beta_kl)`` for all remote pairs where
        either quantity is non-zero."""
        K = self.n_clusters
        for k in range(K):
            for l in range(K):
                if k == l:
                    continue
                a = float(self.alpha[k, l])
                b = int(self.beta[k, l])
                if a != 0.0 or b != 0:
                    yield k, l, a, b

    def total_connections(self) -> int:
        """Total number of opened connections ``sum_{k != l} beta[k, l]``."""
        off_diag = self.beta.sum() - np.trace(self.beta)
        return int(off_diag)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def merged_with(self, other: "Allocation") -> "Allocation":
        """Element-wise sum of two allocations (LPR base + greedy top-up).

        The caller is responsible for re-validating the merged result.
        """
        if other.n_clusters != self.n_clusters:
            raise ValidationError(
                [
                    f"cannot merge allocations of sizes {self.n_clusters} "
                    f"and {other.n_clusters}"
                ]
            )
        return Allocation(self.alpha + other.alpha, self.beta + other.beta)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def is_zero(self, tol: float = 0.0) -> bool:
        """True when no load is allocated anywhere."""
        return bool(np.all(np.abs(self.alpha) <= tol) and np.all(self.beta == 0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return bool(
            np.array_equal(self.alpha, other.alpha)
            and np.array_equal(self.beta, other.beta)
        )

    def __repr__(self) -> str:
        return (
            f"Allocation(K={self.n_clusters}, total_load={self.throughputs.sum():.4g}, "
            f"connections={self.total_connections()})"
        )

    def describe(self, payoffs=None) -> str:
        """Readable per-application summary of the allocation."""
        lines = [repr(self)]
        for k in range(self.n_clusters):
            local = self.alpha[k, k]
            remote = self.throughput(k) - local
            lines.append(
                f"  A{k}: throughput={self.throughput(k):.4g} "
                f"(local={local:.4g}, exported={remote:.4g})"
            )
        if payoffs is not None:
            lines.append(
                f"  SUM={self.sum_value(payoffs):.4g} "
                f"MAXMIN={self.maxmin_value(payoffs):.4g}"
            )
        return "\n".join(lines)
