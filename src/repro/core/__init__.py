"""Core: the paper's contribution — multi-application steady-state
divisible-load scheduling.

The central objects are:

* :class:`~repro.core.application.Application` — a divisible-load
  application ``A_k`` with its payoff factor ``pi_k``;
* :class:`~repro.core.problem.SteadyStateProblem` — platform +
  applications + objective (program (7) of the paper);
* :class:`~repro.core.allocation.Allocation` — a candidate solution
  ``(alpha, beta)``;
* :func:`~repro.core.constraints.validate_allocation` — the steady-state
  equations (1)-(4) as a checkable predicate;
* :func:`~repro.core.solve.solve` — one-call façade over all heuristics
  and exact solvers.
"""

from repro.core.application import Application, applications_for_platform
from repro.core.allocation import Allocation
from repro.core.objectives import Objective, SUM, MAXMIN, get_objective
from repro.core.constraints import (
    validate_allocation,
    allocation_violations,
    ViolationReport,
)
from repro.core.problem import SteadyStateProblem
from repro.core.solve import solve, available_methods, method_info

__all__ = [
    "Application",
    "applications_for_platform",
    "Allocation",
    "Objective",
    "SUM",
    "MAXMIN",
    "get_objective",
    "validate_allocation",
    "allocation_violations",
    "ViolationReport",
    "SteadyStateProblem",
    "solve",
    "available_methods",
    "method_info",
]
