"""repro — steady-state scheduling of multiple divisible-load applications
on large-scale platforms.

A full reproduction of L. Marchal, Y. Yang, H. Casanova, Y. Robert,
*A realistic network/application model for scheduling divisible loads on
large-scale platforms* (IPDPS 2005 / INRIA RR-5197): the multi-cluster
platform model with realistic bandwidth sharing, the steady-state linear
program with SUM and MAXMIN objectives, the NP-completeness reduction,
the G / LPR / LPRG / LPRR heuristics, periodic-schedule reconstruction,
a flow-level simulator, and the full Section-6 evaluation harness.

Quickstart
----------
The public entry point is the :class:`Solver` facade: a typed, validated
:class:`SolverConfig` picks the algorithm and its options, and the
solver object keeps cross-call warm state (LP templates, variable
indices) so repeated solves of related instances stop cold-starting.
Scenarios — named platform/application setups, from testbed presets to
synthetic stress topologies — are built by name from the scenario
registry, the same way methods are picked by name from the method
registry (``method_info()`` lists them with their options).

>>> from repro import Solver, SolverConfig, build_scenario
>>> solver = Solver(SolverConfig(method="lprg", objective="maxmin"))
>>> report = solver.solve(build_scenario("das2"))
>>> report.value > 0
True
>>> report.config.method
'lprg'

Random Table-1-style platforms work exactly as before:

>>> from repro import PlatformSpec, generate_platform, SteadyStateProblem
>>> platform = generate_platform(
...     PlatformSpec(n_clusters=6, connectivity=0.5, heterogeneity=0.4,
...                  mean_g=250, mean_bw=30, mean_max_connect=10),
...     rng=42)
>>> problem = SteadyStateProblem(platform, objective="maxmin")
>>> solver.solve(problem).value > 0
True

Batch / parallel campaigns
--------------------------
``Solver.solve_many`` solves many independent instances — sharing the
solver's warm state inline, or fanning out over worker processes with
``SolverConfig(jobs=N)``; ``Solver.sweep`` runs Section-6 style grids
with checkpoint/resume. Every task derives its seed by stateless
``SeedSequence`` spawning, so results are **bitwise-identical** for any
``jobs``, chunking or resume pattern — parallelism only changes
wall-clock time, never a single float.

>>> problems = [SteadyStateProblem(platform, objective=o)
...             for o in ("maxmin", "sum")]
>>> [r.value > 0 for r in Solver.for_method("greedy").solve_many(
...      problems, rng=0)]
[True, True]

Legacy one-call forms (``solve``, ``solve_many``,
``repro.experiments.run_sweep``) remain as thin shims over the facade
with bitwise-identical output.
"""

from repro.api import (
    ScenarioInfo,
    ScenarioRegistry,
    SolveReport,
    Solver,
    SolverConfig,
    SweepAccumulator,
    TelemetryOptions,
    available_scenarios,
    build_scenario,
    register_scenario,
    scenario_info,
    scenario_registry,
)
from repro.dynamic import (
    DisruptionReport,
    DynamicOptions,
    EventTrace,
    OnlineScheduler,
    PlatformEvent,
)
from repro.core import (
    Allocation,
    Application,
    MAXMIN,
    SUM,
    SteadyStateProblem,
    ViolationReport,
    allocation_violations,
    applications_for_platform,
    available_methods,
    get_objective,
    method_info,
    solve,
    validate_allocation,
)
from repro.platform import (
    BackboneLink,
    CapacityLedger,
    Cluster,
    Platform,
    PlatformSpec,
    Route,
    fully_connected_platform,
    generate_platform,
    line_platform,
    load_platform,
    platform_fingerprint,
    save_platform,
    star_platform,
)
from repro.parallel import (
    CampaignEngine,
    QuarantineError,
    RetryPolicy,
    solve_many,
)
from repro.util.errors import (
    InfeasibleError,
    PlatformError,
    ReproError,
    RoutingError,
    ScheduleError,
    SimulationError,
    SolverError,
    UnboundedError,
    ValidationError,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # solver facade
    "Solver",
    "SolverConfig",
    "SolveReport",
    "TelemetryOptions",
    # scenario registry
    "ScenarioRegistry",
    "ScenarioInfo",
    "scenario_registry",
    "register_scenario",
    "available_scenarios",
    "scenario_info",
    "build_scenario",
    # dynamic re-scheduling
    "DynamicOptions",
    "EventTrace",
    "PlatformEvent",
    "OnlineScheduler",
    "DisruptionReport",
    # core
    "Allocation",
    "Application",
    "MAXMIN",
    "SUM",
    "SteadyStateProblem",
    "ViolationReport",
    "allocation_violations",
    "applications_for_platform",
    "available_methods",
    "method_info",
    "get_objective",
    "solve",
    "validate_allocation",
    # platform
    "BackboneLink",
    "CapacityLedger",
    "Cluster",
    "Platform",
    "PlatformSpec",
    "Route",
    "fully_connected_platform",
    "generate_platform",
    "line_platform",
    "load_platform",
    "platform_fingerprint",
    "save_platform",
    "star_platform",
    # parallel campaigns
    "CampaignEngine",
    "solve_many",
    "SweepAccumulator",
    "RetryPolicy",
    "QuarantineError",
    # errors
    "InfeasibleError",
    "PlatformError",
    "ReproError",
    "RoutingError",
    "ScheduleError",
    "SimulationError",
    "SolverError",
    "UnboundedError",
    "ValidationError",
]
