"""repro — steady-state scheduling of multiple divisible-load applications
on large-scale platforms.

A full reproduction of L. Marchal, Y. Yang, H. Casanova, Y. Robert,
*A realistic network/application model for scheduling divisible loads on
large-scale platforms* (IPDPS 2005 / INRIA RR-5197): the multi-cluster
platform model with realistic bandwidth sharing, the steady-state linear
program with SUM and MAXMIN objectives, the NP-completeness reduction,
the G / LPR / LPRG / LPRR heuristics, periodic-schedule reconstruction,
a flow-level simulator, and the full Section-6 evaluation harness.

Quickstart
----------
>>> from repro import PlatformSpec, generate_platform, SteadyStateProblem, solve
>>> platform = generate_platform(
...     PlatformSpec(n_clusters=6, connectivity=0.5, heterogeneity=0.4,
...                  mean_g=250, mean_bw=30, mean_max_connect=10),
...     rng=42)
>>> problem = SteadyStateProblem(platform, objective="maxmin")
>>> result = solve(problem, method="lprg")
>>> result.value > 0
True

Batch / parallel campaigns
--------------------------
Many independent instances go through :func:`solve_many`, which shares
one LP-variable index per platform and can fan out over worker
processes; the Section-6 sweeps accept ``jobs=N`` the same way
(``run_sweep(..., jobs=4)``, or ``python -m repro.experiments headline
--jobs 4``) plus ``checkpoint=``/``resume=`` for interrupted campaigns.
Every task derives its seed by stateless ``SeedSequence`` spawning, so
parallel results are **bitwise-identical** to serial ones — ``jobs``
only changes wall-clock time, never a single float.

>>> from repro import solve_many
>>> problems = [SteadyStateProblem(platform, objective=o)
...             for o in ("maxmin", "sum")]
>>> [r.value > 0 for r in solve_many(problems, method="greedy", rng=0)]
[True, True]
"""

from repro.core import (
    Allocation,
    Application,
    MAXMIN,
    SUM,
    SteadyStateProblem,
    ViolationReport,
    allocation_violations,
    applications_for_platform,
    available_methods,
    get_objective,
    solve,
    validate_allocation,
)
from repro.platform import (
    BackboneLink,
    CapacityLedger,
    Cluster,
    Platform,
    PlatformSpec,
    Route,
    fully_connected_platform,
    generate_platform,
    line_platform,
    load_platform,
    save_platform,
    star_platform,
)
from repro.parallel import CampaignEngine, solve_many
from repro.util.errors import (
    InfeasibleError,
    PlatformError,
    ReproError,
    RoutingError,
    ScheduleError,
    SimulationError,
    SolverError,
    UnboundedError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Allocation",
    "Application",
    "MAXMIN",
    "SUM",
    "SteadyStateProblem",
    "ViolationReport",
    "allocation_violations",
    "applications_for_platform",
    "available_methods",
    "get_objective",
    "solve",
    "validate_allocation",
    # platform
    "BackboneLink",
    "CapacityLedger",
    "Cluster",
    "Platform",
    "PlatformSpec",
    "Route",
    "fully_connected_platform",
    "generate_platform",
    "line_platform",
    "load_platform",
    "save_platform",
    "star_platform",
    # parallel campaigns
    "CampaignEngine",
    "solve_many",
    # errors
    "InfeasibleError",
    "PlatformError",
    "ReproError",
    "RoutingError",
    "ScheduleError",
    "SimulationError",
    "SolverError",
    "UnboundedError",
    "ValidationError",
]
