"""Seedable random-number-generator plumbing.

All stochastic code in :mod:`repro` (platform generation, randomized
rounding, simulation jitter) takes a ``rng`` argument that may be

* ``None`` - use a fresh, OS-seeded generator,
* an ``int`` - deterministic seed,
* an existing :class:`numpy.random.Generator` - used as-is.

Reproducibility of parallel or repeated experiments is obtained with
:func:`spawn_rngs`, which derives independent child generators from a
single seed using NumPy's ``SeedSequence.spawn`` mechanism (the approach
recommended by the NumPy docs for parallel streams).
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn_rngs(seed: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    When ``seed`` is already a generator, children are spawned from its
    bit generator's seed sequence so repeated calls keep advancing.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    ss = np.random.SeedSequence(seed if seed is None else int(seed))
    return [np.random.default_rng(child) for child in ss.spawn(n)]
