"""Seedable random-number-generator plumbing.

All stochastic code in :mod:`repro` (platform generation, randomized
rounding, simulation jitter) takes a ``rng`` argument that may be

* ``None`` - use a fresh, OS-seeded generator,
* an ``int`` - deterministic seed,
* an existing :class:`numpy.random.Generator` - used as-is.

Reproducibility of parallel or repeated experiments is obtained with
:func:`spawn_rngs`, which derives independent child generators from a
single seed using NumPy's ``SeedSequence.spawn`` mechanism (the approach
recommended by the NumPy docs for parallel streams).
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn_rngs(seed: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    When ``seed`` is already a generator, children are spawned from its
    bit generator's seed sequence so repeated calls keep advancing.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    ss = np.random.SeedSequence(seed if seed is None else int(seed))
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def seed_sequence_of(
    rng: "int | np.random.Generator | np.random.SeedSequence | None" = None,
) -> np.random.SeedSequence:
    """Coerce ``rng`` into the :class:`numpy.random.SeedSequence` it was
    (or would be) built from.

    Unlike :func:`ensure_rng` this never draws entropy from an existing
    generator's *stream*: a generator maps to the seed sequence that
    created it, so a generator and its seed describe the same campaign.
    """
    if rng is None:
        return np.random.SeedSequence()
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        ss = rng.bit_generator.seed_seq
        if not isinstance(ss, np.random.SeedSequence):  # pragma: no cover
            raise TypeError(f"generator {rng!r} has no SeedSequence seed")
        return ss
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a seed sequence")


def child_seed_sequence(
    parent: np.random.SeedSequence, index: int
) -> np.random.SeedSequence:
    """The ``index``-th spawn child of ``parent``, derived *statelessly*.

    ``SeedSequence.spawn`` mutates the parent (its ``n_children_spawned``
    counter), so two call sites spawning from the same object get
    different children depending on call order. This function instead
    constructs the child directly from ``(entropy, spawn_key + (index,))``
    — the exact same child ``spawn`` would produce on a fresh parent —
    which makes seed derivation a pure function of ``(parent, index)``.
    That purity is what lets serial and parallel sweep execution, and
    checkpoint resume, reproduce identical random streams.
    """
    if index < 0:
        raise ValueError(f"child index must be >= 0, got {index}")
    return np.random.SeedSequence(
        entropy=parent.entropy,
        spawn_key=tuple(parent.spawn_key) + (int(index),),
        pool_size=parent.pool_size,
    )


def spawn_seed_sequences(
    rng: "int | np.random.Generator | np.random.SeedSequence | None", n: int
) -> list[np.random.SeedSequence]:
    """``n`` stateless spawn children of ``rng`` (see
    :func:`child_seed_sequence`). Repeated calls with the same argument
    return identical children, unlike :func:`spawn_rngs`."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    parent = seed_sequence_of(rng)
    return [child_seed_sequence(parent, i) for i in range(n)]
