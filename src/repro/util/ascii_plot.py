"""ASCII line plots for terminal-friendly figure reproduction.

The paper's Figures 5-7 are line plots; matplotlib is not available in
the offline environment, so the experiment harness renders each figure
as an ASCII grid plus the underlying numeric series (the series is the
artifact recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_series_plot(
    series: "Mapping[str, Sequence[tuple[float, float]]]",
    width: int = 60,
    height: int = 18,
    title: str = "",
    logy: bool = False,
) -> str:
    """Render named (x, y) series on a shared-axis character grid.

    Parameters
    ----------
    series:
        Mapping from legend label to a sequence of ``(x, y)`` points.
    logy:
        Plot ``log10(y)``; non-positive y values are dropped.
    """
    points: dict[str, list[tuple[float, float]]] = {}
    for name, pts in series.items():
        kept = []
        for x, y in pts:
            if logy:
                if y <= 0:
                    continue
                y = math.log10(y)
            kept.append((float(x), float(y)))
        if kept:
            points[name] = kept
    if not points:
        return f"{title}\n(no data)"

    xs = [x for pts in points.values() for x, _ in pts]
    ys = [y for pts in points.values() for _, y in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(points.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            col = round((x - xmin) / (xmax - xmin) * (width - 1))
            row = round((y - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = marker

    ylab = "log10(y)" if logy else "y"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylab} in [{ymin:.3g}, {ymax:.3g}]   x in [{xmin:.3g}, {xmax:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(points)
    )
    lines.append(legend)
    return "\n".join(lines)
