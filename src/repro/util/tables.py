"""Minimal text-table renderer for experiment reports.

The experiment harness prints paper-style tables to the terminal; this
keeps the library free of plotting dependencies while still producing
readable artifacts for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


class TextTable:
    """Fixed-width text table with a header row.

    Example
    -------
    >>> t = TextTable(["K", "ratio"])
    >>> t.add_row([5, 0.913])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    K | ratio
    --+------
    5 | 0.913
    """

    def __init__(self, columns: Sequence[str], float_fmt: str = ".3f"):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.float_fmt = float_fmt
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [_fmt(v, self.float_fmt) for v in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)).rstrip()
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in self.rows:
            lines.append(
                " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
