"""Shared utility substrate: errors, RNG handling, rationals, timing, text output.

These modules are deliberately dependency-light; everything else in
:mod:`repro` builds on top of them.
"""

from repro.util.errors import (
    ReproError,
    PlatformError,
    RoutingError,
    SolverError,
    InfeasibleError,
    UnboundedError,
    ValidationError,
    ScheduleError,
    SimulationError,
)
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.rational import (
    as_fraction,
    lcm_many,
    common_period,
    fractionize,
)
from repro.util.timing import Timer, timed
from repro.util.tables import TextTable
from repro.util.ascii_plot import ascii_series_plot

__all__ = [
    "ReproError",
    "PlatformError",
    "RoutingError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "ValidationError",
    "ScheduleError",
    "SimulationError",
    "ensure_rng",
    "spawn_rngs",
    "as_fraction",
    "lcm_many",
    "common_period",
    "fractionize",
    "Timer",
    "timed",
    "TextTable",
    "ascii_series_plot",
]
