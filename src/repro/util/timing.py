"""Legacy shim — the timing utilities live in :mod:`repro.obs.timing`.

Kept so existing imports (``from repro.util.timing import Timer``)
keep working; new code should import from :mod:`repro.obs`.
"""

from __future__ import annotations

from repro.obs.timing import Timer, timed

__all__ = ["Timer", "timed"]
