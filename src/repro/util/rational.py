"""Rational-arithmetic helpers for periodic-schedule reconstruction.

Section 3.2 of the paper rebuilds a periodic schedule from a rational
allocation by writing every ``alpha_{k,l}`` as ``u/v`` and setting the
period to ``Tp = lcm(v)``. LP solvers hand back floats, so we first snap
floats to nearby fractions with a bounded denominator
(:func:`as_fraction`), then compute the common period
(:func:`common_period`).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Mapping

import numpy as np


def as_fraction(x: float, max_denominator: int = 10**6) -> Fraction:
    """Snap a float to the closest fraction with denominator <= ``max_denominator``.

    Values within one part in 1e-12 of an integer are snapped exactly so
    that e.g. ``2.9999999999997`` becomes ``3`` rather than an enormous
    fraction.
    """
    if not math.isfinite(x):
        raise ValueError(f"cannot convert non-finite value {x} to a fraction")
    nearest = round(x)
    if abs(x - nearest) <= 1e-12 * max(1.0, abs(x)):
        return Fraction(int(nearest))
    return Fraction(x).limit_denominator(max_denominator)


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers.

    The LCM of an empty iterable is 1 (the identity of ``lcm``).
    """
    out = 1
    for v in values:
        v = int(v)
        if v <= 0:
            raise ValueError(f"lcm requires positive integers, got {v}")
        out = out * v // math.gcd(out, v)
    return out


def fractionize(
    values: "np.ndarray | Iterable[float]", max_denominator: int = 10**4
) -> "dict[tuple[int, ...], Fraction]":
    """Convert a dense array of floats into a sparse dict of fractions.

    Entries equal to zero (after snapping) are omitted, which keeps the
    period computation over sparse allocations cheap.
    """
    arr = np.asarray(values, dtype=float)
    out: dict[tuple[int, ...], Fraction] = {}
    for idx in np.ndindex(arr.shape):
        frac = as_fraction(float(arr[idx]), max_denominator)
        if frac != 0:
            out[idx] = frac
    return out


def common_period(fractions: "Mapping[object, Fraction] | Iterable[Fraction]") -> int:
    """Smallest ``Tp`` such that ``f * Tp`` is an integer for every ``f``.

    This is the schedule period of Section 3.2: ``Tp = lcm_{k,l}(v_{k,l})``
    where ``alpha_{k,l} = u_{k,l} / v_{k,l}`` in lowest terms.
    """
    if isinstance(fractions, Mapping):
        fractions = fractions.values()
    denominators = [f.denominator for f in fractions]
    if not denominators:
        return 1
    return lcm_many(denominators)
