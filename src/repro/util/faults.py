"""Deterministic fault injection: reproducible chaos for campaigns.

Production-scale sweep campaigns die in ways unit tests rarely
exercise: a worker process is OOM-killed mid-chunk, a shard host hangs,
a checkpoint tail is torn by a power cut, a network hiccup surfaces as
a transient ``OSError``. The supervision layer (engine retries,
:mod:`repro.distrib.supervise`) exists to absorb exactly these events —
and this module makes every one of them *injectable on demand and
reproducible bit for bit*, so the recovery paths are tested as
first-class code rather than by ad-hoc ``SIGKILL`` scripts.

A :class:`FaultPlan` is a schema-validated list of :class:`FaultRule`
entries. Whether a rule fires for a given task or shard is a pure
function of the plan seed and the task/shard *identity* (task id string
or shard index) — never of wall-clock time, pids, or iteration order —
so the same plan produces the same faults whether the campaign runs
serially, on a process pool, or across subprocess shards, and whether
it is run today or replayed in CI next year.

Fault kinds
-----------
task scope (applied by :class:`~repro.parallel.engine.CampaignEngine`
just before the worker runs a task):

* ``error``   — raise :class:`TransientFaultError` (classified
  transient: the engine's retry policy absorbs it);
* ``fatal``   — raise :class:`InjectedTaskError` (classified
  deterministic: retried never, quarantined instead);
* ``delay``   — sleep ``seconds`` (makes stragglers);
* ``crash``   — ``os._exit``: kills the worker process (pool) or the
  whole shard interpreter (subprocess backend).

shard scope (applied by :func:`repro.distrib.runner.run_shard` as the
shard folds tasks):

* ``kill``    — after ``after_tasks`` folded tasks, die by raising
  :class:`InjectedShardKill`; optionally corrupt the checkpoint tail
  (``corrupt_tail``) and/or drop the state sidecar (``drop_state``)
  first, simulating torn writes;
* ``stall``   — after ``after_tasks`` folded tasks, sleep ``seconds``:
  the shard's heartbeat goes stale and the supervisor's straggler
  detection can steal its remaining range.

Propagation
-----------
Plans travel as JSON files. Passing one explicitly works in-process;
the environment variable :data:`FAULT_PLAN_ENV` (``REPRO_FAULT_PLAN``,
holding the file path) reaches process-pool workers and subprocess
shards through inherited environment, which is how one plan governs a
whole multi-process campaign.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import ReproError

#: environment variable naming the JSON fault-plan file for this run
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: schema version of the on-disk plan format
FAULT_PLAN_VERSION = 1

#: process exit code used by injected ``crash`` faults (distinctive, so
#: a test asserting on it cannot confuse an injected crash with a real one)
CRASH_EXIT_CODE = 73

_TASK_FAULTS = ("error", "fatal", "delay", "crash")
_SHARD_FAULTS = ("kill", "stall")


class FaultError(ReproError):
    """A fault plan is malformed (schema, field, or value errors)."""


class TransientFaultError(ReproError):
    """Injected *transient* task failure — the retryable kind.

    The engine classifies this like an infrastructure hiccup
    (``OSError``/``TimeoutError``): with a retry policy, the task is
    retried with backoff; without one, it fails the campaign.
    """


class InjectedTaskError(ReproError):
    """Injected *deterministic* task failure — the non-retryable kind.

    Stands in for a genuine bug in a task: retrying cannot help, so a
    quarantining retry policy records it and completes the rest of the
    campaign instead of crashing it.
    """


class InjectedShardKill(BaseException):
    """Injected shard death, raised mid-run inside a shard.

    Deliberately a ``BaseException``: nothing in the task path may
    absorb it, exactly as nothing absorbs a real ``SIGKILL``. In a
    subprocess shard it surfaces as a nonzero exit; inline it unwinds
    to the supervisor, which classifies it as a transient crash.
    """


def _stable_hash(identity: "str | int") -> int:
    """64-bit stable hash of a task/shard identity (never ``hash()``,
    which is salted per-process and would break cross-process plans)."""
    digest = hashlib.sha256(str(identity).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; see the module docstring for fault kinds.

    A rule targets either one exact identity (``match``: a task id such
    as ``"2/0"`` or a shard index) or a deterministic pseudo-random
    subset (``p``: each identity is in or out by a draw seeded from the
    plan seed, the rule's position, and the identity — never the
    clock). ``times`` bounds how many *attempts* the rule affects: with
    ``times=1`` a retried task succeeds on its second attempt, which is
    how recovery paths are exercised end-to-end.
    """

    scope: str                      # "task" | "shard"
    fault: str                      # kind, see _TASK_FAULTS/_SHARD_FAULTS
    match: "str | int | None" = None
    p: "float | None" = None
    times: int = 1
    seconds: float = 0.0            # delay/stall duration
    after_tasks: int = 0            # kill/stall trigger (tasks folded)
    corrupt_tail: bool = False      # kill: append garbage to the checkpoint
    drop_state: bool = False        # kill: unlink the state sidecar

    def __post_init__(self):
        if self.scope not in ("task", "shard"):
            raise FaultError(
                f"fault rule scope must be 'task' or 'shard', got "
                f"{self.scope!r}"
            )
        valid = _TASK_FAULTS if self.scope == "task" else _SHARD_FAULTS
        if self.fault not in valid:
            raise FaultError(
                f"unknown {self.scope} fault {self.fault!r}; valid: "
                f"{', '.join(valid)}"
            )
        if (self.match is None) == (self.p is None):
            raise FaultError(
                f"fault rule needs exactly one of match= or p= "
                f"(got match={self.match!r}, p={self.p!r})"
            )
        if self.p is not None and not 0.0 < float(self.p) <= 1.0:
            raise FaultError(f"fault rule p must be in (0, 1], got {self.p}")
        if self.times < 1:
            raise FaultError(f"fault rule times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise FaultError(
                f"fault rule seconds must be >= 0, got {self.seconds}"
            )
        if self.after_tasks < 0:
            raise FaultError(
                f"fault rule after_tasks must be >= 0, got {self.after_tasks}"
            )
        if (self.corrupt_tail or self.drop_state) and self.fault != "kill":
            raise FaultError(
                "corrupt_tail/drop_state only apply to shard 'kill' faults"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {"scope": self.scope, "fault": self.fault}
        if self.match is not None:
            out["match"] = self.match
        if self.p is not None:
            out["p"] = self.p
        if self.times != 1:
            out["times"] = self.times
        if self.seconds:
            out["seconds"] = self.seconds
        if self.after_tasks:
            out["after_tasks"] = self.after_tasks
        if self.corrupt_tail:
            out["corrupt_tail"] = True
        if self.drop_state:
            out["drop_state"] = True
        return out

    _FIELDS = (
        "scope", "fault", "match", "p", "times", "seconds", "after_tasks",
        "corrupt_tail", "drop_state",
    )

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise FaultError(f"fault rule must be an object, got {data!r}")
        unknown = sorted(set(data) - set(cls._FIELDS))
        if unknown:
            raise FaultError(
                f"unknown fault rule field(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if "times" in kwargs:
            kwargs["times"] = int(kwargs["times"])
        if "seconds" in kwargs:
            kwargs["seconds"] = float(kwargs["seconds"])
        if "after_tasks" in kwargs:
            kwargs["after_tasks"] = int(kwargs["after_tasks"])
        if "p" in kwargs and kwargs["p"] is not None:
            kwargs["p"] = float(kwargs["p"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, schema-versioned collection of :class:`FaultRule`.

    The plan itself is stateless: callers pass the current *attempt*
    number (1-based) for the task/shard at hand, and the plan answers
    which rules fire — the answer depends only on ``(seed, rule,
    identity, attempt)``.
    """

    seed: int = 0
    rules: "tuple[FaultRule, ...]" = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultError(f"not a FaultRule: {rule!r}")

    # ------------------------------------------------------------------
    def _fires(self, rule: FaultRule, rule_index: int,
               identity: "str | int", attempt: int) -> bool:
        if attempt > rule.times:
            return False
        if rule.match is not None:
            return str(rule.match) == str(identity)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=int(self.seed),
                spawn_key=(rule_index, _stable_hash(identity)),
            )
        )
        return bool(rng.random() < float(rule.p))

    def _matching(self, scope: str, identity: "str | int",
                  attempt: int) -> list[FaultRule]:
        return [
            rule
            for i, rule in enumerate(self.rules)
            if rule.scope == scope and self._fires(rule, i, identity, attempt)
        ]

    def task_rules(self, task_id: str, attempt: int = 1) -> list[FaultRule]:
        """Task-scope rules firing for ``task_id`` on this attempt."""
        return self._matching("task", task_id, attempt)

    def shard_rules(self, shard_index: int, attempt: int = 1) -> list[FaultRule]:
        """Shard-scope rules firing for ``shard_index`` on this attempt."""
        return self._matching("shard", shard_index, attempt)

    def apply_task_faults(self, task_id: str, attempt: int = 1) -> None:
        """Inject this attempt's task faults (called by the engine,
        worker-side, immediately before the task runs)."""
        for rule in self.task_rules(task_id, attempt):
            if rule.fault == "delay":
                if rule.seconds:
                    time.sleep(rule.seconds)
            elif rule.fault == "crash":
                os._exit(CRASH_EXIT_CODE)
            elif rule.fault == "error":
                raise TransientFaultError(
                    f"injected transient fault: task {task_id!r} "
                    f"(attempt {attempt})"
                )
            elif rule.fault == "fatal":
                raise InjectedTaskError(
                    f"injected deterministic fault: task {task_id!r} "
                    f"(attempt {attempt})"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "fault-plan",
            "version": FAULT_PLAN_VERSION,
            "seed": int(self.seed),
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or data.get("kind") != "fault-plan":
            raise FaultError(
                f"not a fault plan (kind={data.get('kind') if isinstance(data, dict) else data!r})"
            )
        if data.get("version") != FAULT_PLAN_VERSION:
            raise FaultError(
                f"unsupported fault plan version {data.get('version')!r} "
                f"(expected {FAULT_PLAN_VERSION})"
            )
        unknown = sorted(set(data) - {"kind", "version", "seed", "rules"})
        if unknown:
            raise FaultError(
                f"unknown fault plan field(s): {', '.join(unknown)}"
            )
        rules = data.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise FaultError(f"fault plan rules must be a list, got {rules!r}")
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in rules),
        )

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "FaultPlan":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise FaultError(f"fault plan {path} does not exist") from None
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan {path} is not valid JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The ambient plan, if :data:`FAULT_PLAN_ENV` names one.

        This is how a plan reaches pool workers and subprocess shards:
        they inherit the environment, read the same file, and derive
        the same deterministic decisions.
        """
        path = os.environ.get(FAULT_PLAN_ENV)
        if not path:
            return None
        return cls.load(path)


def transient_exception_types() -> "tuple[type, ...]":
    """Exception classes the retry machinery treats as transient."""
    return (TransientFaultError, OSError, ConnectionError, TimeoutError)


def is_transient_exception(exc: BaseException) -> bool:
    """Classify an exception: retryable infrastructure failure or not.

    The deliberately conservative rule: only failure modes that are
    plausibly environmental (injected transients, OS/IO/timeout errors)
    are transient; everything else — and in particular any
    task-raised ``ValueError``/``SolverError``-style failure — is
    deterministic, because a pure task given the same payload will
    raise it again.
    """
    return isinstance(exc, transient_exception_types())


def corrupt_checkpoint_tail(checkpoint_path: "str | Path",
                            garbage: bytes = b'{"torn-wr') -> None:
    """Append a torn half-record to a checkpoint file (kill faults).

    Mimics a crash mid-``write``: the checkpoint's recovery path must
    truncate back to the last valid record on resume.
    """
    path = Path(checkpoint_path)
    if path.exists():
        with path.open("ab") as fh:
            fh.write(garbage)


def summarize_rules(rules: "Iterable[FaultRule] | Sequence[FaultRule]") -> str:
    """Human-oriented one-line summary, for logs and error messages."""
    parts = []
    for rule in rules:
        target = (
            f"match={rule.match!r}" if rule.match is not None
            else f"p={rule.p}"
        )
        parts.append(f"{rule.scope}:{rule.fault}({target}, times={rule.times})")
    return "; ".join(parts) or "<no rules>"
