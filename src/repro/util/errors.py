"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by :mod:`repro`."""


class PlatformError(ReproError):
    """A platform description is structurally invalid (dangling router,
    negative capacity, duplicate cluster name, ...)."""


class RoutingError(PlatformError):
    """A route was requested between clusters that the fixed routing
    tables do not connect."""


class SolverError(ReproError):
    """An LP/MILP backend failed for a reason other than infeasibility."""


class InfeasibleError(SolverError):
    """The (M)LP instance admits no feasible point."""


class UnboundedError(SolverError):
    """The (M)LP instance is unbounded above."""


class ValidationError(ReproError):
    """An allocation violates the steady-state constraints (1)-(4).

    Attributes
    ----------
    violations:
        Human-readable description of each violated constraint.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        summary = "; ".join(self.violations[:5])
        more = len(self.violations) - 5
        if more > 0:
            summary += f" (+{more} more)"
        super().__init__(f"invalid allocation: {summary}")


class ScheduleError(ReproError):
    """Periodic schedule reconstruction failed (e.g. period overflow)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
