"""E-shard — sharded-campaign merge determinism gate (repro.distrib).

The gate of the sharded orchestration subsystem: one calibrated sweep is
run through every combination of ``shards in {1, 2, 5}`` x executor
backend ``{inline, process, subprocess}``, and each merged aggregate
must be **bitwise-identical** to the serial ``jobs=1`` reference fold —
the runtime table is the one exclusion, because wall clock is the only
value that legitimately differs between separate executions of a real
sweep (the synthetic-row partition property in
``tests/test_distrib_merge.py`` covers the literally-every-byte case).

On top of the grid, the crash gate: shard 0 of a subprocess-backend
campaign is **killed mid-run** (SIGKILL once its checkpoint holds at
least one task record), the campaign is resumed, and the merged result
must again match the reference — per-shard checkpoints + the exactly
associative merge make crash/resume patterns invisible in the output.

Results land in ``BENCH_shard_merge.json`` (repo root); the sweep grows
under ``REPRO_FULL=1``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.distrib import (
    build_shard_manifests,
    manifest_path_for,
    run_sharded_sweep,
    write_manifests,
)
from repro.experiments import run_sweep, sample_settings
from repro.experiments.config import DEFAULT_SCENARIO
from repro.parallel.stream import SweepAccumulator
from repro.util.rng import seed_sequence_of

from benchmarks.conftest import banner, full_scale

_OUT = Path(__file__).resolve().parents[1] / "BENCH_shard_merge.json"

SHARD_COUNTS = (1, 2, 5)
BACKENDS = ("inline", "process", "subprocess")
SEED = 1234


def _sweep_def():
    n_settings = 8 if full_scale() else 4
    return dict(
        settings=sample_settings(n_settings, rng=SEED, k_values=[3, 4]),
        scenario=DEFAULT_SCENARIO,
        methods=("greedy", "lprg"),
        objectives=("maxmin", "sum"),
        n_platforms=3 if full_scale() else 2,
    )


def _tables_sans_runtime(agg: SweepAccumulator) -> str:
    tables = agg.tables()
    tables.pop("runtime_mean_by_k")
    return json.dumps(tables, sort_keys=True)


def _run_sharded(sweep, n_shards, backend, shard_dir=None, resume=False):
    return run_sharded_sweep(
        sweep["settings"],
        sweep["scenario"],
        sweep["methods"],
        sweep["objectives"],
        sweep["n_platforms"],
        seed_sequence_of(SEED),
        n_shards=n_shards,
        backend=backend,
        shard_dir=shard_dir,
        resume=resume,
    )


def _kill_shard_mid_run(sweep, shard_dir: Path) -> dict:
    """Start shard 0 in its own interpreter, SIGKILL it once its
    checkpoint holds >= 1 task record, and report what happened."""
    import repro

    manifests = build_shard_manifests(
        sweep["settings"], sweep["scenario"], sweep["methods"],
        sweep["objectives"], sweep["n_platforms"], seed_sequence_of(SEED),
        n_shards=2, shard_dir=shard_dir,
    )
    write_manifests(manifests, shard_dir)
    env = os.environ.copy()
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    ckpt = Path(manifests[0].checkpoint_path)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments", "shard", "run",
            str(manifest_path_for(shard_dir, 0)),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    deadline = time.monotonic() + 120.0
    killed = False
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break  # the shard outran us and completed; resume still works
        if ckpt.exists() and ckpt.read_text().count('"kind": "task"') >= 1:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            killed = True
            break
        time.sleep(0.01)
    else:  # pragma: no cover - watchdog
        proc.kill()
        proc.wait()
        raise AssertionError("shard 0 made no checkpoint progress in 120s")
    records = (
        ckpt.read_text().count('"kind": "task"') if ckpt.exists() else 0
    )
    return {
        "killed_mid_run": killed,
        "task_records_at_kill": records,
        "shard_tasks": manifests[0].n_shard_tasks,
    }


def test_shard_merge_bitwise_identical(tmp_path):
    sweep = _sweep_def()
    n_tasks = len(sweep["settings"]) * sweep["n_platforms"]

    t0 = time.perf_counter()
    serial_rows = run_sweep(
        sweep["settings"],
        scenario=sweep["scenario"],
        methods=sweep["methods"],
        objectives=sweep["objectives"],
        n_platforms=sweep["n_platforms"],
        rng=SEED,
        jobs=1,
    )
    serial_seconds = time.perf_counter() - t0
    reference = SweepAccumulator.from_rows(
        serial_rows, methods=sweep["methods"], objectives=sweep["objectives"]
    )
    reference_blob = _tables_sans_runtime(reference)

    banner(
        f"E-shard - sharded campaign merge on {n_tasks} tasks "
        f"({reference.n_rows} rows)",
        "merged aggregates bitwise-identical to the serial fold for any "
        "shard count x backend, incl. kill + resume",
    )
    print(f"serial jobs=1 reference: {serial_seconds:6.2f}s")

    combos = []
    for backend in BACKENDS:
        for n_shards in SHARD_COUNTS:
            t0 = time.perf_counter()
            merged = _run_sharded(sweep, n_shards, backend)
            seconds = time.perf_counter() - t0
            identical = _tables_sans_runtime(merged) == reference_blob
            combos.append(
                {
                    "backend": backend,
                    "shards": n_shards,
                    "seconds": round(seconds, 3),
                    "identical": identical,
                }
            )
            print(
                f"  backend={backend:<10} shards={n_shards}  "
                f"{seconds:6.2f}s  "
                f"{'bitwise-identical' if identical else 'DIVERGED'}"
            )
            assert identical, (
                f"sharded aggregate diverged from the serial reference "
                f"(backend={backend}, shards={n_shards})"
            )

    # --- the crash gate: kill shard 0 mid-run, resume, merge ----------
    shard_dir = tmp_path / "killed-campaign"
    shard_dir.mkdir()
    kill_info = _kill_shard_mid_run(sweep, shard_dir)
    t0 = time.perf_counter()
    resumed = _run_sharded(
        sweep, 2, "subprocess", shard_dir=shard_dir, resume=True
    )
    kill_info["resume_seconds"] = round(time.perf_counter() - t0, 3)
    kill_info["identical"] = _tables_sans_runtime(resumed) == reference_blob
    print(
        f"  kill+resume (subprocess, 2 shards): killed shard 0 at "
        f"{kill_info['task_records_at_kill']}/{kill_info['shard_tasks']} "
        f"tasks (mid-run={kill_info['killed_mid_run']}), resumed in "
        f"{kill_info['resume_seconds']:.2f}s  "
        f"{'bitwise-identical' if kill_info['identical'] else 'DIVERGED'}"
    )
    assert kill_info["identical"], (
        "killed-and-resumed sharded campaign diverged from the serial "
        "reference"
    )

    payload = {
        "benchmark": "shard_merge",
        "full_scale": full_scale(),
        "n_settings": len(sweep["settings"]),
        "n_platforms": sweep["n_platforms"],
        "n_tasks": n_tasks,
        "n_rows": reference.n_rows,
        "serial_seconds": round(serial_seconds, 3),
        "combos": combos,
        "kill_resume": kill_info,
        "all_identical": True,
    }
    _OUT.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"  wrote {_OUT.name}")
