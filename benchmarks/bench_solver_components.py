"""Component micro-benchmarks: LP assembly, backends, simplex stand-in.

Not a paper artifact per se, but the substrate behind Figure 7: it
separates LP *construction* cost from LP *solve* cost and measures our
from-scratch simplex (the lp_solve stand-in) against HiGHS on identical
program-(7) instances.
"""

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments import sample_settings, spec_for
from repro.experiments.config import DEFAULT_SCENARIO, payoffs_for
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.simplex import simplex_solve
from repro.platform.generator import generate_platform

from benchmarks.conftest import banner, full_scale


def _problem(k: int, seed: int = 11):
    setting = sample_settings(1, rng=seed, k_values=[k])[0]
    platform = generate_platform(spec_for(setting), rng=seed)
    payoffs = payoffs_for(setting, DEFAULT_SCENARIO, np.random.default_rng(seed))
    return SteadyStateProblem(platform, payoffs, objective="maxmin")


def test_lp_build(benchmark):
    k = 40 if full_scale() else 20
    problem = _problem(k)
    instance = benchmark(build_lp, problem)
    banner(
        "component - LP matrix assembly",
        "(substrate for Fig. 7; one assembly per LP-based heuristic call)",
    )
    print(
        f"K={k}: {instance.n_vars} variables, {instance.n_rows} rows, "
        f"{instance.A_ub.nnz} non-zeros"
    )


def test_lp_solve_highs(benchmark):
    k = 40 if full_scale() else 20
    instance = build_lp(_problem(k))
    solution = benchmark(solve_lp_scipy, instance)
    banner("component - HiGHS solve of program (7)", "(production backend)")
    print(f"K={k}: optimum {solution.value:.4f}")


def test_simplex_standin_matches_highs(benchmark):
    # Dense tableau: keep it small.
    problem = _problem(5, seed=12)
    instance = build_lp(problem)
    reference = solve_lp_scipy(instance)
    dense = instance.A_ub.toarray()

    result = benchmark.pedantic(
        simplex_solve,
        args=(instance.obj, dense, instance.b_ub, instance.bounds_list()),
        rounds=3,
        iterations=1,
    )
    banner(
        "component - from-scratch simplex (lp_solve stand-in)",
        "paper solved its LPs with the lp_solve Simplex package",
    )
    print(
        f"simplex: {result.value:.6f} in {result.iterations} pivots; "
        f"HiGHS: {reference.value:.6f}"
    )
    assert result.ok
    assert abs(result.value - reference.value) < 1e-6 * max(1.0, abs(reference.value))
