"""E9 — Section 3.2: periodic schedules are actually realizable.

The paper argues analytically that any valid allocation can be executed
as a periodic schedule (compute previous period's deliveries, ship next
period's inputs). This benchmark reconstructs schedules from LPRG
allocations and *executes* them in the flow-level simulator under two
rate disciplines:

* ``reserved`` — every flow gets exactly its steady-state rate, the
  discipline the paper's feasibility argument implicitly assumes; every
  transfer must meet its period deadline;
* ``maxmin`` — the paper's bandwidth-sharing semantics taken at face
  value; individual transfers may finish *after* their period (counted
  as late), yet steady-state throughput still converges to nominal.

Both must achieve the nominal per-application throughput.
"""

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments import sample_settings, spec_for
from repro.experiments.config import DEFAULT_SCENARIO, payoffs_for
from repro.heuristics.base import get_heuristic
from repro.platform.generator import generate_platform
from repro.schedule import build_periodic_schedule
from repro.simulation import FlowSimulator
from repro.simulation.metrics import throughput_ratios
from repro.util.rng import spawn_rngs

from benchmarks.conftest import banner, full_scale


def _simulate(n_platforms: int, k: int, n_periods: int = 8, seed: int = 17):
    settings = sample_settings(n_platforms, rng=seed, k_values=[k])
    results = []
    for setting, rng in zip(settings, spawn_rngs(seed, len(settings))):
        platform = generate_platform(spec_for(setting), rng=rng)
        payoffs = payoffs_for(setting, DEFAULT_SCENARIO, rng)
        problem = SteadyStateProblem(platform, payoffs, objective="maxmin")
        alloc = get_heuristic("lprg").run(problem).allocation
        schedule = build_periodic_schedule(platform, alloc, denominator=500)
        record = {"period": schedule.period}
        for policy in ("reserved", "maxmin"):
            out = FlowSimulator(platform, rate_policy=policy).run(
                schedule, n_periods=n_periods
            )
            ratios = throughput_ratios(out, schedule.throughputs)
            record[policy] = {
                "min_ratio": float(np.min(ratios)),
                "late": out.late_flows,
                "events": out.events,
            }
        results.append(record)
    return results


def test_schedule_realizability(benchmark):
    n_platforms = 6 if full_scale() else 3
    k = 10 if full_scale() else 6
    results = benchmark.pedantic(
        _simulate, args=(n_platforms, k), rounds=1, iterations=1
    )

    banner(
        "E9 / Section 3.2 - periodic-schedule realizability in simulation",
        "steady state: every application computes alpha_k load units per "
        "time unit; first period communicates only, last computes only",
    )
    print(f"{'platform':>8} {'Tp':>6} | {'reserved: ratio/late':>22} | {'maxmin: ratio/late':>20}")
    for i, r in enumerate(results):
        print(
            f"{i:>8} {r['period']:>6} | "
            f"{r['reserved']['min_ratio']:>14.6f} /{r['reserved']['late']:>5} | "
            f"{r['maxmin']['min_ratio']:>12.6f} /{r['maxmin']['late']:>5}"
        )
    for r in results:
        # Reserved rates: the paper's construction, deadline-exact.
        assert r["reserved"]["min_ratio"] >= 1.0 - 1e-9
        assert r["reserved"]["late"] == 0
        # Max-min sharing: may run transfers late, but the steady-state
        # throughput claim still holds.
        assert r["maxmin"]["min_ratio"] >= 1.0 - 1e-9
