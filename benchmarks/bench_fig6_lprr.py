"""E4 — Figure 6: LPRR vs G relative to the LP bound (80 topologies).

Paper claims reproduced: "LPRR achieves objective values very close to
the upper bound" on both objectives, clearly above G on MAXMIN — at the
cost of ~K^2 LP solves (timed in E5/Figure 7).
"""

from repro.experiments import figure6, render_figure

from benchmarks.conftest import banner


def test_figure6(benchmark, scale):
    fig = benchmark.pedantic(
        figure6,
        kwargs=dict(
            k_values=scale["fig6_k"],
            settings_per_k=scale["fig6_settings_per_k"],
            platforms_per_setting=scale["fig6_platforms"],
            rng=13,
        ),
        rounds=1,
        iterations=1,
    )

    banner(
        "E4 / Figure 6 - LPRR and G vs LP bound (small-K topology subset)",
        "LPRR very close to the LP bound on both objectives; well above "
        "G on MAXMIN (paper used 80 topologies, K in {15, 20, 25})",
    )
    print(render_figure(fig))

    series = {name: dict(pts) for name, pts in fig.series.items()}
    for k, v in series["MAXMIN(LPRR)/LP"].items():
        assert v > 0.75, (k, v)  # close to the bound
        assert v >= series["MAXMIN(GREEDY)/LP"][k] - 0.05
    for k, v in series["SUM(LPRR)/LP"].items():
        assert v > 0.8, (k, v)
