"""E10 — Section 4: the NP-completeness reduction, executed.

Reproduces the paper's proof machinery numerically: for random graphs,
the exact optimum of the reduced STEADY-STATE-DIVISIBLE-LOAD instance
equals the maximum-independent-set size (Theorem 1), and Lemma 1 (routes
share a backbone link iff the vertices are adjacent) holds by
construction.
"""

import numpy as np

from repro.complexity import (
    exact_max_independent_set,
    independent_set_from_allocation,
    reduce_mis_to_scheduling,
    verify_lemma1,
)
from repro.complexity.independent_set import random_graph_edges
from repro.heuristics.base import get_heuristic

from benchmarks.conftest import banner


def _verify_reduction(n_vertices: int, n_graphs: int = 4, seed: int = 2):
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n_graphs):
        n = int(rng.integers(3, n_vertices + 1))
        edges = random_graph_edges(n, 0.5, rng)
        inst = reduce_mis_to_scheduling(n, edges, bound=1)
        assert verify_lemma1(inst)
        mis = exact_max_independent_set(n, edges)
        result = get_heuristic("milp").run(inst.problem())
        back = independent_set_from_allocation(inst, result.allocation)
        records.append(
            {
                "n": n,
                "edges": len(edges),
                "mis": len(mis),
                "milp": result.value,
                "recovered": len(back),
                "platform_links": len(inst.platform.links),
            }
        )
    return records


def test_np_hardness_reduction(benchmark, scale):
    records = benchmark.pedantic(
        _verify_reduction, args=(scale["reduction_n"],), rounds=1, iterations=1
    )

    banner(
        "E10 / Section 4 - MIS <-> steady-state throughput equivalence",
        "throughput rho achievable iff an independent set of size rho "
        "exists (Theorem 1); route sharing iff adjacency (Lemma 1)",
    )
    print(f"{'n':>3} {'|E|':>4} {'MIS':>4} {'MILP':>7} {'recovered':>9} {'links':>6}")
    for r in records:
        print(
            f"{r['n']:>3} {r['edges']:>4} {r['mis']:>4} {r['milp']:>7.3f} "
            f"{r['recovered']:>9} {r['platform_links']:>6}"
        )
        assert abs(r["milp"] - r["mis"]) < 1e-6
        assert r["recovered"] == r["mis"]
