"""E5 — Figure 7: running time of G, LPR, LPRG, LPRR vs K (log scale).

Paper claims reproduced (a Pentium III 800MHz produced the absolute
numbers; we compare orderings and growth):
* G is significantly faster than every LP-based heuristic;
* LP, LPR and LPRG cluster together (one LP solve + cheap rounding);
* LPRR is slower by a factor that grows like K^2 (it solves ~K^2 LPs) —
  the paper measured ~1000x at K = 40.
"""

import numpy as np

from repro.experiments import figure7, render_figure

from benchmarks.conftest import banner


def test_figure7(benchmark, scale):
    fig = benchmark.pedantic(
        figure7,
        kwargs=dict(k_values=scale["fig7_k"], rng=5),
        rounds=1,
        iterations=1,
    )

    banner(
        "E5 / Figure 7 - heuristic running times vs K (log scale)",
        "G << LPR ~ LPRG << LPRR; LPRR/LPRG grows ~K^2 (~1000x at K=40 "
        "on the paper's hardware)",
    )
    print(render_figure(fig))

    series = {name: dict(pts) for name, pts in fig.series.items()}
    ks = sorted(series["GREEDY"])
    for k in ks:
        assert series["GREEDY"][k] <= series["LPRG"][k]
        assert series["LPRG"][k] < series["LPRR"][k]
    # LPRR's disadvantage grows with K (the K^2 LP-solve count).
    ratio = fig.notes["lprr_over_lprg"]
    assert ratio[ks[-1]] > ratio[ks[0]] * 0.8  # monotone-ish growth
    assert ratio[ks[-1]] > 10  # orders of magnitude, already at small K
    print(
        f"LPRR/LPRG slowdown: {ratio[ks[0]]:.0f}x at K={ks[0]} -> "
        f"{ratio[ks[-1]]:.0f}x at K={ks[-1]}"
    )
