"""Telemetry subsystem: overhead gates + result invisibility.

PR 10 threads structured tracing and mergeable metrics through the
solver, the campaign engine, the service and the online scheduler. The
contract this benchmark gates:

* **off means off** — with telemetry disabled (the default), the only
  cost on a hot path is an ambient-tracer lookup plus an ``enabled``
  flag check. Measured directly (the check micro-timed, multiplied by
  the checks a warm LPRR solve performs), that cost must stay under
  **1%** of the warm solve time;
* **on stays cheap** — a fully instrumented warm LPRR chain (tracing
  *and* metrics) must run within **5%** of the disabled chain
  (best-of-repeats on both sides, same process, same warm state);
* **telemetry is invisible to results** — solve reports and sweep
  accumulator states are bitwise-identical with telemetry on, off, or
  mixed; span and metric state never reaches a result dict.

Results land in ``BENCH_telemetry.json`` (repo root) so the overhead
trajectory is machine-trackable from this PR on.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Solver, SolverConfig, TelemetryOptions, build_scenario
from repro.experiments.config import sample_settings
from repro.obs.trace import current_tracer

from benchmarks.conftest import banner, full_scale

#: gate: no-op guard cost as a fraction of the warm disabled solve time
MAX_DISABLED_OVERHEAD = 0.01
#: gate: fully-enabled chain vs disabled chain (best-of-repeats ratio)
MAX_ENABLED_OVERHEAD = 0.05

_OUT = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"


def _chain_seconds(solver: Solver, problem, n_solves: int, repeats: int):
    """Best-of-``repeats`` wall time for ``n_solves`` warm solves."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        for seed in range(n_solves):
            report = solver.solve(problem, rng=seed)
        best = min(best, time.perf_counter() - start)
        value = report.value
        if solver.tracer is not None:
            solver.tracer.drain()  # keep retained span trees bounded
    return best, value


def _noop_check_seconds(samples: int = 200_000) -> float:
    """Per-call cost of the disabled-path guard: lookup + flag check."""
    start = time.perf_counter()
    for _ in range(samples):
        if current_tracer().enabled:  # pragma: no cover - always False here
            raise AssertionError("tracer unexpectedly enabled")
    return (time.perf_counter() - start) / samples


def _span_count(problem) -> int:
    """How many spans one warm LPRR solve emits (== guards it crosses)."""
    telemetry = TelemetryOptions(trace=True)
    solver = Solver(SolverConfig(method="lprr", telemetry=telemetry))
    solver.solve(problem, rng=0)  # cold warm-up
    solver.tracer.drain()
    solver.solve(problem, rng=1)
    (root,) = solver.tracer.drain()

    def count(tree) -> int:
        return 1 + sum(count(c) for c in tree.get("children", ()))

    return count(root)


def _scrubbed_sweep_state(telemetry) -> str:
    settings = sample_settings(1, rng=0, k_values=[3])
    accumulator = Solver(
        SolverConfig(stream=True, telemetry=telemetry)
    ).sweep(
        settings, methods=("lprr",), objectives=("maxmin",),
        n_platforms=2, rng=7,
    )
    state = accumulator.state_dict()
    state.pop("runtime_groups")  # measured wall time: differs run-to-run
    return json.dumps(state, sort_keys=True)


def _measure() -> dict:
    n_solves = 40 if full_scale() else 20
    repeats = 7 if full_scale() else 5
    problem = build_scenario("das2", rng=np.random.default_rng(3))

    plain = Solver(SolverConfig(method="lprr"))
    plain.solve(problem, rng=0)  # warm the LP template cache
    disabled_seconds, disabled_value = _chain_seconds(
        plain, problem, n_solves, repeats
    )

    traced = Solver(
        SolverConfig(
            method="lprr",
            telemetry=TelemetryOptions(trace=True, metrics=True),
        )
    )
    traced.solve(problem, rng=0)
    traced.tracer.drain()
    enabled_seconds, enabled_value = _chain_seconds(
        traced, problem, n_solves, repeats
    )

    per_check = _noop_check_seconds()
    checks_per_solve = _span_count(problem)
    disabled_overhead = (
        per_check * checks_per_solve * n_solves / disabled_seconds
    )

    return {
        "n_solves": n_solves,
        "repeats": repeats,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead": enabled_seconds / disabled_seconds - 1.0,
        "noop_check_seconds": per_check,
        "checks_per_solve": checks_per_solve,
        "disabled_overhead": disabled_overhead,
        "values_equal": disabled_value == enabled_value,
        "sweep_state_equal": (
            _scrubbed_sweep_state(None)
            == _scrubbed_sweep_state(TelemetryOptions(trace=True))
            == _scrubbed_sweep_state(
                TelemetryOptions(trace=True, metrics=True)
            )
        ),
    }


def test_telemetry_overhead(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)

    banner(
        "PR 10 / telemetry: zero-overhead off, bounded overhead on",
        "observability must never change a result bit nor slow the warm "
        "path measurably",
    )
    print(f"warm LPRR chain ({data['n_solves']} solves, best of "
          f"{data['repeats']}):")
    print(f"  telemetry off     {1e3 * data['disabled_seconds']:>9.2f} ms")
    print(f"  trace + metrics   {1e3 * data['enabled_seconds']:>9.2f} ms "
          f"({data['enabled_overhead']:+.1%}, gate < "
          f"{MAX_ENABLED_OVERHEAD:.0%})")
    print(f"disabled-path guard: {1e9 * data['noop_check_seconds']:.0f} ns "
          f"x {data['checks_per_solve']} spans/solve = "
          f"{data['disabled_overhead']:.3%} of the warm solve "
          f"(gate < {MAX_DISABLED_OVERHEAD:.0%})")
    print(f"solve values bitwise-equal on/off: {data['values_equal']}")
    print(f"sweep states bitwise-equal on/off/mixed: "
          f"{data['sweep_state_equal']}")

    payload = {
        "bench": "telemetry",
        "full_scale": full_scale(),
        "max_disabled_overhead_gate": MAX_DISABLED_OVERHEAD,
        "max_enabled_overhead_gate": MAX_ENABLED_OVERHEAD,
        "results": data,
    }
    _OUT.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"wrote {_OUT.name}")

    # Regression gates.
    assert data["values_equal"], "telemetry changed a solve result"
    assert data["sweep_state_equal"], "telemetry changed a sweep state"
    assert data["disabled_overhead"] < MAX_DISABLED_OVERHEAD, (
        f"disabled-path guards cost {data['disabled_overhead']:.2%} "
        f"of a warm solve (gate {MAX_DISABLED_OVERHEAD:.0%})"
    )
    assert data["enabled_overhead"] < MAX_ENABLED_OVERHEAD, (
        f"enabled telemetry slowed the warm chain by "
        f"{data['enabled_overhead']:.1%} (gate {MAX_ENABLED_OVERHEAD:.0%})"
    )
