"""Solver facade cross-call reuse: fresh-per-call vs one kept Solver.

The facade's pitch is that a kept :class:`repro.api.Solver` warm-starts
repeated solves of related instances: LP templates (COO assembly),
densified session matrices and variable indices are cached across calls
keyed by platform fingerprint. This benchmark is the regression gate for
that subsystem, on the ROADMAP-shaped workload — a 50-instance
same-platform batch (an LPRR restart campaign: same problem, 50 seeds,
keep the best rounding):

* results must be **bitwise-identical** with and without reuse (the
  cache is value-transparent by construction);
* the reused solver must perform **>= 30% fewer cold LP builds** than
  fresh per-call construction (it does ~98% fewer: 1 vs 50);
* wall-clock is recorded for the trajectory (the build is a small slice
  of an LPRR solve, so the time win is real but modest; the gate is the
  deterministic build count).

Results land in ``BENCH_api_reuse.json`` (repo root).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Solver, SolverConfig, build_scenario

from benchmarks.conftest import banner, full_scale

#: minimum reduction in cold LP builds the kept solver must deliver
MIN_BUILD_REDUCTION = 0.30

_OUT = Path(__file__).resolve().parents[1] / "BENCH_api_reuse.json"


def _signature(report) -> tuple:
    """Hashable bitwise signature of one solve's deterministic output."""
    return (
        report.value,
        report.n_lp_solves,
        report.allocation.alpha.tobytes(),
        report.allocation.beta.tobytes(),
    )


def _campaign(solver_for_call, problem, seeds) -> tuple[list, float, int]:
    """Run the restart campaign; returns (signatures, seconds, cold builds)."""
    solvers = []
    signatures = []
    start = time.perf_counter()
    for seed in seeds:
        solver = solver_for_call()
        solvers.append(solver)
        signatures.append(_signature(solver.solve(problem, rng=int(seed))))
    elapsed = time.perf_counter() - start
    cold_builds = sum(s.state.lp_cache.cold_builds for s in set(solvers))
    return signatures, elapsed, cold_builds


def test_api_reuse_gate():
    n_instances = 200 if full_scale() else 50
    seeds = range(n_instances)
    problem = build_scenario("table1-small", objective="maxmin", rng=42)
    config = SolverConfig(method="lprr", lp_backend="session")

    banner(
        "API reuse: kept Solver vs fresh per-call construction",
        "facade claim: cross-call state reuse, bitwise-transparent",
    )

    # Fresh per-call: a new Solver (cold state) for every restart.
    fresh_sig, fresh_time, fresh_builds = _campaign(
        lambda: Solver(config), problem, seeds
    )

    # Reused: one Solver carries its warm state through the campaign.
    kept = Solver(config)
    reused_sig, reused_time, reused_builds = _campaign(
        lambda: kept, problem, seeds
    )

    assert reused_sig == fresh_sig, (
        "cross-call reuse changed solver output — the LP cache must be "
        "bitwise-transparent"
    )

    build_reduction = 1.0 - reused_builds / fresh_builds
    speedup = fresh_time / reused_time if reused_time > 0 else float("inf")
    stats = kept.state.stats()

    print(f"instances:        {n_instances} (same platform, seeds 0..{n_instances - 1})")
    print(f"cold LP builds:   fresh {fresh_builds}  reused {reused_builds} "
          f"({100 * build_reduction:.1f}% fewer)")
    print(f"template hits:    {stats['build_hits']}  dense hits: {stats['dense_hits']}")
    print(f"wall-clock:       fresh {fresh_time:.3f}s  reused {reused_time:.3f}s "
          f"({speedup:.2f}x)")
    print(f"bitwise identical results: yes ({len(set(fresh_sig))} distinct roundings)")

    assert reused_builds < fresh_builds
    assert build_reduction >= MIN_BUILD_REDUCTION, (
        f"expected >= {MIN_BUILD_REDUCTION:.0%} fewer cold LP builds, "
        f"got {build_reduction:.1%}"
    )

    _OUT.write_text(
        json.dumps(
            {
                "workload": "lprr restart campaign, same platform",
                "n_instances": n_instances,
                "fresh": {"cold_builds": fresh_builds, "seconds": fresh_time},
                "reused": {
                    "cold_builds": reused_builds,
                    "seconds": reused_time,
                    "state": stats,
                },
                "build_reduction": build_reduction,
                "speedup": speedup,
                "bitwise_identical": True,
                "gate_min_build_reduction": MIN_BUILD_REDUCTION,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {_OUT.name}")


def test_index_adoption_across_equal_platforms():
    """Equal-but-distinct platform objects share one variable index."""
    from repro.platform import load_platform, platform_fingerprint, save_platform
    import tempfile

    problem = build_scenario("das2")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "p.json"
        save_platform(problem.platform, path)
        clones = [load_platform(path) for _ in range(3)]

    assert len({platform_fingerprint(c) for c in clones}) == 1
    solver = Solver(SolverConfig(method="lprg"))
    from repro import SteadyStateProblem

    values = {
        solver.solve(SteadyStateProblem(c, problem.payoffs)).value
        for c in clones
    }
    assert len(values) == 1
    assert solver.state.index_adoptions == len(clones) - 1
    # The adopted index is actually reused, not rebuilt: every clone's
    # memo holds the same VariableIndex object.
    memos = [c.__dict__["_index_memo"] for c in clones]
    shared = {id(m[True]) for m in memos if True in m}
    assert len(shared) == 1
