"""Revised-simplex core: factorized warm re-solves vs cold HiGHS.

The revised engine (``repro/lp/revised.py`` over ``repro/lp/basis_lu.py``)
retired the dense-tableau size cliff: warm re-solves ride one persistent
LU factorization (eta updates + periodic refactorization) and a carried
bounded-variable basis, so the session path is supposed to beat a cold
HiGHS solve per step at *every* instance size. This benchmark is the
regression gate for that core, on the two chain shapes that matter:

* **LPRR pin chains at large K** (~K(K-1) solves, one ``lb == ub`` pin
  per solve): the warm session must beat the cold-HiGHS-per-solve
  reference (``lp_backend="scipy"``) in wall-clock at every K — the
  sizes here start where the old tableau cliff used to force the
  fallback — while producing valid, LP-bounded allocations.
* **Branch-and-bound re-solve chains** (one beta bound flipped per
  node, dual-simplex repair of the parent basis): warm-session B&B must
  agree with the cold-HiGHS-per-node reference on the optimum and beat
  it in wall-clock.

Results land in ``BENCH_simplex_core.json`` (repo root); the
``scripts/verify.sh`` gate requires this file to be refreshed by every
verification run.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import PlatformSpec, SteadyStateProblem, generate_platform
from repro.heuristics.base import get_heuristic
from repro.lp.builder import build_lp
from repro.lp.scipy_backend import solve_lp_scipy

from benchmarks.conftest import banner, full_scale

_OUT = Path(__file__).resolve().parents[1] / "BENCH_simplex_core.json"


def _reference_problem(seed: int, k: int) -> SteadyStateProblem:
    """Same platform family as the test fixtures and bench_warmstart."""
    spec = PlatformSpec(
        n_clusters=k,
        connectivity=0.5,
        heterogeneity=0.5,
        mean_g=200.0,
        mean_bw=30.0,
        mean_max_connect=10.0,
        speed_heterogeneity=0.5,
    )
    platform = generate_platform(spec, rng=seed)
    payoffs = np.random.default_rng(seed + 999).uniform(0.8, 1.2, k)
    return SteadyStateProblem(platform, payoffs, objective="maxmin")


def _lprr_leg(k_values, seeds) -> dict:
    """Large-K LPRR pin chains: warm session vs cold HiGHS per solve."""
    lprr = get_heuristic("lprr")
    per_k = {}
    for k in k_values:
        row = {
            "time_session": 0.0,
            "time_scipy": 0.0,
            "iterations": 0,
            "dual_steps": 0,
            "n_warm": 0,
            "n_solves": 0,
        }
        for seed in seeds:
            problem = _reference_problem(seed, k)
            lp_bound = solve_lp_scipy(build_lp(problem)).value
            warm = lprr.run(problem, rng=seed, lp_backend="session")
            ref = lprr.run(problem, rng=seed, lp_backend="scipy")
            for result in (warm, ref):
                assert problem.check(result.allocation).ok
                assert result.value <= lp_bound + 1e-6
            stats = warm.meta["lp_stats"]
            row["time_session"] += warm.runtime
            row["time_scipy"] += ref.runtime
            row["iterations"] += stats["iterations"]
            row["dual_steps"] += stats["dual_steps"]
            row["n_warm"] += stats["n_warm"]
            row["n_solves"] += stats["n_solves"]
        per_k[k] = row
    return per_k


def _bnb_leg(k_values, seeds) -> dict:
    """B&B re-solve chains: warm session nodes vs cold HiGHS nodes."""
    bnb = get_heuristic("bnb")
    per_k = {}
    for k in k_values:
        row = {
            "time_warm": 0.0,
            "time_cold": 0.0,
            "nodes_warm": 0,
            "nodes_cold": 0,
            "value_matches": 0,
            "runs": 0,
        }
        for seed in seeds:
            problem = _reference_problem(seed, k)
            warm = bnb.run(problem, warm_start=True)
            cold = bnb.run(problem, warm_start=False)
            row["runs"] += 1
            row["value_matches"] += int(
                np.isclose(warm.value, cold.value, rtol=1e-5, atol=1e-5)
            )
            row["time_warm"] += warm.runtime
            row["time_cold"] += cold.runtime
            row["nodes_warm"] += warm.n_lp_solves
            row["nodes_cold"] += cold.n_lp_solves
        per_k[k] = row
    return per_k


def _sweep(lprr_k, bnb_k, seeds) -> dict:
    return {
        "lprr_k": list(lprr_k),
        "bnb_k": list(bnb_k),
        "seeds": list(seeds),
        "lprr": _lprr_leg(lprr_k, seeds),
        "bnb": _bnb_leg(bnb_k, seeds),
    }


def test_simplex_core_regression(benchmark):
    lprr_k = (8, 12, 16) if full_scale() else (8, 12)
    bnb_k = (4, 5)
    seeds = range(2)
    data = benchmark.pedantic(
        _sweep, args=(lprr_k, bnb_k, seeds), rounds=1, iterations=1
    )

    banner(
        "Revised-simplex core: LU-factorized warm chains vs cold HiGHS",
        "the session path must beat cold HiGHS per re-solve at every size "
        "(no tableau cliff), on LPRR pin chains and B&B bound-flip chains.",
    )
    print(f"{'K':>3} {'t session (s)':>14} {'t scipy (s)':>12} "
          f"{'speedup':>8} {'warm/solves':>12} {'iters':>7}")
    for k, row in data["lprr"].items():
        speedup = row["time_scipy"] / max(row["time_session"], 1e-12)
        print(f"{k:>3} {row['time_session']:>14.3f} {row['time_scipy']:>12.3f} "
              f"{speedup:>7.2f}x {row['n_warm']:>5}/{row['n_solves']:<6} "
              f"{row['iterations']:>7}")
    print(f"{'K':>3} {'t bnb warm (s)':>15} {'t bnb cold (s)':>15} "
          f"{'nodes warm':>11} {'nodes cold':>11}")
    for k, row in data["bnb"].items():
        print(f"{k:>3} {row['time_warm']:>15.3f} {row['time_cold']:>15.3f} "
              f"{row['nodes_warm']:>11} {row['nodes_cold']:>11}")

    payload = {
        "bench": "simplex_core",
        "full_scale": full_scale(),
        "results": data,
    }
    _OUT.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"wrote {_OUT.name}")

    # Regression gates.
    for k, row in data["lprr"].items():
        # The core claim: no size cliff — warm session beats cold HiGHS
        # per solve at every K, including sizes the tableau never won.
        assert row["time_session"] < row["time_scipy"], (
            f"session slower than cold HiGHS at K={k}: "
            f"{row['time_session']:.3f}s vs {row['time_scipy']:.3f}s"
        )
        # The chains really run warm (carried bases accepted, not
        # silently falling back to cold restarts).
        assert row["n_warm"] >= 0.8 * (row["n_solves"] - len(list(seeds)))
    for k, row in data["bnb"].items():
        assert row["value_matches"] == row["runs"]
        assert row["time_warm"] < row["time_cold"], (
            f"warm B&B slower than cold-HiGHS B&B at K={k}"
        )
