"""E8 — extension: true optimality gaps via exact MILP.

The paper could not solve the mixed program ("takes exponential time;
consequently we cannot use it in practice and cannot compare our
heuristics to the optimal", Section 6) and used the rational LP as a
proxy upper bound. Modern MILP makes small-K instances easy, so this
benchmark reports what the paper could not: how much of the LP-vs-
heuristic gap is heuristic suboptimality and how much is integrality gap
of the bound itself.
"""

import numpy as np

from repro.core.problem import SteadyStateProblem
from repro.experiments import sample_settings, spec_for
from repro.experiments.config import DEFAULT_SCENARIO, payoffs_for
from repro.heuristics.base import get_heuristic
from repro.platform.generator import generate_platform
from repro.util.rng import spawn_rngs

from benchmarks.conftest import banner


def _gaps(k_values, settings_per_k: int = 2, seed: int = 31) -> dict:
    out = {}
    for k in k_values:
        settings = sample_settings(settings_per_k, rng=seed + k, k_values=[k])
        ratios = {"lprg_vs_opt": [], "g_vs_opt": [], "opt_vs_lp": []}
        for setting, rng in zip(settings, spawn_rngs(seed + k, len(settings))):
            platform = generate_platform(spec_for(setting), rng=rng)
            payoffs = payoffs_for(setting, DEFAULT_SCENARIO, rng)
            problem = SteadyStateProblem(platform, payoffs, objective="maxmin")
            lp = get_heuristic("lp").run(problem).value
            opt = get_heuristic("milp").run(problem).value
            if opt <= 0:
                continue
            lprg = get_heuristic("lprg").run(problem).value
            g = get_heuristic("greedy").run(problem).value
            ratios["lprg_vs_opt"].append(lprg / opt)
            ratios["g_vs_opt"].append(g / opt)
            ratios["opt_vs_lp"].append(opt / lp if lp > 0 else 1.0)
        out[k] = {key: float(np.mean(v)) for key, v in ratios.items() if v}
    return out


def test_exact_optimality_gap(benchmark, scale):
    gaps = benchmark.pedantic(
        _gaps, args=(scale["exact_k"],), rounds=1, iterations=1
    )

    banner(
        "E8 / extension - heuristics vs the TRUE optimum (exact MILP)",
        "not in the paper (infeasible in 2004); LP was only an upper "
        "bound on the optimum",
    )
    print(f"{'K':>4} {'LPRG/OPT':>10} {'G/OPT':>10} {'OPT/LP':>10}")
    for k, row in gaps.items():
        print(
            f"{k:>4} {row['lprg_vs_opt']:>10.3f} {row['g_vs_opt']:>10.3f} "
            f"{row['opt_vs_lp']:>10.3f}"
        )
    for row in gaps.values():
        assert row["lprg_vs_opt"] <= 1.0 + 1e-6  # optimum dominates
        assert row["g_vs_opt"] <= 1.0 + 1e-6
        assert row["opt_vs_lp"] <= 1.0 + 1e-6  # LP is a true upper bound
        assert row["lprg_vs_opt"] > 0.7  # LPRG is near-optimal at small K
