"""E3 — Figure 5: LPRG and G relative to the LP bound as K grows.

Paper claims reproduced (shapes, not absolute values):
* LPRG always achieves higher SUM values than G, with the advantage
  growing with K; at large K, SUM(LPRG) is very close to the LP bound;
* MAXMIN(G) degrades markedly as K grows, while MAXMIN(LPRG) stays well
  above it;
* both heuristics score lower on MAXMIN than on SUM at large K.
"""

from repro.experiments import figure5, render_figure

from benchmarks.conftest import banner, sweep_jobs


def test_figure5(benchmark, scale):
    fig = benchmark.pedantic(
        figure5,
        kwargs=dict(
            k_values=scale["fig5_k"],
            settings_per_k=scale["fig5_settings_per_k"],
            platforms_per_setting=scale["fig5_platforms"],
            rng=7,
            jobs=sweep_jobs(),  # campaign engine: identical output
        ),
        rounds=1,
        iterations=1,
    )

    banner(
        "E3 / Figure 5 - LPRG and G vs LP bound over K",
        "SUM(LPRG) -> ~1.0 at large K; MAXMIN(G) decays (0.93 -> ~0.65); "
        "LPRG >= G nearly everywhere",
    )
    print(render_figure(fig))

    series = {name: dict(pts) for name, pts in fig.series.items()}
    ks = sorted(series["SUM(LPRG)/LP"])
    first_k, last_k = ks[0], ks[-1]
    # LPRG beats G on SUM at every K (paper: "always achieves higher").
    for k in ks:
        assert series["SUM(LPRG)/LP"][k] >= series["SUM(GREEDY)/LP"][k] - 0.02
    # SUM(LPRG) close to the bound at the largest K.
    assert series["SUM(LPRG)/LP"][last_k] > 0.9
    # MAXMIN(G) degrades from small to large K.
    assert series["MAXMIN(GREEDY)/LP"][last_k] < series["MAXMIN(GREEDY)/LP"][first_k]
    # LPRG clearly above G on MAXMIN at large K.
    assert (
        series["MAXMIN(LPRG)/LP"][last_k]
        > series["MAXMIN(GREEDY)/LP"][last_k]
    )
