"""E-parallel — scaling of the process-pool campaign engine.

Runs one fixed-seed Figure-5-style sweep (methods x objectives over a
stratified K grid) serially and with 2 and 4 workers, then reports the
speedups. Two claims are enforced:

* **determinism** — the parallel row lists are *bitwise* equal to the
  serial one (values, lp bounds, ordering; runtimes excluded), on any
  machine, always;
* **scaling** — with >= 4 usable cores, 4 workers must beat serial by
  more than 1.5x. On boxes with fewer cores (CI containers are often
  pinned to 1) real speedup is physically impossible, so there the
  check degrades to an overhead bound: parallel dispatch must not cost
  more than 2.5x serial wall-clock.
"""

from __future__ import annotations

import os
import time

from repro.experiments import run_sweep, sample_settings
from repro.experiments.config import PAPER_GRID

from benchmarks.conftest import banner, full_scale


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _sweep_args():
    if full_scale():
        k_values, n_settings, n_platforms = [5, 15, 25, 35], 12, 3
    else:
        k_values, n_settings, n_platforms = [5, 10, 15, 20], 8, 2
    settings = sample_settings(n_settings, rng=77, k_values=k_values)
    return settings, dict(
        methods=("greedy", "lpr", "lprg"),
        objectives=("maxmin", "sum"),
        n_platforms=n_platforms,
        rng=77,
    )


def _row_key(rows):
    return [
        (r.setting, r.replicate, r.objective, r.method, r.value, r.lp_value)
        for r in rows
    ]


def test_parallel_scaling(benchmark):
    settings, kwargs = _sweep_args()

    def timed(jobs: int):
        start = time.perf_counter()
        rows = run_sweep(settings, jobs=jobs, **kwargs)
        return rows, time.perf_counter() - start

    # Warm imports/caches once so the serial reference is not penalised.
    run_sweep(settings[:1], jobs=1, **{**kwargs, "n_platforms": 1})

    serial_rows, t_serial = benchmark.pedantic(
        timed, args=(1,), rounds=1, iterations=1
    )
    rows_2, t2 = timed(2)
    rows_4, t4 = timed(4)

    cpus = _usable_cpus()
    banner(
        "E-parallel - campaign-engine scaling on a Fig. 5-style sweep",
        "identical rows at any jobs; >1.5x speedup at 4 workers "
        "given >= 4 cores",
    )
    n_tasks = len(settings) * kwargs["n_platforms"]
    print(f"sweep: {n_tasks} tasks, {len(serial_rows)} rows, {cpus} usable CPUs")
    print(f"  jobs=1: {t_serial:8.2f}s")
    print(f"  jobs=2: {t2:8.2f}s   speedup {t_serial / t2:5.2f}x")
    print(f"  jobs=4: {t4:8.2f}s   speedup {t_serial / t4:5.2f}x")

    # Determinism: bitwise-identical rows regardless of worker count.
    assert _row_key(rows_2) == _row_key(serial_rows)
    assert _row_key(rows_4) == _row_key(serial_rows)

    if cpus >= 4:
        assert t_serial / t4 > 1.5, (
            f"4 workers on {cpus} CPUs only gave {t_serial / t4:.2f}x"
        )
        assert t_serial / t2 > 1.2
    else:
        # Can't scale without cores: bound the dispatch overhead instead.
        assert t4 < 2.5 * t_serial + 1.0
