"""E11 — Section 6.1 (last paragraph): parameter-trend mining.

Paper: "No clear trend emerges in the MAXMIN case [...]. The relative
performance of G and LPRG is more regular in the SUM case, but we found
that variations in platform parameters besides K (i.e., connectivity,
heterogeneity, g, bw, or maxcon) does not lead to significant variations
in relative performance."

Measured as the spread (max - min) of the per-bucket mean LPRG/G ratio
for every non-K parameter, compared against the spread over K.
"""

from collections import defaultdict

import numpy as np

from repro.experiments import run_sweep, sample_settings
from repro.experiments.trends import render_trends, trend_spread

from benchmarks.conftest import banner, full_scale


def _sweep():
    n = 24 if full_scale() else 8
    settings = sample_settings(n, rng=19, k_values=[10, 20])
    return run_sweep(
        settings,
        methods=("greedy", "lprg"),
        objectives=("maxmin", "sum"),
        n_platforms=3 if full_scale() else 2,
        rng=19,
    )


def _k_spread(rows, objective):
    """Spread of the LPRG/G ratio across K buckets (the contrast case)."""
    num = [r for r in rows if r.method == "lprg" and r.objective == objective]
    den = [r for r in rows if r.method == "greedy" and r.objective == objective]
    buckets = defaultdict(list)
    for nr, dr in zip(num, den):
        if dr.value > 0:
            buckets[nr.setting.k].append(nr.value / dr.value)
    means = [np.mean(v) for v in buckets.values()]
    return float(max(means) - min(means)) if len(means) > 1 else 0.0


def test_parameter_trends(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    banner(
        "E11 / Section 6.1 - platform-parameter trend mining",
        "non-K parameters do not lead to significant variations in the "
        "relative performance of G and LPRG (SUM case); MAXMIN irregular",
    )
    for objective in ("sum", "maxmin"):
        spread = trend_spread(rows, objective)
        print(f"objective {objective.upper()}:")
        for parameter, value in spread.items():
            print(f"  spread over {parameter:<14} {value:.3f}")
        print(f"  spread over {'K':<14} {_k_spread(rows, objective):.3f}")
    print()
    print(render_trends(rows, "sum"))
