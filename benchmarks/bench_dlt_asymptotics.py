"""E13 — the steady-state relaxation's foundation (Sections 1-2).

Two classical results the paper builds on, made measurable:

1. **Cluster equivalence** (Section 2): a star cluster is equivalent to
   a single processor whose speed comes from closed-form DLT — we
   compare the one-port bandwidth-centric value against the multi-port
   fluid value used by the platform model.
2. **Asymptotic optimality of steady state** (Section 1's justification,
   following Bertsimas-Gamarnik and [8]): makespan-optimal multi-round
   throughput converges to the steady-state bound as the load grows;
   single-round scheduling stays strictly below it.
"""

import numpy as np

from repro.dlt import (
    StarNetwork,
    multi_round_makespan,
    single_round_makespan,
    steady_state_throughput_multi_port,
    steady_state_throughput_one_port,
)

from benchmarks.conftest import banner, full_scale


def _convergence(star: StarNetwork, schedule):
    bound = steady_state_throughput_one_port(star)
    rows = []
    for W, R in schedule:
        T1, _ = single_round_makespan(star, float(W))
        Tm = multi_round_makespan(star, float(W), rounds=R, proportions="steady-state")
        rows.append(
            {
                "W": W,
                "R": R,
                "single": W / T1,
                "multi": W / Tm,
                "bound": bound,
            }
        )
    return rows


def test_dlt_asymptotics(benchmark):
    star = StarNetwork(
        master_speed=2.0,
        worker_speeds=(3.0, 5.0, 2.0, 4.0),
        worker_bandwidths=(6.0, 2.0, 4.0, 3.0),
    )
    schedule = (
        ((10, 2), (100, 8), (1000, 30), (10_000, 100), (100_000, 320))
        if full_scale()
        else ((10, 2), (100, 8), (1000, 30), (10_000, 100))
    )
    rows = benchmark.pedantic(_convergence, args=(star, schedule), rounds=1, iterations=1)

    banner(
        "E13 / foundations - cluster equivalence + steady-state asymptotics",
        "makespan-optimal throughput -> steady-state optimum as W grows; "
        "one-port (bandwidth-centric) <= multi-port fluid equivalent speed",
    )
    one = steady_state_throughput_one_port(star)
    multi = steady_state_throughput_multi_port(star)
    print(f"equivalent speed: one-port = {one:.3f}, multi-port fluid = {multi:.3f}")
    print(f"{'W':>8} {'rounds':>7} {'1-round thpt':>13} {'multi thpt':>11} {'bound':>7}")
    for r in rows:
        print(
            f"{r['W']:>8} {r['R']:>7} {r['single']:>13.3f} "
            f"{r['multi']:>11.3f} {r['bound']:>7.3f}"
        )
    assert one <= multi + 1e-12
    gaps = [r["bound"] - r["multi"] for r in rows]
    assert all(g >= -1e-9 for g in gaps)  # bound never beaten
    assert gaps[-1] < gaps[0]  # converging
    assert rows[-1]["multi"] >= 0.9 * rows[-1]["bound"]
    assert all(r["single"] <= r["multi"] + 1e-9 for r in rows[1:])
